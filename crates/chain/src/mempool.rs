//! Message pools.
//!
//! Per the paper (§IV-B), "nodes in subnets keep two types of message
//! pools: an internal pool to track unverified messages originating in and
//! targeting the subnet, and a cross-msg pool that listens to unverified
//! cross-msgs directed at (or traversing) the subnet".
//!
//! * [`Mempool`] is the internal pool: signed user messages, ordered per
//!   sender by nonce, selected FIFO-fairly into block proposals.
//! * [`CrossMsgPool`] is the cross-msg pool: top-down messages pulled from
//!   the parent SCA (applied in nonce order), and bottom-up metas awaiting
//!   content resolution before they can be proposed.

use std::collections::{BTreeMap, HashMap};

use hc_actors::{CrossMsg, CrossMsgMeta};
use hc_state::{SealedMessage, SigCache, SignedMessage};
use hc_types::{Address, ChainEpoch, Cid, Nonce};

/// How many epochs an admitted CID stays in the dedup set after its
/// admission epoch. Replays older than this are caught by account-nonce
/// validation at execution time, so the set can forget them.
pub const DEFAULT_SEEN_HORIZON_EPOCHS: u64 = 256;

/// The internal pool of pending signed user messages.
#[derive(Debug, Clone)]
pub struct Mempool {
    /// Per-sender queues ordered by nonce, holding sealed messages so the
    /// CIDs derived at admission travel into block assembly and execution.
    by_sender: BTreeMap<Address, BTreeMap<Nonce, SealedMessage>>,
    /// Message CIDs already admitted, tagged with the chain epoch current
    /// at admission (dedup with bounded memory — see
    /// [`Mempool::advance_epoch`]).
    seen: HashMap<Cid, ChainEpoch>,
    /// Epochs a CID stays in `seen` past its admission epoch.
    seen_horizon_epochs: u64,
    /// The chain epoch the pool currently considers "now".
    current_epoch: ChainEpoch,
    /// Verified-signature cache populated at admission and shared with the
    /// node's executor; `None` verifies every admission fully.
    sig_cache: Option<SigCache>,
}

impl Default for Mempool {
    fn default() -> Self {
        Mempool {
            by_sender: BTreeMap::new(),
            seen: HashMap::new(),
            seen_horizon_epochs: DEFAULT_SEEN_HORIZON_EPOCHS,
            current_epoch: ChainEpoch::GENESIS,
            sig_cache: None,
        }
    }
}

impl Mempool {
    /// Creates an empty pool with the default dedup horizon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pool that remembers admitted CIDs for `horizon`
    /// epochs past their admission epoch.
    pub fn with_seen_horizon(horizon: u64) -> Self {
        Mempool {
            seen_horizon_epochs: horizon,
            ..Self::default()
        }
    }

    /// Wires in a verified-signature cache: admission verdicts are cached
    /// so the executor (sharing the handle) skips re-verification, and
    /// re-gossiped messages that fell out of the dedup horizon re-admit
    /// with a lookup instead of a full verification.
    pub fn with_sig_cache(mut self, cache: SigCache) -> Self {
        self.sig_cache = Some(cache);
        self
    }

    /// Admits a message after signature pre-validation. Duplicates and
    /// messages with unverifiable signatures are refused.
    ///
    /// Returns `true` if the message was admitted.
    pub fn push(&mut self, msg: SignedMessage) -> bool {
        self.push_sealed(SealedMessage::new(msg))
    }

    /// [`Mempool::push`] for an already-sealed message (keeps CIDs derived
    /// by the caller, e.g. the submission path that reports the CID back).
    ///
    /// The dedup check runs *before* signature verification: a replayed
    /// duplicate costs one memoized CID read, not a full verification
    /// (previously the expensive check ran first). Deduplication keys on
    /// the message CID — what the signature covers and receipts are keyed
    /// by — so a replay with a mangled signature is refused just like an
    /// exact duplicate. `seen` is only populated by *verified* admissions:
    /// an attacker cannot block a valid message by pre-sending a forgery
    /// of it.
    pub fn push_sealed(&mut self, msg: SealedMessage) -> bool {
        let cid = msg.msg_cid();
        if self.seen.contains_key(&cid) {
            return false;
        }
        let verified = match &self.sig_cache {
            Some(cache) => cache.verify_sealed(&msg),
            None => msg.verify_signature(),
        };
        if !verified {
            return false;
        }
        self.seen.insert(cid, self.current_epoch);
        self.by_sender
            .entry(msg.message().from)
            .or_default()
            .insert(msg.message().nonce, msg);
        true
    }

    /// Advances the pool's notion of the current chain epoch and prunes
    /// dedup entries admitted more than the horizon ago. Without this the
    /// `seen` set grows without bound for the lifetime of the node; with
    /// it, replays inside the horizon are still refused here while older
    /// replays fall through to the account-nonce check at execution time
    /// (stale nonces never execute).
    pub fn advance_epoch(&mut self, epoch: ChainEpoch) {
        if epoch <= self.current_epoch {
            return;
        }
        self.current_epoch = epoch;
        let horizon = self.seen_horizon_epochs;
        self.seen
            .retain(|_, admitted| epoch.since(*admitted) <= horizon);
    }

    /// Number of CIDs currently held for dedup (testing/diagnostics).
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.by_sender.values().map(BTreeMap::len).sum()
    }

    /// Returns `true` if no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.by_sender.values().all(BTreeMap::is_empty)
    }

    /// Selects up to `max` messages for a block proposal: round-robin over
    /// senders, each sender's messages in nonce order, so no sender can
    /// starve the pool.
    ///
    /// Runs in `O(selected + senders)` per call: each cursor is peekable,
    /// so exhausted senders are dropped without cloning and re-walking
    /// iterators (the previous implementation re-peeked every cursor by
    /// clone-and-advance on every round, which was quadratic in the pool
    /// depth).
    pub fn select(&self, max: usize) -> Vec<SealedMessage> {
        let mut cursors: Vec<_> = self
            .by_sender
            .values()
            .map(|q| q.values().peekable())
            .collect();
        cursors.retain_mut(|c| c.peek().is_some());
        let mut out = Vec::new();
        while out.len() < max && !cursors.is_empty() {
            for cursor in cursors.iter_mut() {
                if out.len() >= max {
                    break;
                }
                if let Some(m) = cursor.next() {
                    out.push(m.clone());
                }
            }
            // Drop drained senders; the survivors keep their round-robin
            // order for the next pass.
            cursors.retain_mut(|c| c.peek().is_some());
        }
        out
    }

    /// Removes messages that were included in a committed block.
    pub fn remove_included<'a, I: IntoIterator<Item = &'a SealedMessage>>(&mut self, msgs: I) {
        for m in msgs {
            if let Some(q) = self.by_sender.get_mut(&m.message().from) {
                q.remove(&m.message().nonce);
            }
            // Keep `seen` so replays of the same CID stay excluded until
            // the dedup horizon passes (see `advance_epoch`).
        }
        self.by_sender.retain(|_, q| !q.is_empty());
    }
}

/// The cross-msg pool: unverified cross-net work for this subnet.
///
/// Top-down messages arrive already ordered by the parent-assigned nonce;
/// the pool releases them strictly in order. Bottom-up metas arrive from
/// committed checkpoints carrying only a CID; they wait in
/// `awaiting_resolution` until the content-resolution protocol supplies the
/// raw messages (paper §IV-C), then become proposable.
#[derive(Debug, Clone, Default)]
pub struct CrossMsgPool {
    /// Top-down messages by nonce, not yet applied.
    top_down: BTreeMap<Nonce, CrossMsg>,
    /// Next top-down nonce to propose (all lower nonces already applied).
    next_top_down: Nonce,
    /// Bottom-up metas whose message groups are not yet resolved.
    awaiting_resolution: BTreeMap<Cid, CrossMsgMeta>,
    /// Resolved groups ready to be proposed, in meta-nonce order.
    ready_bottom_up: BTreeMap<Nonce, (CrossMsgMeta, Vec<CrossMsg>)>,
    /// Next bottom-up meta nonce to propose.
    next_bottom_up: Nonce,
}

impl CrossMsgPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests top-down messages learned by syncing the parent SCA.
    /// Messages below the already-applied nonce are ignored.
    pub fn ingest_top_down<I: IntoIterator<Item = CrossMsg>>(&mut self, msgs: I) {
        for m in msgs {
            if m.nonce >= self.next_top_down {
                self.top_down.insert(m.nonce, m);
            }
        }
    }

    /// Registers a bottom-up meta that still needs content resolution.
    /// Idempotent against redelivery: a meta whose nonce was already
    /// applied (below `next_bottom_up`) or that is already waiting/ready
    /// is ignored, so duplicated checkpoint commits cannot double-apply a
    /// message group. Returns `true` if the meta was newly registered.
    pub fn ingest_meta(&mut self, meta: CrossMsgMeta) -> bool {
        if meta.nonce < self.next_bottom_up || self.ready_bottom_up.contains_key(&meta.nonce) {
            return false;
        }
        if self.awaiting_resolution.contains_key(&meta.msgs_cid) {
            return false;
        }
        self.awaiting_resolution.insert(meta.msgs_cid, meta);
        true
    }

    /// CIDs the pool needs resolved — what a node publishes *pull*
    /// requests for.
    pub fn unresolved_cids(&self) -> Vec<Cid> {
        self.awaiting_resolution.keys().copied().collect()
    }

    /// The metas still awaiting resolution (source subnet and CID drive
    /// the pull requests).
    pub fn unresolved_metas(&self) -> Vec<CrossMsgMeta> {
        self.awaiting_resolution.values().cloned().collect()
    }

    /// Supplies resolved content for a meta. Returns `true` if the content
    /// matched a pending CID and was accepted.
    pub fn resolve(&mut self, cid: Cid, msgs: Vec<CrossMsg>) -> bool {
        let Some(meta) = self.awaiting_resolution.get(&cid) else {
            return false;
        };
        if !meta.matches(&msgs) {
            return false;
        }
        let meta = self.awaiting_resolution.remove(&cid).expect("checked");
        self.ready_bottom_up.insert(meta.nonce, (meta, msgs));
        true
    }

    /// Drains the cross-net work proposable right now: the dense prefix of
    /// top-down messages from the next expected nonce, and the dense prefix
    /// of resolved bottom-up groups. Called by the proposer when building a
    /// block (paper Fig. 3).
    pub fn take_proposable(
        &mut self,
        max: usize,
    ) -> (Vec<CrossMsg>, Vec<(CrossMsgMeta, Vec<CrossMsg>)>) {
        let mut tds = Vec::new();
        while tds.len() < max {
            match self.top_down.remove(&self.next_top_down) {
                Some(m) => {
                    self.next_top_down = self.next_top_down.next();
                    tds.push(m);
                }
                None => break,
            }
        }
        let mut bus = Vec::new();
        while tds.len() + bus.len() < max {
            match self.ready_bottom_up.remove(&self.next_bottom_up) {
                Some(entry) => {
                    self.next_bottom_up = self.next_bottom_up.next();
                    bus.push(entry);
                }
                None => break,
            }
        }
        (tds, bus)
    }

    /// Number of top-down messages waiting.
    pub fn pending_top_down(&self) -> usize {
        self.top_down.len()
    }

    /// Number of metas waiting for resolution or proposal.
    pub fn pending_bottom_up(&self) -> usize {
        self.awaiting_resolution.len() + self.ready_bottom_up.len()
    }

    /// The next top-down nonce this pool will release.
    pub fn next_top_down_nonce(&self) -> Nonce {
        self.next_top_down
    }

    /// Records that the top-down message with `nonce` was applied by a
    /// committed block — used by WAL replay, where application happens via
    /// the journaled block rather than [`CrossMsgPool::take_proposable`].
    /// Advances the release cursor past `nonce` and drops the (now applied)
    /// message if it was waiting.
    pub fn note_top_down_applied(&mut self, nonce: Nonce) {
        if nonce >= self.next_top_down {
            self.next_top_down = nonce.next();
        }
        self.top_down.retain(|n, _| *n >= self.next_top_down);
    }

    /// Records that the bottom-up group of `meta` was applied by a
    /// committed block (WAL-replay counterpart of the resolve → propose
    /// flow). Clears the meta from both waiting sets and advances the
    /// bottom-up cursor.
    pub fn note_bottom_up_applied(&mut self, meta: &CrossMsgMeta) {
        self.awaiting_resolution.remove(&meta.msgs_cid);
        self.ready_bottom_up.remove(&meta.nonce);
        if meta.nonce >= self.next_bottom_up {
            self.next_bottom_up = meta.nonce.next();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_actors::HcAddress;
    use hc_state::{Message, Method};
    use hc_types::{Keypair, SubnetId, TokenAmount};

    fn kp(seed: u8) -> Keypair {
        let mut s = [0u8; 32];
        s[0] = seed;
        s[1] = 0xc2;
        Keypair::from_seed(s)
    }

    fn signed(from: u64, nonce: u64, key: &Keypair) -> SignedMessage {
        Message {
            from: Address::new(from),
            to: Address::new(1),
            value: TokenAmount::ZERO,
            nonce: Nonce::new(nonce),
            method: Method::Send,
        }
        .sign(key)
    }

    #[test]
    fn mempool_dedups_and_rejects_bad_signatures() {
        let mut pool = Mempool::new();
        let k = kp(1);
        let m = signed(100, 0, &k);
        assert!(pool.push(m.clone()));
        assert!(!pool.push(m.clone()), "duplicate refused");
        let mut tampered = signed(100, 1, &k);
        tampered.message.value = TokenAmount::from_whole(9);
        assert!(!pool.push(tampered), "bad signature refused");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn duplicates_are_refused_before_verification() {
        // With a cache wired, admission verdicts are observable: the
        // duplicate must be refused by dedup without touching the cache
        // (the admission-order fix), and a replay of a *tampered* copy of
        // a seen message is refused the same way.
        let cache = hc_state::SigCache::new(16);
        let mut pool = Mempool::new().with_sig_cache(cache.clone());
        let k = kp(8);
        let m = signed(100, 0, &k);
        assert!(pool.push(m.clone()));
        assert_eq!(cache.stats().misses, 1);
        assert!(!pool.push(m.clone()));
        let mut tampered_sig = m.clone();
        tampered_sig.signature = hc_types::Signature::new_unchecked(k.public(), [9u8; 32]);
        assert!(!pool.push(tampered_sig));
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 1),
            "duplicates must not reach the verifier"
        );
        // An unrelated forgery still pays (and fails) full verification.
        let mut forged = signed(100, 1, &k);
        forged.message.value = TokenAmount::from_whole(7);
        assert!(!pool.push(forged));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 1, "failed verdicts are not cached");
    }

    #[test]
    fn mempool_selects_fairly_across_senders_in_nonce_order() {
        let mut pool = Mempool::new();
        let ka = kp(2);
        let kb = kp(3);
        for n in 0..3 {
            pool.push(signed(100, n, &ka));
            pool.push(signed(200, n, &kb));
        }
        let selected = pool.select(4);
        assert_eq!(selected.len(), 4);
        // Round-robin: a0, b0, a1, b1.
        assert_eq!(selected[0].message().from, Address::new(100));
        assert_eq!(selected[1].message().from, Address::new(200));
        assert_eq!(selected[0].message().nonce, Nonce::new(0));
        assert_eq!(selected[2].message().nonce, Nonce::new(1));
        // Selection does not mutate the pool.
        assert_eq!(pool.len(), 6);
        // Removal after inclusion.
        pool.remove_included(selected.iter());
        assert_eq!(pool.len(), 2);
        // Replays of included messages stay excluded.
        assert!(!pool.push_sealed(selected[0].clone()));
    }

    #[test]
    fn mempool_select_round_robin_survives_uneven_queues() {
        // Senders with different queue depths: the rotation must keep
        // visiting the surviving senders in order after short queues
        // drain (regression test for the cursor rewrite in `select`).
        let mut pool = Mempool::new();
        let ka = kp(4);
        let kb = kp(5);
        let kc = kp(6);
        pool.push(signed(100, 0, &ka));
        for n in 0..3 {
            pool.push(signed(200, n, &kb));
        }
        for n in 0..2 {
            pool.push(signed(300, n, &kc));
        }
        let picked: Vec<(u64, u64)> = pool
            .select(6)
            .iter()
            .map(|m| (m.message().from.id(), m.message().nonce.value()))
            .collect();
        assert_eq!(
            picked,
            vec![(100, 0), (200, 0), (300, 0), (200, 1), (300, 1), (200, 2)]
        );
        // A capped selection stops mid-rotation without skipping anyone.
        let capped: Vec<u64> = pool
            .select(2)
            .iter()
            .map(|m| m.message().from.id())
            .collect();
        assert_eq!(capped, vec![100, 200]);
    }

    #[test]
    fn mempool_seen_set_prunes_beyond_horizon() {
        let mut pool = Mempool::with_seen_horizon(2);
        let k = kp(7);
        let m = SealedMessage::new(signed(100, 0, &k));
        assert!(pool.push_sealed(m.clone()));
        pool.remove_included([&m]);
        // Replays within the horizon are still refused and remembered.
        pool.advance_epoch(ChainEpoch::new(2));
        assert!(!pool.push_sealed(m.clone()));
        assert_eq!(pool.seen_len(), 1);
        // Epoch regressions never resurrect or prune anything.
        pool.advance_epoch(ChainEpoch::new(1));
        assert_eq!(pool.seen_len(), 1);
        // Beyond the horizon the CID is forgotten — bounded memory; the
        // stale account nonce catches any replay at execution time.
        pool.advance_epoch(ChainEpoch::new(3));
        assert_eq!(pool.seen_len(), 0);
        assert!(pool.push_sealed(m));
    }

    fn td(nonce: u64) -> CrossMsg {
        let mut m = CrossMsg::transfer(
            HcAddress::new(SubnetId::root(), Address::new(1)),
            HcAddress::new(SubnetId::root().child(Address::new(9)), Address::new(2)),
            TokenAmount::from_whole(1),
        );
        m.nonce = Nonce::new(nonce);
        m
    }

    #[test]
    fn cross_pool_releases_dense_topdown_prefix_only() {
        let mut pool = CrossMsgPool::new();
        pool.ingest_top_down([td(0), td(2)]); // gap at nonce 1
        let (tds, _) = pool.take_proposable(10);
        assert_eq!(tds.len(), 1);
        assert_eq!(tds[0].nonce, Nonce::new(0));
        // The gap blocks nonce 2 until 1 arrives.
        pool.ingest_top_down([td(1)]);
        let (tds, _) = pool.take_proposable(10);
        assert_eq!(tds.len(), 2);
        assert_eq!(pool.pending_top_down(), 0);
        assert_eq!(pool.next_top_down_nonce(), Nonce::new(3));
        // Stale re-ingestion is ignored.
        pool.ingest_top_down([td(0)]);
        assert_eq!(pool.pending_top_down(), 0);
    }

    #[test]
    fn cross_pool_resolution_flow() {
        let mut pool = CrossMsgPool::new();
        let src = SubnetId::root().child(Address::new(9));
        let msgs = vec![td(0)];
        let mut meta = CrossMsgMeta::for_group(src.clone(), SubnetId::root(), &msgs);
        meta.nonce = Nonce::new(0);
        pool.ingest_meta(meta.clone());
        assert_eq!(pool.unresolved_cids(), vec![meta.msgs_cid]);
        // Nothing proposable before resolution.
        assert!(pool.take_proposable(10).1.is_empty());
        // Wrong content is refused.
        assert!(!pool.resolve(meta.msgs_cid, vec![td(5)]));
        // Unknown CID is refused.
        assert!(!pool.resolve(Cid::digest(b"x"), msgs.clone()));
        // Correct content unlocks proposal.
        assert!(pool.resolve(meta.msgs_cid, msgs.clone()));
        let (_, bus) = pool.take_proposable(10);
        assert_eq!(bus.len(), 1);
        assert_eq!(bus[0].0, meta);
        assert_eq!(pool.pending_bottom_up(), 0);
    }

    #[test]
    fn cross_pool_ignores_redelivered_and_applied_metas() {
        let mut pool = CrossMsgPool::new();
        let src = SubnetId::root().child(Address::new(9));
        let msgs = vec![td(0)];
        let mut meta = CrossMsgMeta::for_group(src.clone(), SubnetId::root(), &msgs);
        meta.nonce = Nonce::new(0);
        // First delivery registers; duplicated deliveries (the network may
        // re-deliver a checkpoint commit under duplication faults) are
        // no-ops at every stage of the meta's life.
        assert!(pool.ingest_meta(meta.clone()));
        assert!(!pool.ingest_meta(meta.clone()), "awaiting: dup ignored");
        assert_eq!(pool.pending_bottom_up(), 1);
        assert!(pool.resolve(meta.msgs_cid, msgs.clone()));
        assert!(!pool.ingest_meta(meta.clone()), "ready: dup ignored");
        assert_eq!(pool.pending_bottom_up(), 1);
        let (_, bus) = pool.take_proposable(10);
        assert_eq!(bus.len(), 1);
        // Applied: the nonce cursor has moved past it — a late redelivery
        // cannot re-queue the group for a second application.
        assert!(!pool.ingest_meta(meta.clone()), "applied: dup ignored");
        assert_eq!(pool.pending_bottom_up(), 0);
        assert!(pool.take_proposable(10).1.is_empty());
    }

    #[test]
    fn cross_pool_bottom_up_respects_meta_nonce_order() {
        let mut pool = CrossMsgPool::new();
        let src = SubnetId::root().child(Address::new(9));
        let g0 = vec![td(0)];
        let g1 = vec![td(1)];
        let mut m0 = CrossMsgMeta::for_group(src.clone(), SubnetId::root(), &g0);
        m0.nonce = Nonce::new(0);
        let mut m1 = CrossMsgMeta::for_group(src.clone(), SubnetId::root(), &g1);
        m1.nonce = Nonce::new(1);
        pool.ingest_meta(m0.clone());
        pool.ingest_meta(m1.clone());
        // Resolve out of order: only the dense prefix is proposable.
        assert!(pool.resolve(m1.msgs_cid, g1));
        assert!(pool.take_proposable(10).1.is_empty());
        assert!(pool.resolve(m0.msgs_cid, g0));
        let (_, bus) = pool.take_proposable(10);
        assert_eq!(bus.len(), 2);
        assert_eq!(bus[0].0.nonce, Nonce::new(0));
        assert_eq!(bus[1].0.nonce, Nonce::new(1));
    }
}
