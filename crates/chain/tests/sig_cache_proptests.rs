//! Property tests of the crypto pipeline's equivalence guarantee: for any
//! transfer schedule, block production and validation yield bit-identical
//! receipts, blocks, and state roots with the verified-signature cache on
//! or off and at any pre-verification parallelism — including schedules
//! salted with messages whose signatures are invalid.

use proptest::prelude::*;

use hc_actors::ScaConfig;
use hc_chain::{execute_block_with, produce_block_with, ExecOptions, Mempool};
use hc_state::{Message, Method, SealedMessage, SigCache, StateTree};
use hc_types::{Address, ChainEpoch, Cid, Keypair, Nonce, SubnetId, TokenAmount};

const USERS: u64 = 3;

fn keypair(i: u64) -> Keypair {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&i.to_le_bytes());
    seed[8] = 0x7a;
    Keypair::from_seed(seed)
}

fn genesis() -> StateTree {
    StateTree::genesis(
        SubnetId::root(),
        ScaConfig::default(),
        (0..USERS).map(|i| {
            (
                Address::new(100 + i),
                keypair(i).public(),
                TokenAmount::from_whole(1_000),
            )
        }),
    )
}

/// Builds a sealed transfer; when `forge` is set the message is signed by
/// the wrong key, so full verification fails.
fn transfer(from: u64, nonce: u64, atto: u64, forge: bool) -> SealedMessage {
    let key = if forge {
        keypair(from + 77)
    } else {
        keypair(from)
    };
    Message {
        from: Address::new(100 + from),
        to: Address::new(100 + (from + 1) % USERS),
        value: TokenAmount::from_atto(u128::from(atto)),
        nonce: Nonce::new(nonce),
        method: Method::Send,
    }
    .sign(&key)
    .into()
}

proptest! {
    /// Receipts, the produced block, and the resulting state root are
    /// identical across {no cache, warm cache} × parallelism {1, 4}.
    #[test]
    fn pipeline_options_never_change_results(
        schedule in prop::collection::vec(
            (0u64..USERS, 1u64..1_000_000, any::<bool>()),
            1..25,
        ),
    ) {
        let mut nonces = [0u64; USERS as usize];
        let msgs: Vec<SealedMessage> = schedule
            .iter()
            .map(|(u, atto, forge)| {
                // Forged messages burn the nonce slot anyway: the payload
                // keeps per-sender nonce order so only signature validity
                // differs between schedule entries.
                let m = transfer(*u, nonces[*u as usize], *atto, *forge);
                nonces[*u as usize] += 1;
                m
            })
            .collect();
        let proposer = keypair(99);

        // A warm cache, as mempool admission would leave it: only the
        // honestly signed messages enter (forgeries fail verification and
        // are refused, paying an uncached miss).
        let cache = SigCache::new(1024);
        let mut pool = Mempool::new().with_sig_cache(cache.clone());
        let mut honest = 0u64;
        for m in &msgs {
            if pool.push_sealed(m.clone()) {
                honest += 1;
            }
        }
        prop_assert_eq!(cache.len() as u64, honest);

        // Reference: no cache, sequential verification.
        let mut ref_tree = genesis();
        let reference = produce_block_with(
            &mut ref_tree,
            SubnetId::root(),
            ChainEpoch::new(1),
            Cid::NIL,
            vec![],
            msgs.clone(),
            &proposer,
            1_000,
            ExecOptions::default(),
        );
        let ref_root = ref_tree.flush();

        let variants = [
            ExecOptions { sig_cache: None, parallelism: 4 },
            ExecOptions { sig_cache: Some(&cache), parallelism: 1 },
            ExecOptions { sig_cache: Some(&cache), parallelism: 4 },
        ];
        for opts in variants {
            let mut tree = genesis();
            let produced = produce_block_with(
                &mut tree,
                SubnetId::root(),
                ChainEpoch::new(1),
                Cid::NIL,
                vec![],
                msgs.clone(),
                &proposer,
                1_000,
                opts,
            );
            prop_assert_eq!(&produced.receipts, &reference.receipts);
            prop_assert_eq!(&produced.block, &reference.block);
            prop_assert_eq!(tree.flush(), ref_root);

            // Validation replays to the same state under the same options.
            let mut validator = genesis();
            let receipts = execute_block_with(&mut validator, &reference.block, opts).unwrap();
            prop_assert_eq!(&receipts, &reference.receipts);
            prop_assert_eq!(validator.flush(), ref_root);
        }
    }
}
