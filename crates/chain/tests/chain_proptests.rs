//! Property-based tests of the chain substrate: mempool selection,
//! block replay, and chain-store integrity.

use proptest::prelude::*;

use hc_actors::ScaConfig;
use hc_chain::{execute_block, produce_block, Block, ChainStore, Mempool};
use hc_state::{Message, Method, SealedMessage, SignedMessage, StateTree};
use hc_types::{Address, ChainEpoch, Cid, Keypair, Nonce, SubnetId, TokenAmount};

const USERS: u64 = 3;

fn keypair(i: u64) -> Keypair {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&i.to_le_bytes());
    seed[8] = 0x7a;
    Keypair::from_seed(seed)
}

fn genesis() -> StateTree {
    StateTree::genesis(
        SubnetId::root(),
        ScaConfig::default(),
        (0..USERS).map(|i| {
            (
                Address::new(100 + i),
                keypair(i).public(),
                TokenAmount::from_whole(1_000),
            )
        }),
    )
}

fn signed(from: u64, nonce: u64, atto: u64) -> SignedMessage {
    Message {
        from: Address::new(100 + from),
        to: Address::new(100 + (from + 1) % USERS),
        value: TokenAmount::from_atto(u128::from(atto)),
        nonce: Nonce::new(nonce),
        method: Method::Send,
    }
    .sign(&keypair(from))
}

proptest! {
    /// Selection is a prefix-closed, nonce-ordered, bounded view of the
    /// pool; removal after inclusion shrinks it exactly.
    #[test]
    fn mempool_selection_is_ordered_and_bounded(
        msgs_per_user in prop::collection::vec(0usize..12, USERS as usize),
        max in 0usize..40,
    ) {
        let mut pool = Mempool::new();
        for (u, &n) in msgs_per_user.iter().enumerate() {
            for nonce in 0..n {
                prop_assert!(pool.push(signed(u as u64, nonce as u64, 1)));
            }
        }
        let total: usize = msgs_per_user.iter().sum();
        let selected = pool.select(max);
        prop_assert_eq!(selected.len(), max.min(total));
        // Per-sender nonce order within the selection.
        for u in 0..USERS {
            let nonces: Vec<u64> = selected
                .iter()
                .filter(|m| m.message().from == Address::new(100 + u))
                .map(|m| m.message().nonce.value())
                .collect();
            for w in nonces.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            // Dense from zero (prefix of the sender's queue).
            for (i, n) in nonces.iter().enumerate() {
                prop_assert_eq!(*n, i as u64);
            }
        }
        pool.remove_included(selected.iter());
        prop_assert_eq!(pool.len(), total - selected.len());
    }

    /// Any produced block replays to the identical state on a validator,
    /// and a corrupted payload or root never does.
    #[test]
    fn blocks_replay_and_reject_corruption(
        schedule in prop::collection::vec((0u64..USERS, 1u64..1_000_000), 1..25),
        corrupt in any::<bool>(),
    ) {
        let proposer = keypair(99);
        let mut producer_tree = genesis();
        let mut validator_tree = producer_tree.clone();

        let mut nonces = [0u64; USERS as usize];
        let msgs: Vec<SealedMessage> = schedule
            .iter()
            .map(|(u, atto)| {
                let m = signed(*u, nonces[*u as usize], *atto);
                nonces[*u as usize] += 1;
                SealedMessage::new(m)
            })
            .collect();

        let executed = produce_block(
            &mut producer_tree,
            SubnetId::root(),
            ChainEpoch::new(1),
            Cid::NIL,
            vec![],
            msgs,
            &proposer,
            1_000,
        );

        if corrupt {
            let mut bad = executed.block.clone();
            bad.header.state_root = Cid::digest(b"corrupted");
            let resealed = Block::seal(
                bad.header.clone(),
                bad.signed_msgs.clone(),
                bad.implicit_msgs.clone(),
                &proposer,
            );
            prop_assert!(execute_block(&mut validator_tree, &resealed).is_err());
            prop_assert_eq!(validator_tree.flush(), genesis().flush());
        } else {
            let receipts = execute_block(&mut validator_tree, &executed.block).unwrap();
            prop_assert_eq!(receipts.len(), schedule.len());
            prop_assert_eq!(validator_tree.flush(), producer_tree.flush());
            // Supply conserved through any transfer schedule.
            prop_assert_eq!(
                validator_tree.total_supply(),
                TokenAmount::from_whole(1_000 * USERS)
            );
        }
    }

    /// The chain store accepts exactly the blocks extending its head and
    /// preserves insertion order.
    #[test]
    fn chain_store_accepts_only_head_extensions(epoch_gaps in prop::collection::vec(1u64..5, 1..15)) {
        let proposer = keypair(98);
        let mut store = ChainStore::new(SubnetId::root());
        let mut epoch = 0u64;
        let mut cids = Vec::new();
        for gap in &epoch_gaps {
            epoch += gap;
            let header = hc_chain::BlockHeader {
                subnet: SubnetId::root(),
                epoch: ChainEpoch::new(epoch),
                parent: store.head(),
                state_root: Cid::digest(&epoch.to_le_bytes()),
                msgs_root: Block::compute_msgs_root(&[], &[]),
                proposer: proposer.public(),
                timestamp_ms: epoch,
            };
            let block = Block::seal(header, vec![], vec![], &proposer);
            // A block with the wrong parent is always refused.
            let mut orphan = block.clone();
            orphan.header.parent = Cid::digest(b"nowhere");
            let orphan = Block::seal(
                orphan.header.clone(),
                vec![],
                vec![],
                &proposer,
            );
            if store.head() != Cid::digest(b"nowhere") {
                prop_assert!(store.append(orphan).is_err());
            }
            cids.push(store.append(block).unwrap());
        }
        prop_assert_eq!(store.len(), epoch_gaps.len());
        for (i, cid) in cids.iter().enumerate() {
            prop_assert_eq!(store.get_index(i).unwrap().cid(), *cid);
        }
        prop_assert_eq!(store.head_epoch(), ChainEpoch::new(epoch));
    }
}
