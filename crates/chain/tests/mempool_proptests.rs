//! Property tests of mempool admission control: selection is a pure
//! function of the admitted set (push order never matters), the
//! over-capacity flood converges to one surviving set with the byte bound
//! holding at every step, and the admission → selection → execution
//! pipeline is bit-identical at every `parallelism` setting.

use proptest::prelude::*;

use hc_actors::ScaConfig;
use hc_chain::{
    execute_block_with, produce_block_with, ExecOptions, Mempool, MempoolConfig, PushOutcome,
};
use hc_state::{Message, SealedMessage, StateTree};
use hc_types::{Address, CanonicalEncode, ChainEpoch, Cid, Keypair, Nonce, SubnetId, TokenAmount};

const USERS: u64 = 12;

fn keypair(i: u64) -> Keypair {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&i.to_le_bytes());
    seed[8] = 0x9b;
    Keypair::from_seed(seed)
}

fn genesis() -> StateTree {
    StateTree::genesis(
        SubnetId::root(),
        ScaConfig::default(),
        (0..USERS).map(|i| {
            (
                Address::new(100 + i),
                keypair(i).public(),
                TokenAmount::from_whole(1_000),
            )
        }),
    )
}

/// A signed transfer with dense per-sender nonces, shaped identically
/// across the whole payload so every message costs the same wire bytes.
fn payload(ops: &[(u64, u64)]) -> Vec<SealedMessage> {
    let mut nonces = [0u64; USERS as usize];
    ops.iter()
        .map(|&(from_sel, to_sel)| {
            let from = from_sel % USERS;
            let nonce = nonces[from as usize];
            nonces[from as usize] += 1;
            SealedMessage::new(
                Message::transfer(
                    Address::new(100 + from),
                    Address::new(100 + to_sel % USERS),
                    TokenAmount::from_atto(7),
                    Nonce::new(nonce),
                )
                .sign(&keypair(from)),
            )
        })
        .collect()
}

/// Fisher–Yates driven by a tiny LCG: a deterministic permutation of
/// `msgs` from the generated seed.
fn shuffled(msgs: &[SealedMessage], mut seed: u64) -> Vec<SealedMessage> {
    let mut out: Vec<SealedMessage> = msgs.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.swap(i, (seed >> 33) as usize % (i + 1));
    }
    out
}

fn selection(pool: &Mempool) -> Vec<Cid> {
    pool.select(usize::MAX)
        .iter()
        .map(|m| m.msg_cid())
        .collect()
}

proptest! {
    /// With no byte bound, the pool's state — and therefore the selected
    /// block order — is a pure function of the admitted *set*: pushing
    /// any permutation of the same messages, with the same per-message
    /// fees, selects the identical sequence (fees descending, equal fees
    /// in ascending message-CID order, lanes in nonce order).
    #[test]
    fn selection_is_push_order_invariant(
        ops in prop::collection::vec((0u64..USERS, 0u64..USERS), 1..64),
        fees in prop::collection::vec(0u64..5, 64),
        seed in any::<u64>(),
    ) {
        let msgs = payload(&ops);
        let mut a = Mempool::new();
        for (i, m) in msgs.iter().enumerate() {
            prop_assert!(a.push_sealed_with_fee(m.clone(), fees[i % fees.len()]).is_admitted());
        }
        let mut b = Mempool::new();
        // The permutation must carry each message's fee with it.
        let indexed: Vec<(SealedMessage, u64)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), fees[i % fees.len()]))
            .collect();
        let mut perm = indexed;
        let mut s = seed;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        for (m, fee) in &perm {
            prop_assert!(b.push_sealed_with_fee(m.clone(), *fee).is_admitted());
        }
        prop_assert_eq!(selection(&a), selection(&b));
        prop_assert_eq!(a.occupancy_bytes(), b.occupancy_bytes());
    }

    /// Flooding a bounded pool with equal-fee, equal-size messages: the
    /// byte budget holds after *every* push (and at the high-water mark),
    /// the books balance, and replaying the identical flood is
    /// bit-identical — eviction never consults anything but the pool.
    #[test]
    fn flood_never_exceeds_byte_bound(
        ops in prop::collection::vec((0u64..USERS, 0u64..USERS), 8..96),
        capacity_msgs in 2usize..24,
    ) {
        let msgs = payload(&ops);
        let bytes_each = msgs[0].signed().canonical_bytes().len();
        let cap = capacity_msgs * bytes_each;
        let config = MempoolConfig { capacity_bytes: cap, ..MempoolConfig::default() };

        let mut a = Mempool::with_config(config);
        for m in &msgs {
            let outcome = a.push_sealed_with_fee(m.clone(), 3);
            prop_assert!(matches!(outcome, PushOutcome::Admitted | PushOutcome::Full));
            prop_assert!(a.occupancy_bytes() <= cap, "bound violated mid-flood");
        }
        let stats = a.stats();
        prop_assert!(stats.high_water_bytes <= cap as u64);
        prop_assert_eq!(stats.admitted - stats.evicted, a.len() as u64);
        prop_assert_eq!(
            stats.admitted + stats.rejected_full,
            msgs.len() as u64,
            "every push was either admitted or refused"
        );

        let mut b = Mempool::with_config(config);
        for m in &msgs {
            b.push_sealed_with_fee(m.clone(), 3);
        }
        prop_assert_eq!(selection(&a), selection(&b), "replaying the flood must be bit-identical");
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// With one message per sender (every lane a singleton, so every
    /// message is always an eviction candidate), an equal-fee flood
    /// converges to exactly the `capacity` highest message CIDs no matter
    /// what order it arrived in: eviction discards the lowest `(fee,
    /// CID)` first, and selection emits the survivors in ascending CID
    /// order.
    ///
    /// (Multi-message lanes are deliberately excluded — only lane *tails*
    /// are eviction candidates there, so a message refused while its
    /// lane-mate shielded it never returns, and the surviving set
    /// legitimately depends on arrival order.)
    #[test]
    fn singleton_lane_flood_converges_independent_of_order(
        senders in 8u64..80,
        capacity_msgs in 2usize..24,
        seed in any::<u64>(),
    ) {
        let msgs: Vec<SealedMessage> = (0..senders)
            .map(|i| {
                SealedMessage::new(
                    Message::transfer(
                        Address::new(1_000 + i),
                        Address::new(5_000 + i),
                        TokenAmount::from_atto(7),
                        Nonce::new(0),
                    )
                    .sign(&keypair(1_000 + i)),
                )
            })
            .collect();
        let bytes_each = msgs[0].signed().canonical_bytes().len();
        let config = MempoolConfig {
            capacity_bytes: capacity_msgs * bytes_each,
            ..MempoolConfig::default()
        };

        // Oracle: survivors are the top `capacity_msgs` CIDs, selected in
        // ascending CID order (fees are all equal).
        let mut expected: Vec<Cid> = msgs.iter().map(|m| m.msg_cid()).collect();
        expected.sort();
        if expected.len() > capacity_msgs {
            expected.drain(..expected.len() - capacity_msgs);
        }

        for order in [msgs.clone(), shuffled(&msgs, seed), shuffled(&msgs, seed ^ 0xdead_beef)] {
            let mut pool = Mempool::with_config(config);
            for m in order {
                pool.push_sealed_with_fee(m, 3);
                prop_assert!(pool.occupancy_bytes() <= config.capacity_bytes);
            }
            prop_assert_eq!(selection(&pool), expected.clone());
        }
    }

    /// The whole admission → selection → block production → validation
    /// pipeline yields bit-identical receipts, blocks, and state roots at
    /// parallelism 1, 2, 4, and 8.
    #[test]
    fn selected_blocks_execute_identically_across_parallelism(
        ops in prop::collection::vec((0u64..USERS, 0u64..USERS), 1..64),
        fees in prop::collection::vec(0u64..9, 64),
    ) {
        let msgs = payload(&ops);
        let mut pool = Mempool::new();
        for (i, m) in msgs.iter().enumerate() {
            prop_assert!(pool.push_sealed_with_fee(m.clone(), fees[i % fees.len()]).is_admitted());
        }
        let selected = pool.select(usize::MAX);
        let proposer = keypair(0);

        let mut ref_tree = genesis();
        let reference = produce_block_with(
            &mut ref_tree,
            SubnetId::root(),
            ChainEpoch::new(1),
            Cid::NIL,
            vec![],
            selected.clone(),
            &proposer,
            1_000,
            ExecOptions::default(),
        );
        let ref_root = ref_tree.flush();

        for parallelism in [1usize, 2, 4, 8] {
            let opts = ExecOptions { sig_cache: None, parallelism };
            let mut tree = genesis();
            let produced = produce_block_with(
                &mut tree,
                SubnetId::root(),
                ChainEpoch::new(1),
                Cid::NIL,
                vec![],
                selected.clone(),
                &proposer,
                1_000,
                opts,
            );
            prop_assert_eq!(&produced.receipts, &reference.receipts);
            prop_assert_eq!(&produced.block, &reference.block);
            prop_assert_eq!(tree.flush(), ref_root);

            let mut validator = genesis();
            let receipts = execute_block_with(&mut validator, &reference.block, opts).unwrap();
            prop_assert_eq!(&receipts, &reference.receipts);
            prop_assert_eq!(validator.flush(), ref_root);
        }
    }
}
