//! Property tests of the parallel execution engine's determinism guarantee:
//! for any payload — swept from fully disjoint account pairs to
//! all-same-sender, salted with forged signatures, bad nonces, unknown
//! senders, over-balance transfers, and serial (system-touching) barrier
//! messages — block production and validation yield bit-identical receipts,
//! blocks, gas, and state roots at every `parallelism` setting.

use proptest::prelude::*;

use hc_actors::ScaConfig;
use hc_chain::{execute_block_with, produce_block_with, ExecOptions, Schedule};
use hc_state::{Message, Method, SealedMessage, StateTree};
use hc_types::{Address, ChainEpoch, Cid, Keypair, Nonce, SubnetId, TokenAmount};

const USERS: u64 = 24;

fn keypair(i: u64) -> Keypair {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&i.to_le_bytes());
    seed[8] = 0x5c;
    Keypair::from_seed(seed)
}

fn genesis() -> StateTree {
    StateTree::genesis(
        SubnetId::root(),
        ScaConfig::default(),
        (0..USERS).map(|i| {
            (
                Address::new(100 + i),
                keypair(i).public(),
                TokenAmount::from_whole(1_000),
            )
        }),
    )
}

/// One generated payload entry before conflict-mode shaping.
type Op = (u64, u64, u8, u32);

/// Materialises a payload from generated ops under a conflict mode:
/// 0 = round-robin senders (mostly disjoint pairs → many lanes),
/// 1 = generated senders (mixed conflicts),
/// 2 = single sender (fully serialised dependency chain).
fn build_payload(ops: &[Op], mode: usize) -> Vec<SealedMessage> {
    let mut nonces = [0u64; USERS as usize];
    ops.iter()
        .enumerate()
        .map(|(idx, &(from_sel, to_sel, kind, atto))| {
            let from = match mode {
                0 => idx as u64 % USERS,
                1 => from_sel % USERS,
                _ => 0,
            };
            // Every entry burns the sender's nonce slot, like a proposer
            // draining a per-sender queue; entries whose authentication
            // fails leave the on-chain nonce behind the tracker, so later
            // entries cascade into deterministic nonce rejections. That
            // is exactly the kind of failure the sweep must keep
            // bit-identical across parallelism settings.
            let nonce = nonces[from as usize];
            nonces[from as usize] += 1;
            let key = keypair(from);
            match kind {
                // Forged signature: wrong key, fails verification.
                5 => Message::transfer(
                    Address::new(100 + from),
                    Address::new(100 + to_sel % USERS),
                    TokenAmount::from_atto(u128::from(atto) + 1),
                    Nonce::new(nonce),
                )
                .sign(&keypair(from + 77))
                .into(),
                // Bad nonce: skips ahead, rejected deterministically.
                6 => Message::transfer(
                    Address::new(100 + from),
                    Address::new(100 + to_sel % USERS),
                    TokenAmount::from_atto(u128::from(atto) + 1),
                    Nonce::new(nonce + 7),
                )
                .sign(&key)
                .into(),
                // Unknown sender: no such account, rejected before the
                // signature is even checked.
                7 => Message::transfer(
                    Address::new(500 + from),
                    Address::new(100 + to_sel % USERS),
                    TokenAmount::from_atto(u128::from(atto) + 1),
                    Nonce::ZERO,
                )
                .sign(&key)
                .into(),
                // Over-balance transfer: authenticates, then fails.
                8 => Message::transfer(
                    Address::new(100 + from),
                    Address::new(100 + to_sel % USERS),
                    TokenAmount::from_whole(1_000_000),
                    Nonce::new(nonce),
                )
                .sign(&key)
                .into(),
                // Serial barrier: touches the SCA, never enters a lane.
                9 => Message {
                    from: Address::new(100 + from),
                    to: Address::SCA,
                    value: TokenAmount::ZERO,
                    nonce: Nonce::new(nonce),
                    method: Method::SaveState { state: Cid::NIL },
                }
                .sign(&key)
                .into(),
                // Honest transfer (most of the weight range).
                _ => Message::transfer(
                    Address::new(100 + from),
                    Address::new(100 + to_sel % USERS),
                    TokenAmount::from_atto(u128::from(atto) + 1),
                    Nonce::new(nonce),
                )
                .sign(&key)
                .into(),
            }
        })
        .collect()
}

proptest! {
    /// Receipts, the produced block, and the resulting state root are
    /// identical across parallelism {1, 2, 4, 8}, at every conflict ratio
    /// from disjoint pairs to all-same-sender.
    #[test]
    fn parallelism_never_changes_results(
        ops in prop::collection::vec(
            (0u64..USERS, 0u64..USERS, 0u8..10, 1u32..1_000_000),
            1..48,
        ),
        mode in 0usize..3,
    ) {
        let msgs = build_payload(&ops, mode);
        let proposer = keypair(99);

        // Reference: sequential production (parallelism 0/1 path).
        let mut ref_tree = genesis();
        let reference = produce_block_with(
            &mut ref_tree,
            SubnetId::root(),
            ChainEpoch::new(1),
            Cid::NIL,
            vec![],
            msgs.clone(),
            &proposer,
            1_000,
            ExecOptions::default(),
        );
        let ref_root = ref_tree.flush();
        let ref_gas = reference.gas_used();

        // The schedule covers the payload exactly, whatever its shape.
        let stats = Schedule::build(&msgs).stats();
        prop_assert_eq!(stats.messages, msgs.len());

        for parallelism in [2usize, 4, 8] {
            let opts = ExecOptions { sig_cache: None, parallelism };
            let mut tree = genesis();
            let produced = produce_block_with(
                &mut tree,
                SubnetId::root(),
                ChainEpoch::new(1),
                Cid::NIL,
                vec![],
                msgs.clone(),
                &proposer,
                1_000,
                opts,
            );
            prop_assert_eq!(&produced.receipts, &reference.receipts);
            prop_assert_eq!(&produced.block, &reference.block);
            prop_assert_eq!(produced.gas_used(), ref_gas);
            prop_assert_eq!(tree.flush(), ref_root);

            // Validation replays on the parallel engine to the same state;
            // a from-scratch root rebuild agrees with the incremental one.
            let mut validator = genesis();
            let receipts = execute_block_with(&mut validator, &reference.block, opts).unwrap();
            prop_assert_eq!(&receipts, &reference.receipts);
            prop_assert_eq!(validator.flush(), ref_root);
            prop_assert_eq!(validator.recompute_root(), ref_root);
        }
    }
}
