//! Open-loop traffic generation: *who* sends *what* to *whom*, with no
//! reference to the runtime at all.
//!
//! The generator is a pure, seeded stream over **logical account
//! indices** in `0..population` — materializing an index into an
//! on-chain account is the driver's job (see
//! [`crate::accounts::LazyAccounts`]), which is what lets a run declare a
//! million-account population while only ever paying for the accounts the
//! Zipfian draw actually touches.
//!
//! Open-loop means arrivals do not wait for service: each round injects
//! [`RampProfile::rate_at`] messages regardless of how far behind the
//! chain is, which is exactly the regime where admission control and
//! elastic scale-out earn their keep.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// One generated message: logical sender/receiver indices plus a fee bid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficOp {
    /// Logical index of the sending account.
    pub sender: u64,
    /// Logical index of the receiving account (never equal to `sender`).
    pub receiver: u64,
    /// Fee bid carried to mempool admission (`0` = no bid).
    pub fee: u64,
}

/// Arrival rate as a function of the round number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RampProfile {
    /// The same rate every round.
    Constant(u64),
    /// Linear interpolation from `start` (round 0) to `end` (last round).
    Linear {
        /// Rate at the first round.
        start: u64,
        /// Rate at the last round.
        end: u64,
    },
    /// Piecewise-constant steps: `(first_round, rate)` pairs in ascending
    /// round order; the latest step at or before the round applies.
    Steps(Vec<(u64, u64)>),
}

impl RampProfile {
    /// Messages to inject in `round` of a `total_rounds`-round run.
    pub fn rate_at(&self, round: u64, total_rounds: u64) -> u64 {
        match self {
            RampProfile::Constant(rate) => *rate,
            RampProfile::Linear { start, end } => {
                if total_rounds <= 1 {
                    return *end;
                }
                let span = (total_rounds - 1) as i128;
                let interpolated = *start as i128
                    + (*end as i128 - *start as i128) * (round.min(total_rounds - 1) as i128)
                        / span;
                interpolated.max(0) as u64
            }
            RampProfile::Steps(steps) => steps
                .iter()
                .take_while(|(from, _)| *from <= round)
                .last()
                .map(|(_, rate)| *rate)
                .unwrap_or(0),
        }
    }
}

/// The seeded open-loop stream of [`TrafficOp`]s.
#[derive(Debug, Clone)]
pub struct OpenLoopGenerator {
    zipf: Zipf,
    rng: StdRng,
    max_fee: u64,
}

impl OpenLoopGenerator {
    /// Creates a generator over `population` logical accounts with Zipf
    /// exponent `zipf_s` (`0.0` = uniform). When `max_fee > 0` each op
    /// carries a uniform fee bid in `1..=max_fee`; otherwise fees are `0`
    /// and the fee draw is skipped entirely so the rng stream is
    /// identical to a fee-less run.
    ///
    /// # Panics
    ///
    /// Panics when `population < 2` (an op needs two distinct parties).
    pub fn new(population: u64, zipf_s: f64, seed: u64, max_fee: u64) -> Self {
        assert!(population >= 2, "open-loop traffic needs >= 2 accounts");
        OpenLoopGenerator {
            zipf: Zipf::new(population, zipf_s),
            rng: StdRng::seed_from_u64(seed),
            max_fee,
        }
    }

    /// The logical population size.
    pub fn population(&self) -> u64 {
        self.zipf.population()
    }

    /// Draws the next op. Sender and receiver are independent Zipf draws;
    /// a self-send collapses deterministically onto the next account so
    /// the draw count per op is fixed (two, plus one fee draw when fees
    /// are on).
    pub fn next_op(&mut self) -> TrafficOp {
        let sender = self.zipf.sample(&mut self.rng) - 1;
        let mut receiver = self.zipf.sample(&mut self.rng) - 1;
        if receiver == sender {
            receiver = (sender + 1) % self.zipf.population();
        }
        let fee = if self.max_fee > 0 {
            self.rng.gen_range(1..=self.max_fee)
        } else {
            0
        };
        TrafficOp {
            sender,
            receiver,
            fee,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_profiles_evaluate() {
        assert_eq!(RampProfile::Constant(7).rate_at(0, 10), 7);
        assert_eq!(RampProfile::Constant(7).rate_at(9, 10), 7);

        let ramp = RampProfile::Linear {
            start: 10,
            end: 110,
        };
        assert_eq!(ramp.rate_at(0, 11), 10);
        assert_eq!(ramp.rate_at(5, 11), 60);
        assert_eq!(ramp.rate_at(10, 11), 110);
        let down = RampProfile::Linear { start: 100, end: 0 };
        assert_eq!(down.rate_at(0, 5), 100);
        assert_eq!(down.rate_at(4, 5), 0);

        let steps = RampProfile::Steps(vec![(0, 5), (3, 50), (6, 10)]);
        assert_eq!(steps.rate_at(0, 10), 5);
        assert_eq!(steps.rate_at(2, 10), 5);
        assert_eq!(steps.rate_at(3, 10), 50);
        assert_eq!(steps.rate_at(5, 10), 50);
        assert_eq!(steps.rate_at(9, 10), 10);
    }

    #[test]
    fn generator_is_deterministic_and_never_self_sends() {
        let ops_a: Vec<TrafficOp> = {
            let mut g = OpenLoopGenerator::new(1_000_000, 1.05, 42, 9);
            (0..2_000).map(|_| g.next_op()).collect()
        };
        let ops_b: Vec<TrafficOp> = {
            let mut g = OpenLoopGenerator::new(1_000_000, 1.05, 42, 9);
            (0..2_000).map(|_| g.next_op()).collect()
        };
        assert_eq!(ops_a, ops_b);
        for op in &ops_a {
            assert_ne!(op.sender, op.receiver);
            assert!(op.sender < 1_000_000 && op.receiver < 1_000_000);
            assert!((1..=9).contains(&op.fee));
        }
    }

    #[test]
    fn zero_max_fee_means_zero_fees() {
        let mut g = OpenLoopGenerator::new(100, 0.8, 3, 0);
        for _ in 0..200 {
            assert_eq!(g.next_op().fee, 0);
        }
    }

    #[test]
    fn skewed_traffic_touches_few_accounts() {
        let mut g = OpenLoopGenerator::new(1_000_000, 1.2, 7, 0);
        let mut touched = std::collections::BTreeSet::new();
        for _ in 0..5_000 {
            let op = g.next_op();
            touched.insert(op.sender);
            touched.insert(op.receiver);
        }
        // 10k draws over a million accounts at s=1.2 concentrate on a tiny
        // working set — the whole point of lazy materialization.
        assert!(
            touched.len() < 2_500,
            "{} distinct accounts touched",
            touched.len()
        );
    }
}
