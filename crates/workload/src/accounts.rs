//! Lazy materialization of logical account indices into runtime users.
//!
//! A declared population of a million accounts must not cost a million
//! `create_user` calls up front: Zipfian traffic touches a small working
//! set, so accounts materialize on first touch and are cached thereafter.
//! Materialization order follows traffic order, which is itself seeded —
//! so the logical-index → address mapping is deterministic per run.

use std::collections::BTreeMap;

use hc_core::{HierarchyRuntime, RuntimeError, UserHandle};
use hc_types::{SubnetId, TokenAmount};

/// The lazy logical-index → on-chain account table.
#[derive(Debug, Clone)]
pub struct LazyAccounts {
    initial_balance: TokenAmount,
    handles: BTreeMap<u64, UserHandle>,
}

impl LazyAccounts {
    /// Creates an empty table; accounts materialize at the root with
    /// `initial_balance` minted on first touch.
    pub fn new(initial_balance: TokenAmount) -> Self {
        LazyAccounts {
            initial_balance,
            handles: BTreeMap::new(),
        }
    }

    /// How many logical accounts have been materialized so far.
    pub fn materialized(&self) -> u64 {
        self.handles.len() as u64
    }

    /// The root-chain handle for logical account `idx`, creating (and
    /// funding) it on first touch.
    ///
    /// # Errors
    ///
    /// Propagates `create_user` failures.
    pub fn handle(
        &mut self,
        rt: &mut HierarchyRuntime,
        idx: u64,
    ) -> Result<UserHandle, RuntimeError> {
        if let Some(h) = self.handles.get(&idx) {
            return Ok(h.clone());
        }
        let h = rt.create_user(&SubnetId::root(), self.initial_balance)?;
        self.handles.insert(idx, h.clone());
        Ok(h)
    }

    /// The handle for `idx` if it has materialized.
    pub fn get(&self, idx: u64) -> Option<&UserHandle> {
        self.handles.get(&idx)
    }

    /// All materialized `(logical index, handle)` pairs, index-ascending.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &UserHandle)> {
        self.handles.iter().map(|(i, h)| (*i, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::RuntimeConfig;

    #[test]
    fn materializes_once_and_caches() {
        let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
        let mut accounts = LazyAccounts::new(TokenAmount::from_whole(5));
        let a = accounts.handle(&mut rt, 900_000).unwrap();
        let b = accounts.handle(&mut rt, 900_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(accounts.materialized(), 1);
        assert_eq!(rt.balance(&a), TokenAmount::from_whole(5));

        let c = accounts.handle(&mut rt, 3).unwrap();
        assert_ne!(a.addr, c.addr);
        assert_eq!(accounts.materialized(), 2);
    }
}
