//! Zipfian sampling over huge ranks in O(1) per draw.
//!
//! Real transaction traffic is heavily skewed: a handful of exchange and
//! contract accounts receive most messages while a long tail of millions
//! of accounts is touched rarely. [`Zipf`] samples ranks `1..=n` with
//! `P(k) ∝ 1 / k^s` using Hörmann & Derflinger's rejection-inversion
//! method — setup is O(1) and each draw costs a constant number of
//! floating-point operations plus at most a handful of rejections, so a
//! population of a million accounts is exactly as cheap to sample as a
//! population of ten. `s = 0` degenerates to the uniform distribution.
//!
//! The implementation mirrors the classical algorithm (as popularized by
//! `rand_distr::Zipf`): invert the integral `H` of the dominating density
//! `x^-s` and reject against the true mass.

use rand::Rng;
use rand::RngCore;

/// A Zipf distribution over ranks `1..=n` with exponent `s >= 0`.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `H(1.5) - 1`, the left edge of the inversion domain.
    h_x1: f64,
    /// `H(n + 0.5)`, the right edge.
    h_n: f64,
    /// Rejection threshold shortcut: draws left of this accept rank 1
    /// immediately (the common case for skewed exponents).
    dominant: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf: population must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "zipf: exponent must be >= 0");
        let h_x1 = h(1.5, s) - 1.0;
        let h_n = h(n as f64 + 0.5, s);
        let dominant = h(1.5, s) - h_integral_inverse_guard(s);
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            dominant,
        }
    }

    /// The population size `n`.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.s == 0.0 {
            // Uniform shortcut (and the s→0 limit of the math below).
            return rng.gen_range(0..self.n) + 1;
        }
        loop {
            let u = self.h_n + rng.gen_range(0.0..1.0) * (self.h_x1 - self.h_n);
            let x = h_inverse(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Accept if u lands under the true mass at rank k.
            if u >= h(k + 0.5, self.s) - (-k.ln() * self.s).exp() || u >= self.dominant {
                return k as u64;
            }
        }
    }
}

/// `H(x) = ∫ t^-s dt`: `(x^(1-s) - 1) / (1 - s)`, with the `s = 1`
/// limit `ln x`.
fn h(x: f64, s: f64) -> f64 {
    let one_minus_s = 1.0 - s;
    if one_minus_s.abs() < 1e-9 {
        x.ln()
    } else {
        (x.powf(one_minus_s) - 1.0) / one_minus_s
    }
}

/// Inverse of [`h`].
fn h_inverse(v: f64, s: f64) -> f64 {
    let one_minus_s = 1.0 - s;
    if one_minus_s.abs() < 1e-9 {
        v.exp()
    } else {
        (1.0 + v * one_minus_s).powf(1.0 / one_minus_s)
    }
}

/// The mass guard for the immediate-accept shortcut at rank 1.
fn h_integral_inverse_guard(s: f64) -> f64 {
    (-(1.5f64).ln() * s).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(1_000_000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1_000_000).contains(&k));
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let zipf = Zipf::new(1_000_000, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let draws = 20_000;
        let low = (0..draws).filter(|_| zipf.sample(&mut rng) <= 100).count();
        // With s=1.2 over 1M ranks, the top-100 ranks carry well over half
        // the mass; uniform sampling would hit them 0.01% of the time.
        assert!(
            low > draws / 2,
            "only {low}/{draws} draws hit the top 100 ranks"
        );
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [0u32; 100];
        for _ in 0..20_000 {
            seen[(zipf.sample(&mut rng) - 1) as usize] += 1;
        }
        // Every rank hit, none hit wildly above average.
        assert!(seen.iter().all(|&c| c > 0));
        assert!(seen.iter().all(|&c| c < 600));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let zipf = Zipf::new(10_000, 0.9);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..1000).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..1000).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn million_rank_sampling_is_fast_enough_to_be_constant_time() {
        // Smoke check that huge populations don't degrade: 50k draws over
        // 100M ranks complete instantly if the sampler is O(1).
        let zipf = Zipf::new(100_000_000, 1.05);
        let mut rng = StdRng::seed_from_u64(5);
        let mut acc = 0u64;
        for _ in 0..50_000 {
            acc = acc.wrapping_add(zipf.sample(&mut rng));
        }
        assert!(acc > 0);
    }
}
