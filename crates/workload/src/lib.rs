//! # hc-workload — seeded traffic engines for the hierarchy
//!
//! Benchmarking a horizontal-scaling framework needs load that looks like
//! the real thing: a huge, heavily skewed account population, arrival
//! rates that ramp past what any single subnet can serve, and a traffic
//! mix that exercises cross-net routing. This crate generates exactly
//! that, deterministically:
//!
//! * [`Zipf`] — O(1) rejection-inversion sampling of account popularity
//!   over millions of ranks.
//! * [`OpenLoopGenerator`] / [`RampProfile`] — a pure, seeded stream of
//!   [`TrafficOp`]s over *logical* account indices, at a rate that is a
//!   function of the round, independent of service progress (open loop).
//! * [`LazyAccounts`] — logical indices materialize into funded on-chain
//!   accounts on first touch, so a million-account population costs only
//!   its Zipfian working set.
//! * [`OpenLoop`] — the driver: inject, wave, poll an optional
//!   [`hc_core::ElasticController`] so the hierarchy splits and merges
//!   under the load, and record the committed-throughput curve
//!   ([`OpenLoopReport`]).
//! * [`ClosedBatch`] — the legacy closed-loop batch shape that `hc-sim`'s
//!   `Workload` (E10) now delegates to, rng-compatible with its
//!   pre-crate implementation.
//!
//! Everything is a pure function of the seed and the runtime's own
//! deterministic clock: two runs with the same inputs produce
//! bit-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounts;
pub mod driver;
pub mod generator;
pub mod zipf;

pub use accounts::LazyAccounts;
pub use driver::{BatchReport, ClosedBatch, OpenLoop, OpenLoopReport};
pub use generator::{OpenLoopGenerator, RampProfile, TrafficOp};
pub use zipf::Zipf;
