//! Drivers that inject generated traffic into a [`HierarchyRuntime`].
//!
//! Two regimes:
//!
//! * [`ClosedBatch`] — the historical closed-loop shape: submit a fixed
//!   batch per subnet up front, then drain to quiescence. This is the
//!   engine behind `hc-sim`'s `Workload` (E10) and reproduces its seeded
//!   rng call sequence exactly when fees are off, so moving the sim onto
//!   this crate changed no numbers.
//! * [`OpenLoop`] — the scaling regime: per round, inject
//!   [`RampProfile::rate_at`] Zipf-routed messages over a lazily
//!   materialized population (millions of logical accounts), step the
//!   hierarchy one wave, and optionally poll an [`ElasticController`] so
//!   the topology reshapes itself under the load. Arrivals never wait for
//!   service — sustained overload is the point.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hc_chain::PushOutcome;
use hc_core::{ElasticController, HierarchyRuntime, RuntimeError, UserHandle};
use hc_state::Method;
use hc_types::{SubnetId, TokenAmount};

use crate::accounts::LazyAccounts;
use crate::generator::{OpenLoopGenerator, RampProfile};

/// A closed-loop batch: a fixed number of messages per subnet, submitted
/// up front from a pre-built population, then drained.
#[derive(Debug, Clone)]
pub struct ClosedBatch {
    /// Messages to submit per subnet.
    pub msgs_per_subnet: usize,
    /// Fraction of cross-net messages, `0.0..=1.0`.
    pub cross_ratio: f64,
    /// Transfer amount (atto) per message.
    pub amount: TokenAmount,
    /// Generator seed.
    pub seed: u64,
    /// When `> 0`, every submission carries a uniform fee bid in
    /// `1..=max_fee`; when `0`, the fee-less legacy path runs and the rng
    /// stream is bit-identical to the pre-`hc-workload` generator.
    pub max_fee: u64,
}

impl Default for ClosedBatch {
    fn default() -> Self {
        ClosedBatch {
            msgs_per_subnet: 200,
            cross_ratio: 0.0,
            amount: TokenAmount::from_atto(1_000),
            seed: 7,
            max_fee: 0,
        }
    }
}

/// What a [`ClosedBatch`] run measured, all in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Messages submitted.
    pub submitted: usize,
    /// User messages executed successfully (across the hierarchy).
    pub executed_ok: u64,
    /// User messages that failed.
    pub failed: u64,
    /// Cross-net messages applied at their destinations.
    pub cross_applied: u64,
    /// Virtual milliseconds elapsed during the run.
    pub elapsed_ms: u64,
    /// Blocks produced during the run.
    pub blocks: u64,
    /// Aggregate throughput: successful user messages per virtual second,
    /// summed over subnets (subnets run in parallel).
    pub aggregate_tps: f64,
}

impl ClosedBatch {
    /// Submits the batch into every subnet's mempool and drives the
    /// hierarchy until it drains. `subnets` fixes the submission order;
    /// `users` maps each subnet to its pre-built population (subnets with
    /// no users are skipped).
    ///
    /// # Errors
    ///
    /// Propagates submission/step failures.
    pub fn run(
        &self,
        rt: &mut HierarchyRuntime,
        subnets: &[SubnetId],
        users: &BTreeMap<SubnetId, Vec<UserHandle>>,
    ) -> Result<BatchReport, RuntimeError> {
        let mut rng = StdRng::seed_from_u64(self.seed);

        let stats_before: Vec<_> = subnets
            .iter()
            .map(|s| rt.node(s).map(|n| n.stats()).unwrap_or_default())
            .collect();
        let t0 = rt.now_ms();

        let mut submitted = 0usize;
        for subnet in subnets {
            let locals = users.get(subnet).cloned().unwrap_or_default();
            if locals.is_empty() {
                continue;
            }
            for i in 0..self.msgs_per_subnet {
                let from = &locals[i % locals.len()];
                let cross = self.cross_ratio > 0.0 && rng.gen_bool(self.cross_ratio.min(1.0));
                // Cross targets must live in a *different* subnet that has
                // users (the root may carry none in subnet-only sweeps).
                let candidates: Vec<&SubnetId> = subnets
                    .iter()
                    .filter(|s| *s != subnet && users.get(s).is_some_and(|u| !u.is_empty()))
                    .collect();
                if cross && !candidates.is_empty() {
                    let other = candidates[rng.gen_range(0..candidates.len())];
                    let peers = &users[other];
                    let to = &peers[rng.gen_range(0..peers.len())];
                    if self.max_fee > 0 {
                        let fee = rng.gen_range(1..=self.max_fee);
                        rt.cross_transfer_lazy_with_fee(from, to, self.amount, fee)?;
                    } else {
                        rt.cross_transfer_lazy(from, to, self.amount)?;
                    }
                } else {
                    let to = &locals[rng.gen_range(0..locals.len())];
                    let (to_addr, value, method) = if to.addr != from.addr {
                        (to.addr, self.amount, Method::Send)
                    } else {
                        (
                            from.addr,
                            TokenAmount::ZERO,
                            Method::PutData {
                                key: b"ping".to_vec(),
                                data: i.to_le_bytes().to_vec(),
                            },
                        )
                    };
                    if self.max_fee > 0 {
                        let fee = rng.gen_range(1..=self.max_fee);
                        rt.submit_with_fee(from, to_addr, value, method, fee)?;
                    } else {
                        rt.submit(from, to_addr, value, method)?;
                    }
                }
                submitted += 1;
            }
        }

        rt.run_until_quiescent(1_000_000)?;

        let mut executed_ok = 0;
        let mut failed = 0;
        let mut cross_applied = 0;
        let mut blocks = 0;
        let mut aggregate_tps = 0.0;
        for (s, before) in subnets.iter().zip(stats_before) {
            let Some(node) = rt.node(s) else { continue };
            let after = node.stats();
            executed_ok += after.user_msgs_ok - before.user_msgs_ok;
            failed += after.user_msgs_failed - before.user_msgs_failed;
            cross_applied += after.cross_applied - before.cross_applied;
            blocks += after.blocks - before.blocks;
            let interval = after.total_interval_ms - before.total_interval_ms;
            if interval > 0 {
                aggregate_tps +=
                    (after.user_msgs_ok - before.user_msgs_ok) as f64 * 1_000.0 / interval as f64;
            }
        }
        Ok(BatchReport {
            submitted,
            executed_ok,
            failed,
            cross_applied,
            elapsed_ms: rt.now_ms() - t0,
            blocks,
            aggregate_tps,
        })
    }
}

/// The open-loop engine configuration.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    /// Logical account population (lazily materialized; must be ≥ 2).
    pub population: u64,
    /// Zipf exponent of account popularity (`0.0` = uniform).
    pub zipf_exponent: f64,
    /// Injection rounds to run (one `step_wave` per round).
    pub rounds: u64,
    /// Arrival rate per round.
    pub ramp: RampProfile,
    /// Transfer amount per message.
    pub amount: TokenAmount,
    /// Balance minted into each account on first touch.
    pub initial_balance: TokenAmount,
    /// Generator seed.
    pub seed: u64,
    /// When `> 0`, fee bids are uniform in `1..=max_fee`.
    pub max_fee: u64,
    /// Virtual milliseconds one injection round spans (one epoch at the
    /// default block time). Waves run until the clock crosses it, so a
    /// deep hierarchy — whose ancestor/descendant subnets never share a
    /// wave — still gives every subnet its block cadence each round.
    pub epoch_ms: u64,
    /// Wave bound on the post-injection drain phase.
    pub drain_bound: usize,
}

impl Default for OpenLoop {
    fn default() -> Self {
        OpenLoop {
            population: 1_000_000,
            zipf_exponent: 1.05,
            rounds: 40,
            ramp: RampProfile::Constant(50),
            amount: TokenAmount::from_atto(1_000),
            initial_balance: TokenAmount::from_whole(100),
            seed: 7,
            max_fee: 9,
            epoch_ms: 1_000,
            drain_bound: 10_000,
        }
    }
}

/// What an [`OpenLoop`] run measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenLoopReport {
    /// Messages submitted across all rounds.
    pub submitted: u64,
    /// Submissions admitted into a mempool.
    pub admitted: u64,
    /// Submissions bounced by admission control (pool full, bid too low).
    pub rejected: u64,
    /// Submissions deduplicated as already-seen.
    pub duplicates: u64,
    /// User messages committed during the injection rounds, per round —
    /// the sustained-throughput curve.
    pub committed_per_round: Vec<u64>,
    /// User messages committed during the post-injection drain.
    pub drained_committed: u64,
    /// Logical accounts actually materialized (working-set size).
    pub accounts_materialized: u64,
    /// The materialized `(logical index, root address)` pairs,
    /// index-ascending — the key for cross-run balance comparisons.
    pub touched: Vec<(u64, hc_types::Address)>,
    /// Largest aggregate mempool occupancy observed, in bytes.
    pub peak_mempool_bytes: u64,
    /// Virtual milliseconds elapsed (injection + drain).
    pub elapsed_ms: u64,
    /// Whether the hierarchy fully drained within the bound.
    pub drained: bool,
}

impl OpenLoopReport {
    /// Total user messages committed (injection rounds + drain).
    pub fn committed(&self) -> u64 {
        self.committed_per_round.iter().sum::<u64>() + self.drained_committed
    }

    /// Mean committed messages per round over the last `window` injection
    /// rounds — the sustained throughput at the ramp's peak.
    pub fn sustained_tail(&self, window: usize) -> f64 {
        if self.committed_per_round.is_empty() || window == 0 {
            return 0.0;
        }
        let n = window.min(self.committed_per_round.len());
        let tail = &self.committed_per_round[self.committed_per_round.len() - n..];
        tail.iter().sum::<u64>() as f64 / n as f64
    }
}

impl OpenLoop {
    /// Runs the open loop against `rt`, optionally letting `ctrl` reshape
    /// the hierarchy between waves.
    ///
    /// Per round: inject `ramp.rate_at(round)` ops (senders and receivers
    /// drawn from the Zipf popularity, materialized at the root on first
    /// touch, routed to their current elastic home), run one block wave,
    /// poll the controller, and record the committed-message delta. After
    /// the last round, waves continue until the hierarchy is quiescent or
    /// `drain_bound` is hit.
    ///
    /// # Errors
    ///
    /// Propagates submission/step/controller failures.
    pub fn run(
        &self,
        rt: &mut HierarchyRuntime,
        mut ctrl: Option<&mut ElasticController>,
    ) -> Result<OpenLoopReport, RuntimeError> {
        let root = SubnetId::root();
        let mut generator =
            OpenLoopGenerator::new(self.population, self.zipf_exponent, self.seed, self.max_fee);
        let mut accounts = LazyAccounts::new(self.initial_balance);

        let mut last_ok: BTreeMap<SubnetId, u64> = BTreeMap::new();
        let t0 = rt.now_ms();
        let mut report = OpenLoopReport {
            submitted: 0,
            admitted: 0,
            rejected: 0,
            duplicates: 0,
            committed_per_round: Vec::with_capacity(self.rounds as usize),
            drained_committed: 0,
            accounts_materialized: 0,
            touched: Vec::new(),
            peak_mempool_bytes: 0,
            elapsed_ms: 0,
            drained: false,
        };

        for round in 0..self.rounds {
            let rate = self.ramp.rate_at(round, self.rounds);
            for _ in 0..rate {
                let op = generator.next_op();
                let sender = accounts.handle(rt, op.sender)?;
                let receiver = accounts.handle(rt, op.receiver)?;
                let from_home = match ctrl {
                    Some(ref c) => c.home_of(sender.addr, &root),
                    None => root.clone(),
                };
                let to_home = match ctrl {
                    Some(ref c) => c.home_of(receiver.addr, &root),
                    None => root.clone(),
                };
                let from = UserHandle {
                    subnet: from_home.clone(),
                    addr: sender.addr,
                };
                let outcome = if from_home == to_home {
                    rt.submit_with_fee(&from, receiver.addr, self.amount, Method::Send, op.fee)?
                        .1
                } else {
                    let to = UserHandle {
                        subnet: to_home,
                        addr: receiver.addr,
                    };
                    rt.cross_transfer_lazy_with_fee(&from, &to, self.amount, op.fee)?
                        .1
                };
                report.submitted += 1;
                match outcome {
                    PushOutcome::Admitted => report.admitted += 1,
                    PushOutcome::Duplicate => report.duplicates += 1,
                    PushOutcome::Invalid | PushOutcome::Full => report.rejected += 1,
                }
            }

            // One epoch of virtual time: ancestor and descendant subnets
            // never share a wave, so a single wave would under-serve deep
            // hierarchies. Run waves until the clock crosses the epoch.
            let target = rt.now_ms() + self.epoch_ms;
            loop {
                rt.step_wave()?;
                if let Some(c) = ctrl.as_deref_mut() {
                    c.poll(rt)?;
                }
                if rt.now_ms() >= target {
                    break;
                }
            }

            report
                .committed_per_round
                .push(commit_delta(rt, &mut last_ok));
            let bytes = rt.pool_stats().mempool_bytes;
            report.peak_mempool_bytes = report.peak_mempool_bytes.max(bytes);
        }

        // Drain: no new arrivals; keep waving (and letting the controller
        // merge now-cold children) until quiescent or the bound trips.
        let mut waves = 0usize;
        while !rt.all_quiescent() && waves < self.drain_bound {
            rt.step_wave()?;
            if let Some(c) = ctrl.as_deref_mut() {
                c.poll(rt)?;
            }
            waves += 1;
        }
        report.drained = rt.all_quiescent();
        report.drained_committed = commit_delta(rt, &mut last_ok);
        report.accounts_materialized = accounts.materialized();
        report.touched = accounts.iter().map(|(i, h)| (i, h.addr)).collect();
        report.elapsed_ms = rt.now_ms() - t0;
        Ok(report)
    }
}

/// Sums `user_msgs_ok` growth across every live subnet since the previous
/// call, updating the baseline. Subnets retired since the last call simply
/// stop contributing; fresh subnets contribute from zero.
fn commit_delta(rt: &HierarchyRuntime, last_ok: &mut BTreeMap<SubnetId, u64>) -> u64 {
    let mut delta = 0u64;
    let snapshot: Vec<(SubnetId, u64)> = rt
        .subnets()
        .map(|s| {
            let ok = rt.node(s).map(|n| n.stats().user_msgs_ok).unwrap_or(0);
            (s.clone(), ok)
        })
        .collect();
    for (s, ok) in snapshot {
        let prev = last_ok.get(&s).copied().unwrap_or(0);
        delta += ok.saturating_sub(prev);
        last_ok.insert(s, ok);
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::RuntimeConfig;

    #[test]
    fn open_loop_static_commits_and_is_deterministic() {
        let run = || {
            let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
            OpenLoop {
                population: 10_000,
                rounds: 6,
                ramp: RampProfile::Constant(20),
                drain_bound: 2_000,
                ..OpenLoop::default()
            }
            .run(&mut rt, None)
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce bit-identical reports");
        assert_eq!(a.submitted, 120);
        assert_eq!(a.admitted, 120);
        assert!(a.drained);
        assert_eq!(a.committed(), 120);
        // Lazy materialization: far fewer accounts than the population.
        assert!(a.accounts_materialized < 300);
    }

    #[test]
    fn open_loop_ramp_tracks_rate() {
        let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
        let report = OpenLoop {
            population: 1_000,
            rounds: 4,
            ramp: RampProfile::Linear { start: 0, end: 30 },
            drain_bound: 2_000,
            ..OpenLoop::default()
        }
        .run(&mut rt, None)
        .unwrap();
        // 0 + 10 + 20 + 30 arrivals.
        assert_eq!(report.submitted, 60);
        assert_eq!(report.committed(), 60);
        assert_eq!(report.committed_per_round.len(), 4);
    }
}
