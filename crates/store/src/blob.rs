//! Content-addressed blob log.
//!
//! Persists the blobs of a `CidStore` (state chunks, snapshot manifests,
//! resolved message groups). Each record is `cid ‖ blob bytes`; the CID is
//! recomputed and checked on open, so a blob that survived a crash is also
//! known to be uncorrupted *content*, not just an intact frame. A CID index
//! is kept in memory for dedup: structural sharing between consecutive
//! snapshots (PR 2) therefore carries to disk — re-persisting an unchanged
//! chunk appends nothing.
//!
//! The log is append-only; space is reclaimed by [`BlobLog::retain`], which
//! compacts the log down to a caller-provided live set (the GC mark phase —
//! walking snapshot manifests — lives with the `CidStore` owner, which
//! knows how to parse manifests).

use std::collections::HashSet;
use std::sync::Arc;

use hc_types::Cid;

use crate::device::Persistence;
use crate::wal::{Wal, WalOptions};

/// A durable, deduplicating log of content-addressed blobs.
#[derive(Debug, Clone)]
pub struct BlobLog {
    wal: Wal,
    index: HashSet<Cid>,
}

fn encode_record(cid: &Cid, blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + blob.len());
    out.extend_from_slice(cid.as_bytes());
    out.extend_from_slice(blob);
    out
}

fn decode_record(payload: &[u8]) -> Option<(Cid, &[u8])> {
    let cid_bytes: [u8; 32] = payload.get(..32)?.try_into().ok()?;
    Some((Cid::from_bytes(cid_bytes), &payload[32..]))
}

impl BlobLog {
    /// Opens (recovering if necessary) the blob log named `name`,
    /// rebuilding the CID index from the surviving records.
    ///
    /// Records whose stored CID does not match the digest of their bytes
    /// are treated as the start of the torn tail, exactly like a checksum
    /// failure: the log is truncated to the valid prefix before them.
    pub fn open(device: Arc<dyn Persistence>, name: &str, opts: WalOptions) -> Self {
        let (mut wal, records) = Wal::open(device, name, opts);
        let mut index = HashSet::new();
        let mut valid = 0usize;
        for payload in &records {
            let Some((cid, blob)) = decode_record(payload) else {
                break;
            };
            if Cid::digest(blob) != cid {
                break;
            }
            index.insert(cid);
            valid += 1;
        }
        if valid < records.len() {
            wal.truncate_after(valid);
        }
        BlobLog { wal, index }
    }

    /// Persists `blob` under `cid` unless it is already stored. Returns
    /// `true` if bytes were appended.
    pub fn put(&mut self, cid: Cid, blob: &[u8]) -> bool {
        if self.index.contains(&cid) {
            return false;
        }
        self.wal.append(&encode_record(&cid, blob));
        self.index.insert(cid);
        true
    }

    /// Returns `true` if `cid` is stored.
    pub fn contains(&self, cid: &Cid) -> bool {
        self.index.contains(cid)
    }

    /// Reads a blob back from the log (a device scan; O(log size)).
    pub fn get(&self, cid: &Cid) -> Option<Vec<u8>> {
        if !self.index.contains(cid) {
            return None;
        }
        self.wal
            .read_all()
            .iter()
            .filter_map(|p| decode_record(p))
            .find(|(c, _)| c == cid)
            .map(|(_, blob)| blob.to_vec())
    }

    /// Number of distinct blobs stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if no blobs are stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Forces buffered bytes to stable storage.
    pub fn sync(&mut self) {
        self.wal.sync();
    }

    /// Compacts the log down to `live`, dropping every other blob.
    /// Returns `(pruned_blobs, pruned_bytes)` where bytes count blob
    /// content (not framing overhead).
    pub fn retain(&mut self, live: &HashSet<Cid>) -> (u64, u64) {
        let mut kept = Vec::new();
        let mut pruned_blobs = 0u64;
        let mut pruned_bytes = 0u64;
        for payload in self.wal.read_all() {
            let Some((cid, blob)) = decode_record(&payload) else {
                continue;
            };
            if live.contains(&cid) {
                kept.push(payload);
            } else {
                pruned_blobs += 1;
                pruned_bytes += blob.len() as u64;
                self.index.remove(&cid);
            }
        }
        if pruned_blobs > 0 {
            self.wal.reset_with(&kept);
        }
        (pruned_blobs, pruned_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::InMemoryDevice;
    use crate::FsyncPolicy;

    fn opts() -> WalOptions {
        WalOptions {
            segment_bytes: 256,
            fsync: FsyncPolicy::Never,
        }
    }

    fn blob(i: u8) -> (Cid, Vec<u8>) {
        let bytes = vec![i; 10 + i as usize];
        (Cid::digest(&bytes), bytes)
    }

    #[test]
    fn put_dedups_and_survives_reopen() {
        let dev: Arc<dyn Persistence> = Arc::new(InMemoryDevice::new());
        {
            let mut log = BlobLog::open(dev.clone(), "blobs", opts());
            for i in 0..8 {
                let (cid, bytes) = blob(i);
                assert!(log.put(cid, &bytes));
                assert!(!log.put(cid, &bytes), "second put must dedup");
            }
            assert_eq!(log.len(), 8);
        }
        let log = BlobLog::open(dev, "blobs", opts());
        assert_eq!(log.len(), 8);
        for i in 0..8 {
            let (cid, bytes) = blob(i);
            assert!(log.contains(&cid));
            assert_eq!(log.get(&cid).unwrap(), bytes);
        }
    }

    #[test]
    fn content_mismatch_is_cut_off_like_a_torn_tail() {
        let dev: Arc<dyn Persistence> = Arc::new(InMemoryDevice::new());
        {
            let (mut wal, _) = Wal::open(dev.clone(), "blobs", opts());
            let (cid, bytes) = blob(1);
            wal.append(&encode_record(&cid, &bytes));
            // A frame whose checksum is fine but whose CID lies.
            wal.append(&encode_record(&cid, b"not the preimage"));
            let (cid3, bytes3) = blob(3);
            wal.append(&encode_record(&cid3, &bytes3));
        }
        let log = BlobLog::open(dev, "blobs", opts());
        assert_eq!(log.len(), 1, "only the prefix before the lie survives");
        assert!(log.contains(&blob(1).0));
        assert!(!log.contains(&blob(3).0));
    }

    #[test]
    fn retain_compacts_and_reports_stats() {
        let dev: Arc<dyn Persistence> = Arc::new(InMemoryDevice::new());
        let mut log = BlobLog::open(dev.clone(), "blobs", opts());
        let mut live = HashSet::new();
        let mut dead_bytes = 0u64;
        for i in 0..10 {
            let (cid, bytes) = blob(i);
            log.put(cid, &bytes);
            if i % 2 == 0 {
                live.insert(cid);
            } else {
                dead_bytes += bytes.len() as u64;
            }
        }
        let (pruned, bytes) = log.retain(&live);
        assert_eq!(pruned, 5);
        assert_eq!(bytes, dead_bytes);
        assert_eq!(log.len(), 5);
        // Survivors are intact after compaction and reopen.
        let log = BlobLog::open(dev, "blobs", opts());
        assert_eq!(log.len(), 5);
        for cid in &live {
            assert!(log.contains(cid));
        }
    }
}
