//! Crash-injection utilities.
//!
//! These helpers model the failure modes the recovery contract must survive,
//! directly against a [`Persistence`] device:
//!
//! * **torn write** — truncate a stream at an arbitrary byte offset, as if
//!   the process died mid-append;
//! * **bit rot / partial sector** — flip a single byte;
//! * **kill between fsyncs** — fork an [`InMemoryDevice`](crate::InMemoryDevice)
//!   at a chosen moment and continue the "crashed" timeline from the fork
//!   while the original keeps running as the uncrashed control.
//!
//! They are ordinary library functions (not `#[cfg(test)]`) so integration
//! tests in other crates — notably the `hc-core` crash harness — can drive
//! them against a live runtime's device.

use std::sync::Arc;

use crate::device::Persistence;

/// Length of `stream` on `device`.
pub fn stream_len(device: &Arc<dyn Persistence>, stream: &str) -> u64 {
    device.len(stream)
}

/// Truncates `stream` to `len` bytes — a torn write at that offset.
pub fn truncate_stream(device: &Arc<dyn Persistence>, stream: &str, len: u64) {
    device.truncate(stream, len);
}

/// Flips one byte of `stream` in place (read, flip, rewrite).
///
/// Does nothing if `offset` is past the end of the stream.
pub fn corrupt_byte(device: &Arc<dyn Persistence>, stream: &str, offset: u64) {
    let mut bytes = device.read(stream);
    let Some(b) = bytes.get_mut(offset as usize) else {
        return;
    };
    *b ^= 0xff;
    device.truncate(stream, 0);
    device.append(stream, &bytes);
}

/// Total bytes across all streams of the device.
pub fn total_bytes(device: &Arc<dyn Persistence>) -> u64 {
    device.streams().iter().map(|s| device.len(s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::InMemoryDevice;
    use crate::frame::{encode_frame, scan_frames};

    #[test]
    fn corrupt_byte_breaks_exactly_one_frame() {
        let dev: Arc<dyn Persistence> = Arc::new(InMemoryDevice::new());
        let frame = encode_frame(b"payload");
        dev.append("s", &frame);
        dev.append("s", &frame);
        corrupt_byte(&dev, "s", frame.len() as u64 + 20);
        let scan = scan_frames(&dev.read("s"));
        assert_eq!(scan.payloads.len(), 1);
        assert!(scan.torn);
    }

    #[test]
    fn truncate_models_a_torn_write() {
        let dev: Arc<dyn Persistence> = Arc::new(InMemoryDevice::new());
        dev.append("s", &encode_frame(b"abcdef"));
        let full = stream_len(&dev, "s");
        truncate_stream(&dev, "s", full - 1);
        let scan = scan_frames(&dev.read("s"));
        assert_eq!(scan.payloads.len(), 0);
        assert!(scan.torn);
        assert_eq!(total_bytes(&dev), full - 1);
    }
}
