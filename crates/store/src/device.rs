//! Storage devices: named append-only byte streams.
//!
//! A [`Persistence`] device is the narrow waist between the logs above it
//! ([`crate::Wal`], [`crate::BlobLog`]) and the bytes below: a set of named
//! streams supporting append, whole/partial reads, truncation, and sync.
//! Corruption handling lives entirely in the framing layer — a device
//! returns whatever bytes it has, and the frame scanner decides how much of
//! them to trust.
//!
//! I/O errors on the [`OnDiskDevice`] are treated as fatal (panic): the
//! simulation models *crashes* (torn writes, lost tails), not a gradually
//! failing disk.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// When a log forces its bytes to stable storage.
///
/// On the [`InMemoryDevice`] a sync is a counted no-op; the policy still
/// matters for crash-injection tests, which use the sync boundary as the
/// "guaranteed durable" cut line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append (maximum durability, slowest).
    #[default]
    Always,
    /// Sync after every `n` appends.
    EveryN(u32),
    /// Never sync explicitly; the OS (or the drop of the process) decides.
    Never,
}

/// A set of named append-only byte streams.
///
/// Stream names are hierarchical (`control`, `chains/root/blocks`); the
/// on-disk backend maps each `/`-separated segment to a directory level.
/// Reading a stream that was never written yields empty bytes, and
/// truncating beyond the end is a no-op — both fall out naturally from the
/// "longest valid prefix" recovery discipline.
pub trait Persistence: Send + Sync {
    /// Returns the full contents of `stream` (empty if never written).
    fn read(&self, stream: &str) -> Vec<u8>;

    /// Appends `bytes` to the end of `stream`, creating it if needed.
    fn append(&self, stream: &str, bytes: &[u8]);

    /// Truncates `stream` to at most `len` bytes.
    fn truncate(&self, stream: &str, len: u64);

    /// Current length of `stream` in bytes (0 if never written).
    fn len(&self, stream: &str) -> u64;

    /// Forces buffered bytes of `stream` to stable storage.
    fn sync(&self, stream: &str);

    /// All existing stream names, sorted.
    fn streams(&self) -> Vec<String>;

    /// Number of syncs issued so far (for tests and benches).
    fn sync_count(&self) -> u64;
}

/// In-memory device: streams are byte vectors behind a shared lock.
///
/// Clones share the same underlying storage — this is what lets a test keep
/// a handle to the "disk" while the runtime that writes to it is dropped
/// (the crash), then hand the same bytes to a recovering runtime. Use
/// [`InMemoryDevice::fork`] for an independent copy (e.g. to crash the same
/// history at several different offsets).
#[derive(Clone, Default)]
pub struct InMemoryDevice {
    streams: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    syncs: Arc<AtomicU64>,
}

impl InMemoryDevice {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deep-copies the device: the fork shares nothing with `self`.
    pub fn fork(&self) -> Self {
        InMemoryDevice {
            streams: Arc::new(Mutex::new(self.streams.lock().clone())),
            syncs: Arc::new(AtomicU64::new(self.syncs.load(Ordering::Relaxed))),
        }
    }

    /// Total bytes across all streams.
    pub fn total_bytes(&self) -> u64 {
        self.streams.lock().values().map(|v| v.len() as u64).sum()
    }
}

impl std::fmt::Debug for InMemoryDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let guard = self.streams.lock();
        f.debug_struct("InMemoryDevice")
            .field("streams", &guard.len())
            .field("bytes", &guard.values().map(Vec::len).sum::<usize>())
            .finish()
    }
}

impl Persistence for InMemoryDevice {
    fn read(&self, stream: &str) -> Vec<u8> {
        self.streams.lock().get(stream).cloned().unwrap_or_default()
    }

    fn append(&self, stream: &str, bytes: &[u8]) {
        self.streams
            .lock()
            .entry(stream.to_owned())
            .or_default()
            .extend_from_slice(bytes);
    }

    fn truncate(&self, stream: &str, len: u64) {
        if let Some(v) = self.streams.lock().get_mut(stream) {
            v.truncate(len as usize);
        }
    }

    fn len(&self, stream: &str) -> u64 {
        self.streams
            .lock()
            .get(stream)
            .map_or(0, |v| v.len() as u64)
    }

    fn sync(&self, _stream: &str) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    fn streams(&self) -> Vec<String> {
        self.streams.lock().keys().cloned().collect()
    }

    fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

/// On-disk device: one file per stream under a root directory.
///
/// Stream name segments are sanitised to a conservative character set so a
/// hostile stream name can never escape the root. Tests must root this in
/// `std::env::temp_dir()` (tmpdir hygiene is asserted by the test suite).
#[derive(Debug, Clone)]
pub struct OnDiskDevice {
    root: PathBuf,
    syncs: Arc<AtomicU64>,
}

fn sanitize_segment(seg: &str) -> String {
    let cleaned: String = seg
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect();
    // Never allow a path component that walks upward or vanishes.
    if cleaned.is_empty() || cleaned.chars().all(|c| c == '.') {
        "_".to_owned()
    } else {
        cleaned
    }
}

impl OnDiskDevice {
    /// Opens (creating if needed) a device rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the root directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        fs::create_dir_all(&root).expect("create device root");
        OnDiskDevice {
            root,
            syncs: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The root directory backing this device.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, stream: &str) -> PathBuf {
        let mut path = self.root.clone();
        for seg in stream.split('/').filter(|s| !s.is_empty()) {
            path.push(sanitize_segment(seg));
        }
        path
    }

    fn collect_streams(&self, dir: &Path, prefix: &str, out: &mut Vec<String>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        let mut entries: Vec<_> = entries.filter_map(Result::ok).collect();
        entries.sort_by_key(std::fs::DirEntry::file_name);
        for entry in entries {
            let name = entry.file_name().to_string_lossy().into_owned();
            let joined = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            let path = entry.path();
            if path.is_dir() {
                self.collect_streams(&path, &joined, out);
            } else {
                out.push(joined);
            }
        }
    }
}

impl Persistence for OnDiskDevice {
    fn read(&self, stream: &str) -> Vec<u8> {
        fs::read(self.path_for(stream)).unwrap_or_default()
    }

    fn append(&self, stream: &str, bytes: &[u8]) {
        let path = self.path_for(stream);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create stream directory");
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open stream for append");
        file.write_all(bytes).expect("append to stream");
    }

    fn truncate(&self, stream: &str, len: u64) {
        let path = self.path_for(stream);
        let Ok(file) = fs::OpenOptions::new().write(true).open(&path) else {
            return;
        };
        let current = file.metadata().map(|m| m.len()).unwrap_or(0);
        if len < current {
            file.set_len(len).expect("truncate stream");
        }
    }

    fn len(&self, stream: &str) -> u64 {
        fs::metadata(self.path_for(stream)).map_or(0, |m| m.len())
    }

    fn sync(&self, stream: &str) {
        // A data sync on any descriptor flushes the file's pages.
        if let Ok(file) = fs::File::open(self.path_for(stream)) {
            file.sync_data().expect("fsync stream");
        }
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    fn streams(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_streams(&self.root.clone(), "", &mut out);
        out.sort();
        out
    }

    fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hc-store-device-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn exercise(device: &dyn Persistence) {
        assert_eq!(device.read("a/b"), Vec::<u8>::new());
        device.append("a/b", b"hello ");
        device.append("a/b", b"world");
        assert_eq!(device.read("a/b"), b"hello world");
        assert_eq!(device.len("a/b"), 11);
        device.truncate("a/b", 5);
        assert_eq!(device.read("a/b"), b"hello");
        device.truncate("a/b", 500); // beyond end: no-op
        assert_eq!(device.len("a/b"), 5);
        device.append("c", b"x");
        assert_eq!(device.streams(), vec!["a/b".to_owned(), "c".to_owned()]);
        device.sync("a/b");
        assert!(device.sync_count() >= 1);
    }

    #[test]
    fn in_memory_device_round_trip() {
        exercise(&InMemoryDevice::new());
    }

    #[test]
    fn on_disk_device_round_trip() {
        let root = tmp_root("roundtrip");
        exercise(&OnDiskDevice::new(&root));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn in_memory_clones_share_and_forks_do_not() {
        let a = InMemoryDevice::new();
        let b = a.clone();
        a.append("s", b"shared");
        assert_eq!(b.read("s"), b"shared");
        let f = a.fork();
        a.append("s", b"-more");
        assert_eq!(f.read("s"), b"shared");
        assert_eq!(a.read("s"), b"shared-more");
    }

    #[test]
    fn on_disk_reopen_sees_previous_bytes() {
        let root = tmp_root("reopen");
        {
            let d = OnDiskDevice::new(&root);
            d.append("chains/root/blocks", b"abc");
        }
        let d = OnDiskDevice::new(&root);
        assert_eq!(d.read("chains/root/blocks"), b"abc");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn hostile_stream_names_stay_under_the_root() {
        let root = tmp_root("hostile");
        let d = OnDiskDevice::new(&root);
        d.append("../../etc/passwd", b"nope");
        d.append("a/../escape", b"nope");
        for s in d.streams() {
            assert!(!s.contains(".."), "sanitised stream {s:?}");
        }
        assert!(!root.parent().unwrap().join("escape").exists());
        let _ = fs::remove_dir_all(&root);
    }
}
