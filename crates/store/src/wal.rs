//! Segmented append-only write-ahead log.
//!
//! A [`Wal`] stores opaque records as checksummed frames (see
//! [`crate::frame`]) across numbered segment streams
//! (`<name>/00000000.seg`, `<name>/00000001.seg`, …). Segmentation bounds
//! the cost of truncating a torn tail and lets compaction rewrite a log
//! without unbounded buffering.
//!
//! Opening a WAL recovers it: segments are scanned in order, every intact
//! record is returned, and the first violation (checksum mismatch, torn
//! frame, or a gap) marks the end of the valid prefix — the torn tail and
//! all later segments are truncated so the writer resumes from a clean
//! state. This is what makes the recovery contract of the whole subsystem
//! hold: after any crash, a reopened log contains exactly a prefix of the
//! records whose append completed.

use std::sync::Arc;

use crate::device::{FsyncPolicy, Persistence};
use crate::frame::{encode_frame, scan_frames};

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Target maximum bytes per segment; a record that would overflow the
    /// current segment starts a new one (a single record larger than the
    /// limit gets a segment of its own).
    pub segment_bytes: u64,
    /// Sync policy applied after appends.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// Per-record location, used to truncate precisely at record boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RecordEnd {
    segment: u32,
    end_offset: u64,
}

/// A segmented, checksummed append-only log of opaque byte records.
///
/// Cloning shares the underlying device; at most one clone may append
/// (multiple writers would interleave frames nondeterministically).
#[derive(Clone)]
pub struct Wal {
    device: Arc<dyn Persistence>,
    name: String,
    opts: WalOptions,
    /// Index of the segment currently appended to.
    segment: u32,
    /// Byte length of the current segment.
    segment_len: u64,
    /// End position of every record, in order.
    record_ends: Vec<RecordEnd>,
    appends_since_sync: u32,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("name", &self.name)
            .field("records", &self.record_ends.len())
            .field("segment", &self.segment)
            .finish()
    }
}

impl Wal {
    /// Opens (recovering if necessary) the log named `name` on `device`,
    /// returning the log handle and every intact record in append order.
    ///
    /// Any torn tail is truncated away as part of opening; see the module
    /// docs for the recovery contract.
    pub fn open(
        device: Arc<dyn Persistence>,
        name: &str,
        opts: WalOptions,
    ) -> (Self, Vec<Vec<u8>>) {
        let mut records = Vec::new();
        let mut record_ends = Vec::new();
        let mut segment = 0u32;
        let mut segment_len = 0u64;
        loop {
            let stream = segment_stream(name, segment);
            let bytes = device.read(&stream);
            if bytes.is_empty() && device.len(&stream) == 0 {
                // First never-written segment: end of the log. Resume in the
                // previous segment if one exists.
                if segment > 0 {
                    segment -= 1;
                    segment_len = device.len(&segment_stream(name, segment));
                }
                break;
            }
            let scan = scan_frames(&bytes);
            for payload in &scan.payloads {
                record_ends.push(RecordEnd {
                    segment,
                    end_offset: 0, // patched below, once offsets are known
                });
                records.push(payload.clone());
            }
            // Recompute exact end offsets for this segment's records.
            let mut off = 0u64;
            let n = scan.payloads.len();
            for (i, payload) in scan.payloads.iter().enumerate() {
                off += (crate::frame::FRAME_HEADER_LEN + payload.len()) as u64;
                let idx = record_ends.len() - n + i;
                record_ends[idx].end_offset = off;
            }
            if scan.torn {
                segment_len = scan.valid_len;
                break;
            }
            segment_len = scan.valid_len;
            segment += 1;
        }
        let mut wal = Wal {
            device,
            name: name.to_owned(),
            opts,
            segment,
            segment_len,
            record_ends,
            appends_since_sync: 0,
        };
        // Whether the scan stopped at a torn frame or at a gap, everything
        // past the resume point is untrusted: clear it so appends never
        // land after stale bytes.
        wal.truncate_from(wal.segment, wal.segment_len);
        (wal, records)
    }

    /// Appends one record and applies the sync policy.
    pub fn append(&mut self, payload: &[u8]) {
        let frame = encode_frame(payload);
        if self.segment_len > 0 && self.segment_len + frame.len() as u64 > self.opts.segment_bytes {
            self.segment += 1;
            self.segment_len = 0;
        }
        let stream = segment_stream(&self.name, self.segment);
        self.device.append(&stream, &frame);
        self.segment_len += frame.len() as u64;
        self.record_ends.push(RecordEnd {
            segment: self.segment,
            end_offset: self.segment_len,
        });
        match self.opts.fsync {
            FsyncPolicy::Always => self.device.sync(&stream),
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n.max(1) {
                    self.device.sync(&stream);
                    self.appends_since_sync = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
    }

    /// Forces the current segment to stable storage.
    pub fn sync(&mut self) {
        self.device.sync(&segment_stream(&self.name, self.segment));
        self.appends_since_sync = 0;
    }

    /// Number of records currently in the log.
    pub fn record_count(&self) -> usize {
        self.record_ends.len()
    }

    /// The log's base name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device this log writes to.
    pub fn device(&self) -> &Arc<dyn Persistence> {
        &self.device
    }

    /// Re-reads every record currently in the log (a fresh scan of the
    /// device). Used by compaction; O(log size).
    pub fn read_all(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for seg in 0..=self.segment {
            let scan = scan_frames(&self.device.read(&segment_stream(&self.name, seg)));
            out.extend(scan.payloads);
        }
        out.truncate(self.record_ends.len());
        out
    }

    /// Discards every record after the first `keep`, truncating the
    /// underlying streams at exact record boundaries.
    pub fn truncate_after(&mut self, keep: usize) {
        if keep >= self.record_ends.len() {
            return;
        }
        let (segment, offset) = if keep == 0 {
            (0, 0)
        } else {
            let last = self.record_ends[keep - 1];
            (last.segment, last.end_offset)
        };
        self.record_ends.truncate(keep);
        self.truncate_from(segment, offset);
    }

    /// Replaces the whole log contents with `records` (compaction).
    pub fn reset_with(&mut self, records: &[Vec<u8>]) {
        self.record_ends.clear();
        self.truncate_from(0, 0);
        let fsync = self.opts.fsync;
        self.opts.fsync = FsyncPolicy::Never;
        for r in records {
            self.append(r);
        }
        self.opts.fsync = fsync;
        if !matches!(fsync, FsyncPolicy::Never) {
            self.sync();
        }
    }

    /// Truncates segment `segment` to `offset` bytes and empties every
    /// later segment (even past gaps), repositioning the writer.
    fn truncate_from(&mut self, segment: u32, offset: u64) {
        self.device
            .truncate(&segment_stream(&self.name, segment), offset);
        let prefix = format!("{}/", self.name);
        for stream in self.device.streams() {
            let Some(rest) = stream.strip_prefix(&prefix) else {
                continue;
            };
            let Some(idx) = rest
                .strip_suffix(".seg")
                .and_then(|s| s.parse::<u32>().ok())
            else {
                continue;
            };
            if idx > segment {
                self.device.truncate(&stream, 0);
            }
        }
        self.segment = segment;
        self.segment_len = offset;
    }
}

fn segment_stream(name: &str, segment: u32) -> String {
    format!("{name}/{segment:08}.seg")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::InMemoryDevice;

    fn small_opts() -> WalOptions {
        WalOptions {
            segment_bytes: 64,
            fsync: FsyncPolicy::Never,
        }
    }

    fn device() -> Arc<dyn Persistence> {
        Arc::new(InMemoryDevice::new())
    }

    #[test]
    fn append_reopen_round_trip_across_segments() {
        let dev = device();
        let records: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; (i as usize * 7) % 40]).collect();
        {
            let (mut wal, existing) = Wal::open(dev.clone(), "log", small_opts());
            assert!(existing.is_empty());
            for r in &records {
                wal.append(r);
            }
            assert!(wal.segment > 0, "tiny segments must have rolled");
        }
        let (wal, recovered) = Wal::open(dev, "log", small_opts());
        assert_eq!(recovered, records);
        assert_eq!(wal.record_count(), records.len());
    }

    #[test]
    fn reopen_after_torn_tail_truncates_and_resumes() {
        let dev = device();
        let (mut wal, _) = Wal::open(dev.clone(), "log", small_opts());
        for i in 0u8..6 {
            wal.append(&[i; 10]);
        }
        // Tear the last segment by lopping off 3 bytes.
        let seg = segment_stream("log", wal.segment);
        let torn_len = dev.len(&seg) - 3;
        dev.truncate(&seg, torn_len);
        let (mut wal, recovered) = Wal::open(dev.clone(), "log", small_opts());
        assert_eq!(recovered.len(), 5);
        assert_eq!(recovered, (0u8..5).map(|i| vec![i; 10]).collect::<Vec<_>>());
        // The log accepts appends again and they survive another reopen.
        wal.append(b"after-crash");
        let (_, recovered) = Wal::open(dev, "log", small_opts());
        assert_eq!(recovered.len(), 6);
        assert_eq!(recovered[5], b"after-crash");
    }

    #[test]
    fn truncate_after_cuts_at_record_boundaries() {
        let dev = device();
        let (mut wal, _) = Wal::open(dev.clone(), "log", small_opts());
        let records: Vec<Vec<u8>> = (0u8..9).map(|i| vec![i; 12]).collect();
        for r in &records {
            wal.append(r);
        }
        wal.truncate_after(4);
        assert_eq!(wal.record_count(), 4);
        let (_, recovered) = Wal::open(dev.clone(), "log", small_opts());
        assert_eq!(recovered, records[..4].to_vec());
        // Appending after a truncate continues cleanly.
        let (mut wal, _) = Wal::open(dev.clone(), "log", small_opts());
        wal.append(b"resumed");
        let (_, recovered) = Wal::open(dev, "log", small_opts());
        assert_eq!(recovered.len(), 5);
    }

    #[test]
    fn reset_with_rewrites_contents() {
        let dev = device();
        let (mut wal, _) = Wal::open(dev.clone(), "log", small_opts());
        for i in 0u8..8 {
            wal.append(&[i; 20]);
        }
        let kept: Vec<Vec<u8>> = vec![vec![1; 20], vec![5; 20]];
        wal.reset_with(&kept);
        assert_eq!(wal.record_count(), 2);
        assert_eq!(wal.read_all(), kept);
        let (_, recovered) = Wal::open(dev, "log", small_opts());
        assert_eq!(recovered, kept);
    }

    #[test]
    fn fsync_policies_sync_at_the_expected_cadence() {
        let dev = InMemoryDevice::new();
        let arc: Arc<dyn Persistence> = Arc::new(dev.clone());
        let (mut wal, _) = Wal::open(
            arc.clone(),
            "always",
            WalOptions {
                segment_bytes: 1 << 20,
                fsync: FsyncPolicy::Always,
            },
        );
        wal.append(b"a");
        wal.append(b"b");
        assert_eq!(dev.sync_count(), 2);
        let (mut wal, _) = Wal::open(
            arc,
            "every3",
            WalOptions {
                segment_bytes: 1 << 20,
                fsync: FsyncPolicy::EveryN(3),
            },
        );
        for _ in 0..7 {
            wal.append(b"x");
        }
        assert_eq!(dev.sync_count(), 4); // 2 from above + syncs at records 3 and 6
    }
}
