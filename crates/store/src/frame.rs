//! Checksummed record framing.
//!
//! Every log in this crate stores a sequence of *frames*:
//!
//! ```text
//! | magic: u32 LE | payload_len: u32 LE | checksum: u64 LE | payload bytes |
//! ```
//!
//! The checksum is FNV-1a 64 over the payload. FNV is deliberately chosen
//! over SHA-256: the threat model is torn writes and bit rot, not an
//! adversary forging frames (payloads that need integrity against tampering
//! are content-addressed separately), and keeping the WAL off the SHA-256
//! path preserves the hashing-work accounting established for the message
//! pipeline.
//!
//! A *scan* walks frames from the start of a stream and stops at the first
//! violation — bad magic, implausible length, checksum mismatch, or
//! truncation. Everything before the stop point is the longest valid prefix;
//! everything after is a torn tail for the owner to discard. A crash during
//! an append can only damage the suffix of a stream, so a valid prefix is
//! exactly the set of records whose append completed.

/// Marker at the start of every frame ("HCFR").
pub const FRAME_MAGIC: u32 = 0x4843_4652;

/// Bytes of framing overhead per record.
pub const FRAME_HEADER_LEN: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 checksum of `bytes`.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Encodes one payload as a frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        u32::try_from(payload.len()).is_ok(),
        "frame payload exceeds u32 length"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a stream for frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// Payloads of every intact frame, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte offset just past the last intact frame.
    pub valid_len: u64,
    /// `true` if bytes remained after the valid prefix (a torn tail).
    pub torn: bool,
}

/// Scans `bytes` for consecutive frames, returning the longest valid prefix.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return FrameScan {
                payloads,
                valid_len: pos as u64,
                torn: false,
            };
        }
        if rest.len() < FRAME_HEADER_LEN {
            break;
        }
        let magic = u32::from_le_bytes(rest[0..4].try_into().expect("sized"));
        if magic != FRAME_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(rest[4..8].try_into().expect("sized")) as usize;
        let sum = u64::from_le_bytes(rest[8..16].try_into().expect("sized"));
        let Some(payload) = rest.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + len) else {
            break; // truncated payload
        };
        if checksum(payload) != sum {
            break;
        }
        payloads.push(payload.to_vec());
        pos += FRAME_HEADER_LEN + len;
    }
    FrameScan {
        payloads,
        valid_len: pos as u64,
        torn: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_scans_clean() {
        let scan = scan_frames(&[]);
        assert_eq!(scan.payloads.len(), 0);
        assert_eq!(scan.valid_len, 0);
        assert!(!scan.torn);
    }

    #[test]
    fn frames_round_trip() {
        let mut stream = Vec::new();
        let records: Vec<&[u8]> = vec![b"alpha", b"", b"gamma-gamma"];
        for r in &records {
            stream.extend_from_slice(&encode_frame(r));
        }
        let scan = scan_frames(&stream);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len as usize, stream.len());
        assert_eq!(
            scan.payloads,
            records.iter().map(|r| r.to_vec()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn truncation_at_every_offset_yields_a_prefix() {
        let records: Vec<Vec<u8>> = (0u8..6).map(|i| vec![i; i as usize * 3]).collect();
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            stream.extend_from_slice(&encode_frame(r));
            boundaries.push(stream.len());
        }
        for cut in 0..=stream.len() {
            let scan = scan_frames(&stream[..cut]);
            // Count of full frames whose bytes fit within the cut.
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(scan.payloads.len(), expect, "cut={cut}");
            assert_eq!(scan.payloads, records[..expect].to_vec(), "cut={cut}");
            assert_eq!(scan.valid_len as usize, boundaries[expect], "cut={cut}");
            assert_eq!(scan.torn, cut != boundaries[expect], "cut={cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan_at_that_frame() {
        let mut stream = Vec::new();
        for i in 0u8..4 {
            stream.extend_from_slice(&encode_frame(&[i; 9]));
        }
        let frame_len = FRAME_HEADER_LEN + 9;
        // Corrupt a payload byte of the third frame.
        let mut bad = stream.clone();
        bad[2 * frame_len + FRAME_HEADER_LEN + 4] ^= 0xff;
        let scan = scan_frames(&bad);
        assert!(scan.torn);
        assert_eq!(scan.payloads.len(), 2);
        assert_eq!(scan.valid_len as usize, 2 * frame_len);
    }

    #[test]
    fn checksum_is_stable_and_content_sensitive() {
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
