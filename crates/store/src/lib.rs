//! # hc-store — durable persistence for hierarchical consensus
//!
//! The paper's subnet lifecycle (§III) assumes nodes that can crash and
//! rejoin, re-deriving committed state from their logs. This crate provides
//! the storage substrate that makes that possible:
//!
//! * [`Persistence`] — a minimal append/read/truncate/sync device
//!   abstraction over named byte streams, with two backends:
//!   [`InMemoryDevice`] (the default for deterministic simulation; bytes
//!   live in process memory and "durability" means surviving a *runtime*
//!   restart within the process) and [`OnDiskDevice`] (one file per stream
//!   under a root directory, with a configurable [`FsyncPolicy`]).
//! * [`frame`] — the checksummed record framing shared by every log: a
//!   magic marker, a length, and an FNV-1a 64 checksum guard each payload,
//!   so a scan can always find the longest valid prefix of a torn stream.
//! * [`Wal`] — a segmented append-only write-ahead log of opaque records.
//!   Opening a WAL scans its segments, returns every intact record, and
//!   truncates whatever torn tail a crash left behind.
//! * [`BlobLog`] — a content-addressed blob journal backing `CidStore`:
//!   each blob is stored at most once (the in-memory dedup that PR 2's
//!   structural sharing relies on carries to disk), and unreachable blobs
//!   can be compacted away.
//! * [`crash`] — crash-injection utilities for tests: truncate a stream at
//!   an arbitrary byte offset, flip a byte, fork an in-memory device to
//!   model a kill between fsyncs.
//!
//! Everything here is deliberately value-oriented: the WAL stores canonical
//! encodings (see `hc_types::encode`/`hc_types::decode`) and knows nothing
//! about blocks or checkpoints. Typed records live with their owners
//! (`hc-chain` logs blocks, `hc-core` logs runtime control records).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blob;
pub mod crash;
pub mod device;
pub mod frame;
pub mod wal;

pub use blob::BlobLog;
pub use device::{FsyncPolicy, InMemoryDevice, OnDiskDevice, Persistence};
pub use wal::{Wal, WalOptions};
