//! Property-based tests of the durability substrate: frame round-trips and
//! torn-write recovery.
//!
//! The central property — recovery never yields a corrupt or non-prefix
//! state — is exercised by writing random record sequences, truncating the
//! device at a random byte offset (and flipping random bytes), and checking
//! that reopening returns exactly a prefix of what was appended.

use std::sync::Arc;

use proptest::prelude::*;

use hc_store::crash::{corrupt_byte, truncate_stream};
use hc_store::frame::{encode_frame, scan_frames};
use hc_store::{FsyncPolicy, InMemoryDevice, Persistence, Wal, WalOptions};

fn small_opts(segment_bytes: u64) -> WalOptions {
    WalOptions {
        segment_bytes,
        fsync: FsyncPolicy::Never,
    }
}

fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..60), 1..25)
}

proptest! {
    /// Concatenated frames always scan back to the exact record sequence.
    #[test]
    fn frames_round_trip(records in arb_records()) {
        let mut stream = Vec::new();
        for r in &records {
            stream.extend_from_slice(&encode_frame(r));
        }
        let scan = scan_frames(&stream);
        prop_assert!(!scan.torn);
        prop_assert_eq!(scan.valid_len as usize, stream.len());
        prop_assert_eq!(scan.payloads, records);
    }

    /// A WAL reopened after appending returns every record, across
    /// arbitrary segment sizes.
    #[test]
    fn wal_round_trips_across_segment_sizes(
        records in arb_records(),
        segment_bytes in 32u64..512,
    ) {
        let dev: Arc<dyn Persistence> = Arc::new(InMemoryDevice::new());
        {
            let (mut wal, existing) = Wal::open(dev.clone(), "log", small_opts(segment_bytes));
            prop_assert!(existing.is_empty());
            for r in &records {
                wal.append(r);
            }
        }
        let (wal, recovered) = Wal::open(dev, "log", small_opts(segment_bytes));
        prop_assert_eq!(&recovered, &records);
        prop_assert_eq!(wal.record_count(), records.len());
    }

    /// Torn-write recovery: truncating the physical streams at an arbitrary
    /// total byte offset always recovers a prefix of the appended records,
    /// and the log accepts appends afterwards.
    #[test]
    fn truncation_recovers_a_prefix(
        records in arb_records(),
        segment_bytes in 48u64..256,
        cut_permille in 0u64..1000,
    ) {
        let dev: Arc<dyn Persistence> = Arc::new(InMemoryDevice::new());
        {
            let (mut wal, _) = Wal::open(dev.clone(), "log", small_opts(segment_bytes));
            for r in &records {
                wal.append(r);
            }
        }
        // Truncate at a byte offset into the *logical* concatenation of
        // segments: everything past the offset is lost, starting from the
        // tail (later segments vanish first, as a real torn tail would).
        let streams: Vec<String> = dev.streams();
        let total: u64 = streams.iter().map(|s| dev.len(s)).sum();
        let cut = total * cut_permille / 1000;
        let mut to_drop = total - cut;
        for s in streams.iter().rev() {
            let len = dev.len(s);
            let drop_here = to_drop.min(len);
            truncate_stream(&dev, s, len - drop_here);
            to_drop -= drop_here;
            if to_drop == 0 {
                break;
            }
        }
        let (mut wal, recovered) = Wal::open(dev.clone(), "log", small_opts(segment_bytes));
        prop_assert!(recovered.len() <= records.len());
        prop_assert_eq!(&recovered, &records[..recovered.len()].to_vec(),
            "recovered records must be a prefix");
        // The recovered log is writable and the result is consistent.
        wal.append(b"post-crash");
        let (_, reread) = Wal::open(dev, "log", small_opts(segment_bytes));
        prop_assert_eq!(reread.len(), recovered.len() + 1);
        prop_assert_eq!(reread.last().unwrap().as_slice(), b"post-crash");
    }

    /// Flipping a random byte never yields records outside the appended
    /// sequence: recovery returns a prefix, possibly shortened.
    #[test]
    fn corruption_recovers_a_prefix(
        records in arb_records(),
        segment_bytes in 48u64..256,
        victim_permille in 0u64..1000,
    ) {
        let dev: Arc<dyn Persistence> = Arc::new(InMemoryDevice::new());
        {
            let (mut wal, _) = Wal::open(dev.clone(), "log", small_opts(segment_bytes));
            for r in &records {
                wal.append(r);
            }
        }
        let streams: Vec<String> = dev.streams();
        let total: u64 = streams.iter().map(|s| dev.len(s)).sum();
        let mut victim = total * victim_permille / 1000;
        for s in &streams {
            let len = dev.len(s);
            if victim < len {
                corrupt_byte(&dev, s, victim);
                break;
            }
            victim -= len;
        }
        let (_, recovered) = Wal::open(dev, "log", small_opts(segment_bytes));
        prop_assert!(recovered.len() <= records.len());
        prop_assert_eq!(&recovered, &records[..recovered.len()].to_vec());
    }
}
