//! Property-based tests of the pub-sub network and content resolution.

use proptest::prelude::*;

use hc_actors::{CrossMsg, HcAddress};
use hc_net::{
    ContentCache, DupRule, FaultPlan, NetConfig, Network, Partition, PartitionPolicy, ReorderRule,
    Resolver,
};
use hc_types::merkle::merkle_root;
use hc_types::{Address, SubnetId, TokenAmount};

fn group(id: u64, n: u64) -> (hc_types::Cid, Vec<CrossMsg>) {
    let msgs: Vec<CrossMsg> = (0..n.max(1))
        .map(|i| {
            CrossMsg::transfer(
                HcAddress::new(
                    SubnetId::root().child(Address::new(200 + id)),
                    Address::new(100 + i),
                ),
                HcAddress::new(SubnetId::root(), Address::new(300 + i)),
                TokenAmount::from_atto(u128::from(id) * 1_000 + u128::from(i) + 1),
            )
        })
        .collect();
    (merkle_root(&msgs), msgs)
}

proptest! {
    /// Without loss, every published message is delivered to every other
    /// subscriber exactly once, after at least the base delay.
    #[test]
    fn lossless_delivery_is_exactly_once(
        subscribers in 1usize..6,
        publishes in prop::collection::vec((0u64..10_000, 0u32..1_000), 1..30),
        base_delay in 1u64..200,
        jitter in 0u64..100,
    ) {
        let net: Network<u32> = Network::new(
            NetConfig {
                base_delay_ms: base_delay,
                jitter_ms: jitter,
                drop_rate: 0.0,
                ..NetConfig::default()
            },
            99,
        );
        let subs: Vec<_> = (0..subscribers).map(|_| net.subscribe("t")).collect();
        for (at, payload) in &publishes {
            net.publish("t", *payload, *at, None);
        }
        let horizon = 10_000 + base_delay + jitter + 1;
        let mut expected: Vec<u32> = publishes.iter().map(|(_, p)| *p).collect();
        expected.sort_unstable();
        for sub in subs {
            // Nothing arrives before the base delay of the earliest publish.
            let earliest = publishes.iter().map(|(at, _)| *at).min().unwrap();
            if base_delay > 0 {
                prop_assert!(net.poll(sub, earliest + base_delay - 1).len() <= publishes.len());
            }
            let mut got = net.poll(sub, horizon);
            // Plus anything already polled above.
            got.extend(net.poll(sub, horizon));
            let mut all = got;
            all.sort_unstable();
            // Between the two polls everything must have arrived once.
            prop_assert_eq!(all.len(), expected.len());
        }
    }

    /// The content cache never stores content under the wrong CID,
    /// whatever insertion order is attempted.
    #[test]
    fn cache_is_poison_proof(inserts in prop::collection::vec((0u64..6, 0u64..6, 1u64..4), 1..30)) {
        let mut cache = ContentCache::new();
        for (claimed_id, actual_id, n) in inserts {
            let (claimed_cid, _) = group(claimed_id, n);
            let (_, actual_msgs) = group(actual_id, n);
            let accepted = cache.insert(claimed_cid, actual_msgs.clone());
            prop_assert_eq!(accepted, claimed_id == actual_id);
            if let Some(stored) = cache.get(&claimed_cid) {
                prop_assert_eq!(merkle_root(stored), claimed_cid);
            }
        }
    }

    /// Under duplication and reordering faults, every delivered payload
    /// was actually published (no fabrication), originals arrive exactly
    /// once in `delivered`, and the stats ledger reconciles.
    #[test]
    fn faulty_delivery_never_fabricates_messages(
        publishes in prop::collection::vec((0u64..5_000, 0u32..1_000), 1..30),
        dup_pct in 0u32..101,
        reorder_pct in 0u32..101,
        max_copies in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let faults = FaultPlan {
            duplications: vec![DupRule {
                from_ms: 0,
                until_ms: u64::MAX,
                topic: None,
                rate: f64::from(dup_pct) / 100.0,
                max_copies,
                spread_ms: 300,
            }],
            reorders: vec![ReorderRule {
                from_ms: 0,
                until_ms: u64::MAX,
                topic: None,
                rate: f64::from(reorder_pct) / 100.0,
                max_extra_delay_ms: 500,
            }],
            ..FaultPlan::none()
        };
        let net: Network<u32> = Network::new(
            NetConfig { drop_rate: 0.0, faults, ..NetConfig::default() },
            seed,
        );
        let sub = net.subscribe("t");
        for (at, payload) in &publishes {
            net.publish("t", *payload, *at, None);
        }
        let got = net.poll(sub, u64::MAX);
        let stats = net.stats();
        // Every delivered payload was published.
        let published: Vec<u32> = publishes.iter().map(|(_, p)| *p).collect();
        for p in &got {
            prop_assert!(published.contains(p));
        }
        // Originals arrive exactly once in `delivered`; copies are
        // accounted separately and never double-count.
        prop_assert_eq!(stats.delivered, publishes.len() as u64);
        prop_assert_eq!(stats.redelivered, stats.duplicated);
        prop_assert_eq!(got.len() as u64, stats.delivered + stats.redelivered);
        prop_assert!(stats.duplicated <= publishes.len() as u64 * u64::from(max_copies));
        // The full ledger reconciles: every candidate delivery landed in
        // exactly one bucket (scheduled or one of the drop classes) ...
        prop_assert_eq!(
            stats.attempts,
            stats.scheduled
                + stats.dropped
                + stats.partition_dropped
                + stats.targeted_dropped
                + stats.offline_dropped
                + stats.region_dropped
                + stats.region_lost
        );
        // ... and after the full drain, everything scheduled was polled.
        prop_assert_eq!(net.pending_deliveries(), 0);
        prop_assert_eq!(
            stats.scheduled + stats.duplicated,
            stats.delivered + stats.redelivered + stats.offline_cleared
        );
    }

    /// Redelivery through the resolver is idempotent: however many times
    /// a push/resolve for the same CID arrives, the cache holds exactly
    /// one validated copy per CID.
    #[test]
    fn dedup_by_cid_makes_redelivery_idempotent(
        deliveries in prop::collection::vec((0u64..6, 1u64..4, 1usize..5), 1..25),
    ) {
        let mut r = Resolver::new();
        let mut distinct = std::collections::BTreeSet::new();
        for (id, n, copies) in deliveries {
            let (cid, msgs) = group(id, n);
            distinct.insert(cid);
            for _ in 0..copies {
                r.handle(hc_net::ResolutionMsg::Push { cid, msgs: msgs.clone() });
            }
            prop_assert_eq!(r.cache().get(&cid).unwrap(), msgs.as_slice());
        }
        prop_assert_eq!(r.cache().len(), distinct.len());
        prop_assert_eq!(r.stats().rejected, 0);
    }

    /// A healed `HoldUntilHeal` partition eventually delivers all queued
    /// traffic: nothing is lost, it just waits for the heal time.
    #[test]
    fn healed_partition_delivers_all_queued_traffic(
        publishes in prop::collection::vec((0u64..2_000, 0u32..1_000), 1..30),
        heal_ms in 2_000u64..10_000,
        seed in 0u64..1_000,
    ) {
        let faults = FaultPlan {
            partitions: vec![Partition {
                name: "hold".into(),
                from_ms: 0,
                heal_ms,
                topics: vec!["t".into()],
                subscribers: Vec::new(),
                policy: PartitionPolicy::HoldUntilHeal,
            }],
            ..FaultPlan::none()
        };
        let net: Network<u32> = Network::new(
            NetConfig { drop_rate: 0.0, faults, ..NetConfig::default() },
            seed,
        );
        let sub = net.subscribe("t");
        for (at, payload) in &publishes {
            net.publish("t", *payload, *at, None);
        }
        // While partitioned, nothing crosses.
        prop_assert!(net.poll(sub, heal_ms - 1).is_empty());
        // Once healed, every queued message arrives.
        let mut got = net.poll(sub, u64::MAX);
        got.sort_unstable();
        let mut want: Vec<u32> = publishes.iter().map(|(_, p)| *p).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        let stats = net.stats();
        prop_assert_eq!(stats.partition_held, publishes.len() as u64);
        prop_assert_eq!(stats.delivered, publishes.len() as u64);
    }

    /// A `Drop` partition severs everything inside its window and lets
    /// everything outside it through.
    #[test]
    fn drop_partition_severs_exactly_its_window(
        publishes in prop::collection::vec((0u64..4_000, 0u32..1_000), 1..30),
        window in (500u64..2_000, 2_000u64..3_500),
    ) {
        let (from_ms, heal_ms) = window;
        let faults = FaultPlan {
            partitions: vec![Partition {
                name: "window".into(),
                from_ms,
                heal_ms,
                topics: vec!["t".into()],
                subscribers: Vec::new(),
                policy: PartitionPolicy::Drop,
            }],
            ..FaultPlan::none()
        };
        let net: Network<u32> = Network::new(
            NetConfig { drop_rate: 0.0, faults, ..NetConfig::default() },
            7,
        );
        let sub = net.subscribe("t");
        for (at, payload) in &publishes {
            net.publish("t", *payload, *at, None);
        }
        let mut got = net.poll(sub, u64::MAX);
        got.sort_unstable();
        let mut want: Vec<u32> = publishes
            .iter()
            .filter(|(at, _)| *at < from_ms || *at >= heal_ms)
            .map(|(_, p)| *p)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        let severed = publishes.len() - publishes
            .iter()
            .filter(|(at, _)| *at < from_ms || *at >= heal_ms)
            .count();
        prop_assert_eq!(net.stats().partition_dropped, severed as u64);
    }

    /// Pull → resolve round trips always converge for any partition of
    /// content between two resolvers.
    #[test]
    fn pull_resolve_always_converges(ids in prop::collection::vec(0u64..20, 1..10)) {
        let mut source = Resolver::new();
        let mut dest = Resolver::new();
        let mut want = Vec::new();
        for id in &ids {
            let (cid, msgs) = group(*id, 2);
            source.seed(cid, msgs.clone());
            want.push((cid, msgs));
        }
        for (cid, msgs) in &want {
            match dest.lookup_or_pull(*cid, "dest/topic") {
                Ok(got) => prop_assert_eq!(&got, msgs),
                Err(pull) => {
                    let (topic, resolve) = source.handle(pull).expect("source has content");
                    prop_assert_eq!(topic.as_str(), "dest/topic");
                    dest.handle(resolve);
                    let got = dest.lookup_or_pull(*cid, "dest/topic")
                        .expect("resolved content is cached");
                    prop_assert_eq!(&got, msgs);
                }
            }
        }
    }
}
