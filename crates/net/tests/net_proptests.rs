//! Property-based tests of the pub-sub network and content resolution.

use proptest::prelude::*;

use hc_actors::{CrossMsg, HcAddress};
use hc_net::{ContentCache, NetConfig, Network, Resolver};
use hc_types::merkle::merkle_root;
use hc_types::{Address, SubnetId, TokenAmount};

fn group(id: u64, n: u64) -> (hc_types::Cid, Vec<CrossMsg>) {
    let msgs: Vec<CrossMsg> = (0..n.max(1))
        .map(|i| {
            CrossMsg::transfer(
                HcAddress::new(
                    SubnetId::root().child(Address::new(200 + id)),
                    Address::new(100 + i),
                ),
                HcAddress::new(SubnetId::root(), Address::new(300 + i)),
                TokenAmount::from_atto(u128::from(id) * 1_000 + u128::from(i) + 1),
            )
        })
        .collect();
    (merkle_root(&msgs), msgs)
}

proptest! {
    /// Without loss, every published message is delivered to every other
    /// subscriber exactly once, after at least the base delay.
    #[test]
    fn lossless_delivery_is_exactly_once(
        subscribers in 1usize..6,
        publishes in prop::collection::vec((0u64..10_000, 0u32..1_000), 1..30),
        base_delay in 1u64..200,
        jitter in 0u64..100,
    ) {
        let net: Network<u32> = Network::new(
            NetConfig { base_delay_ms: base_delay, jitter_ms: jitter, drop_rate: 0.0 },
            99,
        );
        let subs: Vec<_> = (0..subscribers).map(|_| net.subscribe("t")).collect();
        for (at, payload) in &publishes {
            net.publish("t", *payload, *at, None);
        }
        let horizon = 10_000 + base_delay + jitter + 1;
        let mut expected: Vec<u32> = publishes.iter().map(|(_, p)| *p).collect();
        expected.sort_unstable();
        for sub in subs {
            // Nothing arrives before the base delay of the earliest publish.
            let earliest = publishes.iter().map(|(at, _)| *at).min().unwrap();
            if base_delay > 0 {
                prop_assert!(net.poll(sub, earliest + base_delay - 1).len() <= publishes.len());
            }
            let mut got = net.poll(sub, horizon);
            // Plus anything already polled above.
            got.extend(net.poll(sub, horizon));
            let mut all = got;
            all.sort_unstable();
            // Between the two polls everything must have arrived once.
            prop_assert_eq!(all.len(), expected.len());
        }
    }

    /// The content cache never stores content under the wrong CID,
    /// whatever insertion order is attempted.
    #[test]
    fn cache_is_poison_proof(inserts in prop::collection::vec((0u64..6, 0u64..6, 1u64..4), 1..30)) {
        let mut cache = ContentCache::new();
        for (claimed_id, actual_id, n) in inserts {
            let (claimed_cid, _) = group(claimed_id, n);
            let (_, actual_msgs) = group(actual_id, n);
            let accepted = cache.insert(claimed_cid, actual_msgs.clone());
            prop_assert_eq!(accepted, claimed_id == actual_id);
            if let Some(stored) = cache.get(&claimed_cid) {
                prop_assert_eq!(merkle_root(stored), claimed_cid);
            }
        }
    }

    /// Pull → resolve round trips always converge for any partition of
    /// content between two resolvers.
    #[test]
    fn pull_resolve_always_converges(ids in prop::collection::vec(0u64..20, 1..10)) {
        let mut source = Resolver::new();
        let mut dest = Resolver::new();
        let mut want = Vec::new();
        for id in &ids {
            let (cid, msgs) = group(*id, 2);
            source.seed(cid, msgs.clone());
            want.push((cid, msgs));
        }
        for (cid, msgs) in &want {
            match dest.lookup_or_pull(*cid, "dest/topic") {
                Ok(got) => prop_assert_eq!(&got, msgs),
                Err(pull) => {
                    let (topic, resolve) = source.handle(pull).expect("source has content");
                    prop_assert_eq!(topic.as_str(), "dest/topic");
                    dest.handle(resolve);
                    let got = dest.lookup_or_pull(*cid, "dest/topic")
                        .expect("resolved content is cached");
                    prop_assert_eq!(&got, msgs);
                }
            }
        }
    }
}
