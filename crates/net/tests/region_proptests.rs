//! Property-based tests of the geo-aware region model: determinism of
//! the latency-matrix schedules under a seed, and bit-identity of the
//! uniform map with the region-less network.

use proptest::prelude::*;

use hc_net::{
    FaultPlan, NetConfig, Network, PartitionPolicy, RegionDegrade, RegionLink, RegionMap,
    RegionOutage, RegionPartition,
};

/// Polls every subscriber at stepped horizons so the comparison captures
/// the *schedule* (who got what, when), not just the final multiset.
fn drain_stepped(net: &Network<u32>, subs: &[hc_net::SubscriberId]) -> Vec<(u64, usize, Vec<u32>)> {
    let mut out = Vec::new();
    for step in 0..40u64 {
        let now = step * 250;
        for (i, sub) in subs.iter().enumerate() {
            let got = net.poll(*sub, now);
            if !got.is_empty() {
                out.push((now, i, got));
            }
        }
    }
    for (i, sub) in subs.iter().enumerate() {
        let got = net.poll(*sub, u64::MAX);
        if !got.is_empty() {
            out.push((u64::MAX, i, got));
        }
    }
    out
}

proptest! {
    /// Same seed + same geography ⇒ bit-identical delivery schedules and
    /// counters, with links, outages, partitions, and degrades all live.
    #[test]
    fn same_seed_same_geography_is_bit_identical(
        seed in 0u64..1_000,
        extra_delay in 0u64..200,
        region_jitter in 0u64..100,
        loss_pct in 0u32..60,
        factor in 100u32..300,
        publishes in prop::collection::vec((0u64..5_000, 0u32..1_000), 1..30),
    ) {
        let run = || {
            let mut regions = RegionMap::named(&["us", "eu", "ap"]);
            regions.set_link("us", "eu", RegionLink {
                extra_delay_ms: extra_delay,
                jitter_ms: region_jitter,
                loss_rate: f64::from(loss_pct) / 100.0,
                delay_factor_pct: factor,
            });
            regions.set_link_symmetric("us", "ap", RegionLink {
                extra_delay_ms: extra_delay * 2,
                ..RegionLink::IDENTITY
            });
            let net: Network<u32> = Network::new(
                NetConfig { jitter_ms: 30, drop_rate: 0.1, regions, ..NetConfig::default() },
                seed,
            );
            let a = net.subscribe("t");
            let b = net.subscribe("t");
            let c = net.subscribe("t");
            net.place_in_region(a, "us");
            net.place_in_region(b, "eu");
            net.place_in_region(c, "ap");
            net.extend_faults(FaultPlan {
                region_outages: vec![RegionOutage {
                    region: "ap".into(), from_ms: 2_000, heal_ms: 2_600,
                }],
                region_partitions: vec![RegionPartition {
                    name: "x".into(), a: "eu".into(), b: "ap".into(),
                    from_ms: 1_000, heal_ms: 3_000,
                    policy: PartitionPolicy::HoldUntilHeal,
                }],
                region_degrades: vec![RegionDegrade {
                    from: "us".into(), to: "eu".into(),
                    from_ms: 500, until_ms: 2_500,
                    extra_delay_ms: 80, loss_rate: 0.2,
                }],
                ..FaultPlan::none()
            });
            for (at, p) in &publishes {
                net.publish_from("t", *p, *at, Some(a), Some(a));
            }
            let schedule = drain_stepped(&net, &[b, c]);
            (schedule, net.stats())
        };
        prop_assert_eq!(run(), run());
    }

    /// `RegionMap::uniform()` — and any placed map without a non-identity
    /// link — is bit-identical to the region-less default: same schedule,
    /// same counters, no extra draws from either RNG stream.
    #[test]
    fn uniform_map_is_bit_identical_to_default(
        seed in 0u64..1_000,
        publishes in prop::collection::vec((0u64..5_000, 0u32..1_000), 1..30),
        placed in any::<bool>(),
    ) {
        let run = |regions: Option<RegionMap>| {
            let placed_map = regions.is_some();
            let net: Network<u32> = Network::new(
                NetConfig {
                    jitter_ms: 40,
                    drop_rate: 0.25,
                    regions: regions.unwrap_or_default(),
                    ..NetConfig::default()
                },
                seed,
            );
            let a = net.subscribe("t");
            let b = net.subscribe("t");
            if placed_map {
                net.place_in_region(a, "us");
                net.place_in_region(b, "eu");
            }
            for (at, p) in &publishes {
                net.publish_from("t", *p, *at, Some(a), Some(a));
            }
            (drain_stepped(&net, &[b]), net.stats())
        };
        let map = if placed {
            Some(RegionMap::named(&["us", "eu"]))
        } else {
            Some(RegionMap::uniform())
        };
        prop_assert_eq!(run(None), run(map));
    }

    /// Region disaster rules naming regions the map never declared are
    /// inert: they resolve to nothing and leave the base stream identical
    /// even though the fault plan is non-empty.
    #[test]
    fn unresolvable_region_rules_are_inert(
        seed in 0u64..1_000,
        publishes in prop::collection::vec((0u64..5_000, 0u32..1_000), 1..30),
    ) {
        let run = |faults: FaultPlan| {
            let net: Network<u32> = Network::new(
                NetConfig { jitter_ms: 40, drop_rate: 0.25, faults, ..NetConfig::default() },
                seed,
            );
            let a = net.subscribe("t");
            for (at, p) in &publishes {
                net.publish("t", *p, *at, None);
            }
            (drain_stepped(&net, &[a]), net.stats().delivered, net.stats().dropped)
        };
        let mut inert = FaultPlan::none();
        inert.region_outages.push(RegionOutage {
            region: "atlantis".into(), from_ms: 0, heal_ms: u64::MAX,
        });
        inert.region_partitions.push(RegionPartition {
            name: "mythical".into(), a: "atlantis".into(), b: "lemuria".into(),
            from_ms: 0, heal_ms: u64::MAX, policy: PartitionPolicy::Drop,
        });
        inert.region_degrades.push(RegionDegrade {
            from: "atlantis".into(), to: "lemuria".into(),
            from_ms: 0, until_ms: u64::MAX, extra_delay_ms: 500, loss_rate: 1.0,
        });
        prop_assert_eq!(run(FaultPlan::none()), run(inert));
    }

    /// A region outage is a clean window: traffic published after heal
    /// always flows, whatever the outage bounds, and every blackholed
    /// delivery is accounted in `region_dropped`.
    #[test]
    fn region_outage_heals_cleanly(
        window in (500u64..2_000, 2_000u64..3_500),
        publishes in prop::collection::vec((0u64..4_000, 0u32..1_000), 1..30),
        seed in 0u64..1_000,
    ) {
        let (from_ms, heal_ms) = window;
        let regions = RegionMap::named(&["us", "ap"]);
        let net: Network<u32> = Network::new(
            NetConfig { jitter_ms: 0, drop_rate: 0.0, regions, ..NetConfig::default() },
            seed,
        );
        let a = net.subscribe("t");
        let b = net.subscribe("t");
        net.place_in_region(a, "us");
        net.place_in_region(b, "ap");
        net.extend_faults(FaultPlan {
            region_outages: vec![RegionOutage { region: "ap".into(), from_ms, heal_ms }],
            ..FaultPlan::none()
        });
        for (at, p) in &publishes {
            net.publish_from("t", *p, *at, Some(a), Some(a));
        }
        let mut got = net.poll(b, u64::MAX);
        got.sort_unstable();
        let mut want: Vec<u32> = publishes
            .iter()
            .filter(|(at, _)| *at < from_ms || *at >= heal_ms)
            .map(|(_, p)| *p)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        let blackholed = publishes
            .iter()
            .filter(|(at, _)| *at >= from_ms && *at < heal_ms)
            .count() as u64;
        let stats = net.stats();
        prop_assert_eq!(stats.region_dropped, blackholed);
        prop_assert_eq!(
            stats.attempts,
            stats.scheduled + stats.region_dropped
        );
    }
}
