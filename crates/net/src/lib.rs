//! # hc-net — the P2P substrate: topic pub-sub and content resolution
//!
//! Each subnet owns "a new attack-resilient pubsub topic that peers use as
//! the transport layer to exchange chain-specific messages" (paper §III-A),
//! with topic names derived deterministically from subnet IDs so no
//! discovery service is needed.
//!
//! * [`pubsub`] — a simulated GossipSub: topic-addressed broadcast with a
//!   configurable latency/jitter/loss model, deterministic under a seed.
//! * [`resolver`] — the cross-net content-resolution protocol
//!   (paper §IV-C): *push* announcements as checkpoints travel upward,
//!   *pull* requests against the source subnet's topic, and *resolve*
//!   replies, backed by a validated, bounded per-node [`ContentCache`]
//!   with per-request timeout/backoff retry ([`RetryPolicy`]).
//! * [`fault`] — a seeded, schedulable [`FaultPlan`]: named partitions,
//!   targeted/asymmetric loss, bounded duplication, adversarial
//!   reordering, and node crash windows — all deterministic under the
//!   run seed and inert by default.
//! * [`region`] — geo-aware placement: a [`RegionMap`] of named regions,
//!   a per-region-pair latency/jitter matrix with asymmetric
//!   bandwidth/loss multipliers, layered under the per-topic model, plus
//!   region-scoped disaster rules in the fault plan (whole-region
//!   outage, inter-region partition, degraded trans-oceanic links).
//!
//! # Substitution note (DESIGN.md)
//!
//! The paper's transport is libp2p GossipSub (its reference \[11\]); the
//! protocol logic only relies on topic broadcast with eventual delivery,
//! which is what this simulation provides (plus loss, for the
//! resolution-retry experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod pubsub;
pub mod region;
pub mod resolver;

pub use fault::{
    CrashFault, DupRule, FaultPlan, LossRule, Partition, PartitionPolicy, RegionDegrade,
    RegionOutage, RegionPartition, ReorderRule,
};
pub use pubsub::{NetConfig, NetStats, Network, SubscriberId, TopicLatency};
pub use region::{RegionLink, RegionMap};
pub use resolver::{
    ContentCache, PullDecision, ResolutionMsg, Resolver, ResolverStats, RetryPolicy,
    BLOB_BATCH_CAP, DEFAULT_CONTENT_CACHE_CAPACITY,
};
