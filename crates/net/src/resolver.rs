//! The cross-net content-resolution protocol (paper §IV-C).
//!
//! Checkpoints carry only the *CIDs* of cross-message groups
//! (`CrossMsgMeta`), so a destination subnet must fetch the raw messages
//! before it can apply them. Two paths exist:
//!
//! * **push** — "as the checkpoints and CrossMsgMetas move up the
//!   hierarchy, miners publish to the pubsub topic of the corresponding
//!   subnet the whole DAG belonging to the CID". Peers may cache or
//!   discard pushed content.
//! * **pull** — a destination that cannot resolve a CID locally "can
//!   resolve the messages behind the CID by sending a pull request to the
//!   originating subnet"; any peer holding the content answers with a
//!   *resolve* message on the requester's topic, giving every other pool
//!   a chance to cache it too.
//!
//! [`Resolver`] implements the per-node state machine over these three
//! message kinds, backed by a validated, bounded [`ContentCache`]. On a
//! lossy transport a pull can vanish in either direction, so every
//! outstanding pull carries a per-request timeout with capped exponential
//! backoff and a retry budget ([`RetryPolicy`]); requests that exhaust
//! the budget are *abandoned* and surfaced in
//! [`ResolverStats::pulls_abandoned`] — degraded, never silently lost.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hc_actors::{CrossMsg, FundCertificate};
use hc_types::merkle::merkle_root;
use hc_types::{ChainEpoch, Cid, SubnetId};

/// Default bound on cached cross-message groups per node. Each group is
/// typically a checkpoint window's worth of messages; a thousand windows
/// is far beyond any retention the protocol needs.
pub const DEFAULT_CONTENT_CACHE_CAPACITY: usize = 1024;

/// Upper bound on raw blobs per [`ResolutionMsg::BlobBatch`] reply. Large
/// snapshot closures are served across several request/reply rounds so a
/// single lost message never costs more than one batch of progress.
pub const BLOB_BATCH_CAP: usize = 16;

/// Protocol messages exchanged on subnet topics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResolutionMsg {
    /// Proactive announcement of a message group (sent towards the
    /// destination subnet's topic as a checkpoint is signed).
    Push {
        /// The group's committed CID.
        cid: Cid,
        /// The raw messages.
        msgs: Vec<CrossMsg>,
    },
    /// Request for the content behind `cid`, published on the *source*
    /// subnet's topic; answers go to `reply_topic`.
    Pull {
        /// The CID to resolve.
        cid: Cid,
        /// Topic of the requesting subnet.
        reply_topic: String,
    },
    /// Answer to a pull, published on the requesting subnet's topic.
    Resolve {
        /// The resolved CID.
        cid: Cid,
        /// The raw messages.
        msgs: Vec<CrossMsg>,
    },
    /// A fund certificate riding the same topics: the direct-message
    /// acceleration for slow cross-net routes (paper §IV-A). Handled by
    /// the node runtime, not the resolver cache.
    Certificate(Box<FundCertificate>),
    /// Request for a subnet's finalized blocks from `from_epoch` onward,
    /// published on the subnet's own topic by a node catching up after a
    /// crash. Peers answer with a bounded [`ResolutionMsg::BlockBatch`]
    /// on `reply_topic`. Handled by the node runtime, not the resolver.
    BlockPull {
        /// The subnet whose chain is being synced.
        subnet: SubnetId,
        /// First epoch the requester is missing.
        from_epoch: ChainEpoch,
        /// Topic the batch reply goes to.
        reply_topic: String,
    },
    /// Answer to a [`ResolutionMsg::BlockPull`]: a bounded run of
    /// consecutive finalized blocks in canonical encoding (the requester
    /// re-validates and re-executes each one, so a corrupt batch cannot
    /// poison it). Handled by the node runtime, not the resolver.
    BlockBatch {
        /// The subnet the blocks belong to.
        subnet: SubnetId,
        /// Canonical bytes of consecutive blocks, oldest first.
        blocks: Vec<Vec<u8>>,
    },
    /// Request for raw content-addressed blobs (snapshot manifests and
    /// state chunks), published on the subnet's own topic by a node
    /// bootstrapping from a snapshot. Peers answer with a bounded
    /// [`ResolutionMsg::BlobBatch`] on `reply_topic`; at most
    /// [`BLOB_BATCH_CAP`] CIDs per request. Handled by the node runtime,
    /// not the resolver.
    BlobPull {
        /// The blobs being fetched, by CID.
        cids: Vec<Cid>,
        /// Topic the batch reply goes to.
        reply_topic: String,
    },
    /// Answer to a [`ResolutionMsg::BlobPull`]: the raw blob bytes, in
    /// request order, omitting any the peer does not hold. The requester
    /// verifies each blob hashes to a CID it asked for, so a corrupt or
    /// misdirected batch cannot poison its store. Handled by the node
    /// runtime, not the resolver.
    BlobBatch {
        /// Raw blob bytes; each must hash to a requested CID.
        blobs: Vec<Vec<u8>>,
    },
}

/// A validated, bounded content-addressable cache of cross-message groups.
///
/// Inserts are only accepted when the messages actually hash to the CID,
/// so cache poisoning is impossible. The cache holds at most `capacity`
/// groups (FIFO eviction — the protocol's access pattern is a moving
/// window over checkpoint epochs, so oldest-first is also
/// least-likely-needed); `capacity == 0` disables the bound.
///
/// Entries can be **pinned**: eviction skips pinned CIDs, so content a
/// still-outstanding pull is waiting to consume cannot be displaced by
/// unrelated traffic arriving between the resolve and the consumer's next
/// poll. While every resident entry is pinned the capacity bound is soft —
/// correctness of in-flight requests beats the memory cap.
#[derive(Debug, Clone)]
pub struct ContentCache {
    entries: BTreeMap<Cid, Vec<CrossMsg>>,
    /// Insertion order, oldest first, for FIFO eviction.
    order: VecDeque<Cid>,
    /// CIDs exempt from eviction (in-flight pulls; may be absent from
    /// `entries` until their content arrives).
    pinned: BTreeSet<Cid>,
    capacity: usize,
    evictions: u64,
}

impl Default for ContentCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CONTENT_CACHE_CAPACITY)
    }
}

impl ContentCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache bounded to `capacity` groups (`0` =
    /// unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        ContentCache {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            pinned: BTreeSet::new(),
            capacity,
            evictions: 0,
        }
    }

    /// Exempts `cid` from eviction until [`ContentCache::unpin`]. Pinning
    /// a CID whose content has not arrived yet is the normal case: the pin
    /// protects the entry from the moment it is inserted.
    pub fn pin(&mut self, cid: Cid) {
        self.pinned.insert(cid);
    }

    /// Lifts an eviction exemption (idempotent).
    pub fn unpin(&mut self, cid: &Cid) {
        self.pinned.remove(cid);
    }

    /// Returns `true` if `cid` is currently exempt from eviction.
    pub fn is_pinned(&self, cid: &Cid) -> bool {
        self.pinned.contains(cid)
    }

    /// Inserts a group if it matches `cid`. Returns `true` on acceptance
    /// (idempotent: re-inserting known content also returns `true` and
    /// does not disturb the eviction order).
    pub fn insert(&mut self, cid: Cid, msgs: Vec<CrossMsg>) -> bool {
        if merkle_root(&msgs) != cid {
            return false;
        }
        if self.entries.contains_key(&cid) {
            return true;
        }
        self.entries.insert(cid, msgs);
        self.order.push_back(cid);
        if self.capacity > 0 {
            while self.entries.len() > self.capacity {
                // Oldest first, but never a pinned entry: an in-flight
                // pull's content must survive until its consumer reads it.
                let Some(pos) = self.order.iter().position(|c| !self.pinned.contains(c)) else {
                    break; // everything resident is pinned: soft bound
                };
                let oldest = self.order.remove(pos).expect("position is in range");
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        true
    }

    /// Looks up a group.
    pub fn get(&self, cid: &Cid) -> Option<&[CrossMsg]> {
        self.entries.get(cid).map(Vec::as_slice)
    }

    /// Returns `true` if the CID is cached.
    pub fn contains(&self, cid: &Cid) -> bool {
        self.entries.contains_key(cid)
    }

    /// Number of cached groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Groups evicted to keep the cache within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Timeout and backoff schedule for outstanding pull requests.
///
/// Attempt `n` (1-based) times out after
/// `min(base_timeout_ms * backoff^(n-1), max_timeout_ms)` virtual ms;
/// after `max_attempts` sends the request is abandoned (and counted in
/// [`ResolverStats::pulls_abandoned`]). `max_attempts == 0` retries
/// forever.
///
/// When `jitter_pct > 0`, every timeout is stretched by a deterministic
/// seeded jitter in `[0, timeout * jitter_pct / 100]`, drawn from the
/// fault RNG domain keyed by `(seed, request, attempt)` — after a
/// region heal, the surviving peers see the backlog of retries spread
/// out instead of a synchronized thundering herd. `jitter_pct == 0`
/// (the default) is bit-identical to the jitter-less schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Timeout of the first attempt, in virtual ms.
    pub base_timeout_ms: u64,
    /// Multiplier applied per retry (>= 1).
    pub backoff: u32,
    /// Upper bound on a single attempt's timeout.
    pub max_timeout_ms: u64,
    /// Retry budget (`0` = unbounded).
    pub max_attempts: u32,
    /// Deterministic backoff jitter as a percentage of each attempt's
    /// timeout (`0` = none, `50` = up to +50%).
    pub jitter_pct: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout_ms: 400,
            backoff: 2,
            max_timeout_ms: 6_400,
            max_attempts: 0,
            jitter_pct: 0,
        }
    }
}

impl RetryPolicy {
    /// Timeout of the `attempt`-th send (1-based), capped. Jitter-free.
    pub fn timeout_for(&self, attempt: u32) -> u64 {
        let mut t = self.base_timeout_ms.max(1);
        for _ in 1..attempt {
            t = t.saturating_mul(u64::from(self.backoff.max(1)));
            if t >= self.max_timeout_ms {
                return self.max_timeout_ms.max(1);
            }
        }
        t.min(self.max_timeout_ms.max(1))
    }

    /// [`RetryPolicy::timeout_for`] plus the deterministic seeded jitter:
    /// `seed` is the owner's jitter seed, `salt` identifies the request
    /// (e.g. the CID's leading bytes), and the same `(seed, salt,
    /// attempt)` always yields the same stretch. With `jitter_pct == 0`
    /// no RNG is constructed and the result equals `timeout_for`.
    pub fn jittered_timeout_for(&self, attempt: u32, seed: u64, salt: u64) -> u64 {
        let t = self.timeout_for(attempt);
        if self.jitter_pct == 0 {
            return t;
        }
        let bound = t.saturating_mul(u64::from(self.jitter_pct)) / 100;
        if bound == 0 {
            return t;
        }
        let mut rng = StdRng::seed_from_u64(
            seed ^ crate::pubsub::FAULT_RNG_DOMAIN
                ^ salt
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(attempt)),
        );
        t + rng.gen_range(0..=bound)
    }
}

/// What [`Resolver::should_pull`] decided about an unresolved CID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullDecision {
    /// Publish a pull request now (first send or a due retry).
    Send,
    /// A pull is in flight and its timeout has not elapsed — wait.
    Wait,
    /// The retry budget is exhausted; the request is abandoned and
    /// counted. The caller should surface the degradation, not loop.
    Abandoned,
}

/// Book-keeping for one outstanding pull.
#[derive(Debug, Clone, Copy)]
struct PullState {
    attempts: u32,
    next_retry_at_ms: u64,
    abandoned: bool,
}

/// Counters of one node's resolution activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Push announcements accepted into the cache.
    pub pushes_cached: u64,
    /// Push/resolve payloads rejected for CID mismatch.
    pub rejected: u64,
    /// Pull requests answered from the cache.
    pub pulls_served: u64,
    /// Pull requests received for unknown content (ignored; another peer
    /// may serve them).
    pub pulls_missed: u64,
    /// Resolve replies accepted into the cache.
    pub resolves_cached: u64,
    /// Local lookups answered from cache.
    pub cache_hits: u64,
    /// Local lookups that required a pull request.
    pub cache_misses: u64,
    /// First-attempt pull requests sent.
    pub pulls_sent: u64,
    /// Retries sent after a pull timed out.
    pub pulls_retried: u64,
    /// Pulls abandoned after exhausting the retry budget — degraded
    /// requests are reported here, never silently dropped.
    pub pulls_abandoned: u64,
    /// Cache entries evicted to stay within capacity.
    pub evictions: u64,
}

impl ResolverStats {
    /// Folds another node's counters into this one (hierarchy-wide
    /// aggregation, mirroring `SigCacheStats::merge`).
    pub fn merge(&mut self, other: ResolverStats) {
        self.pushes_cached += other.pushes_cached;
        self.rejected += other.rejected;
        self.pulls_served += other.pulls_served;
        self.pulls_missed += other.pulls_missed;
        self.resolves_cached += other.resolves_cached;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.pulls_sent += other.pulls_sent;
        self.pulls_retried += other.pulls_retried;
        self.pulls_abandoned += other.pulls_abandoned;
        self.evictions += other.evictions;
    }
}

/// The per-node content-resolution state machine.
///
/// `handle` consumes an incoming [`ResolutionMsg`] and optionally produces
/// a reply `(topic, message)` the caller publishes; `lookup_or_pull`
/// serves local consumers (the cross-msg pool); `should_pull` gates pull
/// publication behind the per-request timeout/backoff schedule.
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    cache: ContentCache,
    policy: RetryPolicy,
    /// Seed of the deterministic backoff jitter (see
    /// [`RetryPolicy::jittered_timeout_for`]); irrelevant while the
    /// policy's `jitter_pct` is 0.
    jitter_seed: u64,
    pending: BTreeMap<Cid, PullState>,
    stats: ResolverStats,
}

impl Resolver {
    /// Creates a resolver with an empty cache and the default
    /// [`RetryPolicy`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a resolver with an explicit retry policy.
    pub fn with_policy(policy: RetryPolicy) -> Self {
        Resolver {
            policy,
            ..Self::default()
        }
    }

    /// Creates a resolver with an explicit retry policy and the seed its
    /// deterministic backoff jitter derives from (typically the run seed
    /// mixed with a node identity).
    pub fn with_policy_seeded(policy: RetryPolicy, jitter_seed: u64) -> Self {
        Resolver {
            policy,
            jitter_seed,
            ..Self::default()
        }
    }

    /// Creates a resolver with an explicit retry policy and cache
    /// capacity (`0` = unbounded).
    pub fn with_policy_and_capacity(policy: RetryPolicy, capacity: usize) -> Self {
        Resolver {
            policy,
            cache: ContentCache::with_capacity(capacity),
            ..Self::default()
        }
    }

    /// Read access to the cache.
    pub fn cache(&self) -> &ContentCache {
        &self.cache
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Activity counters.
    pub fn stats(&self) -> ResolverStats {
        let mut stats = self.stats;
        stats.evictions = self.cache.evictions();
        stats
    }

    /// Seeds the cache with locally produced content (the SCA registers
    /// every group it creates).
    pub fn seed(&mut self, cid: Cid, msgs: Vec<CrossMsg>) -> bool {
        self.accept(cid, msgs)
    }

    /// Validated insert that also settles any outstanding pull for `cid`.
    fn accept(&mut self, cid: Cid, msgs: Vec<CrossMsg>) -> bool {
        if self.cache.insert(cid, msgs) {
            self.pending.remove(&cid);
            true
        } else {
            false
        }
    }

    /// Decides whether an unresolved `cid` warrants publishing a pull at
    /// `now_ms`: the first call sends immediately, later calls wait out
    /// the capped exponential backoff, and once the budget is spent the
    /// request is abandoned (exactly one `pulls_abandoned` tick per CID).
    pub fn should_pull(&mut self, cid: Cid, now_ms: u64) -> PullDecision {
        if self.cache.contains(&cid) {
            return PullDecision::Wait;
        }
        // Copy out the outstanding state first: the jittered timeout
        // reads `&self` and must not overlap a live `&mut` into the map.
        match self.pending.get(&cid).copied() {
            None => {
                let timeout = self.jittered_timeout(&cid, 1);
                self.pending.insert(
                    cid,
                    PullState {
                        attempts: 1,
                        next_retry_at_ms: now_ms + timeout,
                        abandoned: false,
                    },
                );
                // Pin before the content exists: whenever the resolve
                // lands, it must survive eviction until consumed.
                self.cache.pin(cid);
                self.stats.pulls_sent += 1;
                PullDecision::Send
            }
            Some(state) if state.abandoned => PullDecision::Abandoned,
            Some(state) if now_ms < state.next_retry_at_ms => PullDecision::Wait,
            Some(state) => {
                if self.policy.max_attempts > 0 && state.attempts >= self.policy.max_attempts {
                    self.pending.get_mut(&cid).expect("outstanding").abandoned = true;
                    self.cache.unpin(&cid);
                    self.stats.pulls_abandoned += 1;
                    return PullDecision::Abandoned;
                }
                let attempts = state.attempts + 1;
                let timeout = self.jittered_timeout(&cid, attempts);
                let live = self.pending.get_mut(&cid).expect("outstanding");
                live.attempts = attempts;
                live.next_retry_at_ms = now_ms + timeout;
                self.stats.pulls_retried += 1;
                PullDecision::Send
            }
        }
    }

    /// The per-request jitter salt is the CID's leading bytes, so
    /// distinct outstanding pulls de-synchronize from each other while
    /// the whole schedule stays a pure function of the seed.
    fn jittered_timeout(&self, cid: &Cid, attempt: u32) -> u64 {
        let salt = u64::from_le_bytes(cid.as_bytes()[..8].try_into().expect("32-byte cid"));
        self.policy
            .jittered_timeout_for(attempt, self.jitter_seed, salt)
    }

    /// Number of sends (1-based attempts) for an outstanding pull; `0`
    /// when no pull is tracked for `cid`.
    pub fn pull_attempts(&self, cid: &Cid) -> u32 {
        self.pending.get(cid).map_or(0, |s| s.attempts)
    }

    /// Outstanding (non-abandoned) pull requests.
    pub fn pending_pulls(&self) -> usize {
        self.pending.values().filter(|s| !s.abandoned).count()
    }

    /// Processes an incoming protocol message. Returns an optional reply
    /// to publish as `(topic, message)`.
    pub fn handle(&mut self, msg: ResolutionMsg) -> Option<(String, ResolutionMsg)> {
        match msg {
            ResolutionMsg::Push { cid, msgs } => {
                if self.accept(cid, msgs) {
                    self.stats.pushes_cached += 1;
                } else {
                    self.stats.rejected += 1;
                }
                None
            }
            ResolutionMsg::Pull { cid, reply_topic } => match self.cache.get(&cid) {
                Some(msgs) => {
                    self.stats.pulls_served += 1;
                    Some((
                        reply_topic,
                        ResolutionMsg::Resolve {
                            cid,
                            msgs: msgs.to_vec(),
                        },
                    ))
                }
                None => {
                    self.stats.pulls_missed += 1;
                    None
                }
            },
            ResolutionMsg::Resolve { cid, msgs } => {
                if self.accept(cid, msgs) {
                    self.stats.resolves_cached += 1;
                } else {
                    self.stats.rejected += 1;
                }
                None
            }
            // Certificates, block-sync, and blob-sync traffic are consumed
            // by the node runtime before the resolver sees them; strays
            // are ignored.
            ResolutionMsg::Certificate(_)
            | ResolutionMsg::BlockPull { .. }
            | ResolutionMsg::BlockBatch { .. }
            | ResolutionMsg::BlobPull { .. }
            | ResolutionMsg::BlobBatch { .. } => None,
        }
    }

    /// Local lookup for the cross-msg pool: returns the cached content, or
    /// the [`ResolutionMsg::Pull`] to publish on `source_topic`. Callers
    /// on a lossy transport gate the publish through
    /// [`Resolver::should_pull`].
    pub fn lookup_or_pull(
        &mut self,
        cid: Cid,
        reply_topic: &str,
    ) -> Result<Vec<CrossMsg>, ResolutionMsg> {
        match self.cache.get(&cid) {
            Some(msgs) => {
                self.stats.cache_hits += 1;
                let msgs = msgs.to_vec();
                // The consumer has the content; the in-flight pin (if any)
                // has done its job.
                self.cache.unpin(&cid);
                Ok(msgs)
            }
            None => {
                self.stats.cache_misses += 1;
                Err(ResolutionMsg::Pull {
                    cid,
                    reply_topic: reply_topic.to_owned(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_actors::HcAddress;
    use hc_types::{Address, SubnetId, TokenAmount};

    fn group(n: u64) -> (Cid, Vec<CrossMsg>) {
        let msgs: Vec<CrossMsg> = (0..n)
            .map(|i| {
                CrossMsg::transfer(
                    HcAddress::new(
                        SubnetId::root().child(Address::new(9)),
                        Address::new(100 + i),
                    ),
                    HcAddress::new(SubnetId::root(), Address::new(200 + i)),
                    TokenAmount::from_atto(i as u128 + 1),
                )
            })
            .collect();
        (merkle_root(&msgs), msgs)
    }

    #[test]
    fn cache_rejects_mismatched_content() {
        let mut cache = ContentCache::new();
        let (cid, msgs) = group(3);
        let (_, other) = group(2);
        assert!(!cache.insert(cid, other));
        assert!(cache.insert(cid, msgs.clone()));
        assert_eq!(cache.get(&cid).unwrap(), msgs.as_slice());
        // Idempotent re-insert.
        assert!(cache.insert(cid, msgs));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_evicts_oldest_beyond_capacity() {
        let mut cache = ContentCache::with_capacity(2);
        let groups: Vec<_> = (1..=3).map(group).collect();
        for (cid, msgs) in &groups {
            assert!(cache.insert(*cid, msgs.clone()));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // Oldest (group 1) is gone; 2 and 3 remain.
        assert!(!cache.contains(&groups[0].0));
        assert!(cache.contains(&groups[1].0));
        assert!(cache.contains(&groups[2].0));
        // Re-inserting a cached group does not evict anything.
        assert!(cache.insert(groups[2].0, groups[2].1.clone()));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let mut cache = ContentCache::with_capacity(0);
        for i in 1..=50 {
            let (cid, msgs) = group(i);
            assert!(cache.insert(cid, msgs));
        }
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn push_then_local_hit() {
        let mut r = Resolver::new();
        let (cid, msgs) = group(2);
        assert!(r
            .handle(ResolutionMsg::Push {
                cid,
                msgs: msgs.clone()
            })
            .is_none());
        assert_eq!(r.lookup_or_pull(cid, "/root/msgs").unwrap(), msgs);
        let stats = r.stats();
        assert_eq!(stats.pushes_cached, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 0);
    }

    #[test]
    fn miss_produces_pull_and_resolve_round_trip() {
        let mut requester = Resolver::new();
        let mut source = Resolver::new();
        let (cid, msgs) = group(4);
        source.seed(cid, msgs.clone());

        // Requester misses locally → emits a pull.
        let pull = requester.lookup_or_pull(cid, "/root/a5/msgs").unwrap_err();
        assert!(matches!(pull, ResolutionMsg::Pull { .. }));

        // Source answers on the reply topic.
        let (topic, resolve) = source.handle(pull).expect("source serves the pull");
        assert_eq!(topic, "/root/a5/msgs");

        // Requester ingests the resolve; the content is now local.
        assert!(requester.handle(resolve).is_none());
        assert_eq!(requester.lookup_or_pull(cid, "x").unwrap(), msgs);
        assert_eq!(source.stats().pulls_served, 1);
        assert_eq!(requester.stats().resolves_cached, 1);
    }

    #[test]
    fn pull_for_unknown_content_is_ignored() {
        let mut r = Resolver::new();
        let (cid, _) = group(1);
        let reply = r.handle(ResolutionMsg::Pull {
            cid,
            reply_topic: "t".into(),
        });
        assert!(reply.is_none());
        assert_eq!(r.stats().pulls_missed, 1);
    }

    #[test]
    fn poisoned_push_is_rejected() {
        let mut r = Resolver::new();
        let (cid, _) = group(2);
        let (_, wrong) = group(3);
        r.handle(ResolutionMsg::Push { cid, msgs: wrong });
        assert!(!r.cache().contains(&cid));
        assert_eq!(r.stats().rejected, 1);
    }

    #[test]
    fn retry_policy_backoff_is_capped() {
        let p = RetryPolicy {
            base_timeout_ms: 100,
            backoff: 3,
            max_timeout_ms: 1_000,
            max_attempts: 5,
            jitter_pct: 0,
        };
        assert_eq!(p.timeout_for(1), 100);
        assert_eq!(p.timeout_for(2), 300);
        assert_eq!(p.timeout_for(3), 900);
        assert_eq!(p.timeout_for(4), 1_000); // capped
        assert_eq!(p.timeout_for(40), 1_000); // no overflow
    }

    #[test]
    fn should_pull_follows_timeout_and_backoff() {
        let mut r = Resolver::with_policy(RetryPolicy {
            base_timeout_ms: 100,
            backoff: 2,
            max_timeout_ms: 1_000,
            max_attempts: 0,
            jitter_pct: 0,
        });
        let (cid, _) = group(1);
        assert_eq!(r.should_pull(cid, 0), PullDecision::Send);
        // In flight: wait out the first 100ms timeout.
        assert_eq!(r.should_pull(cid, 50), PullDecision::Wait);
        assert_eq!(r.should_pull(cid, 99), PullDecision::Wait);
        // Timed out: retry with doubled timeout (200ms from now).
        assert_eq!(r.should_pull(cid, 100), PullDecision::Send);
        assert_eq!(r.should_pull(cid, 299), PullDecision::Wait);
        assert_eq!(r.should_pull(cid, 300), PullDecision::Send);
        let stats = r.stats();
        assert_eq!(stats.pulls_sent, 1);
        assert_eq!(stats.pulls_retried, 2);
        assert_eq!(stats.pulls_abandoned, 0);
        assert_eq!(r.pull_attempts(&cid), 3);
    }

    #[test]
    fn budget_exhaustion_abandons_exactly_once() {
        let mut r = Resolver::with_policy(RetryPolicy {
            base_timeout_ms: 10,
            backoff: 1,
            max_timeout_ms: 10,
            max_attempts: 2,
            jitter_pct: 0,
        });
        let (cid, _) = group(2);
        assert_eq!(r.should_pull(cid, 0), PullDecision::Send);
        assert_eq!(r.should_pull(cid, 10), PullDecision::Send);
        // Budget (2 attempts) spent → abandoned, counted once.
        assert_eq!(r.should_pull(cid, 20), PullDecision::Abandoned);
        assert_eq!(r.should_pull(cid, 30_000), PullDecision::Abandoned);
        assert_eq!(r.stats().pulls_abandoned, 1);
        assert_eq!(r.pending_pulls(), 0);
    }

    #[test]
    fn resolve_settles_outstanding_pull() {
        let mut r = Resolver::new();
        let (cid, msgs) = group(3);
        assert_eq!(r.should_pull(cid, 0), PullDecision::Send);
        assert_eq!(r.pending_pulls(), 1);
        r.handle(ResolutionMsg::Resolve { cid, msgs });
        assert_eq!(r.pending_pulls(), 0);
        // Content now cached → no further pulls wanted.
        assert_eq!(r.should_pull(cid, 10_000), PullDecision::Wait);
        assert_eq!(r.pull_attempts(&cid), 0);
    }

    /// Regression (in-flight eviction): at capacity 1, a resolve that
    /// lands for an outstanding pull used to be evictable by any unrelated
    /// push arriving before the consumer's next poll — the pool would
    /// re-pull forever under steady traffic. In-flight CIDs are now pinned
    /// until consumed.
    #[test]
    fn pending_pull_content_survives_eviction_at_capacity_one() {
        let mut r = Resolver::with_policy_and_capacity(RetryPolicy::default(), 1);
        let (wanted_cid, wanted_msgs) = group(3);
        let (noise1_cid, noise1) = group(1);
        let (noise2_cid, noise2) = group(2);

        // The pool misses and a pull goes out.
        assert!(r.lookup_or_pull(wanted_cid, "t").is_err());
        assert_eq!(r.should_pull(wanted_cid, 0), PullDecision::Send);
        assert!(r.cache().is_pinned(&wanted_cid));

        // Unrelated traffic fills the one-slot cache...
        r.handle(ResolutionMsg::Push {
            cid: noise1_cid,
            msgs: noise1,
        });
        // ...then the awaited resolve lands (evicting the noise)...
        r.handle(ResolutionMsg::Resolve {
            cid: wanted_cid,
            msgs: wanted_msgs.clone(),
        });
        assert!(!r.cache().contains(&noise1_cid));
        // ...and more noise arrives before the pool polls again. The
        // pinned entry must not be the eviction victim.
        r.handle(ResolutionMsg::Push {
            cid: noise2_cid,
            msgs: noise2,
        });
        assert!(r.cache().contains(&wanted_cid), "pinned entry was evicted");

        // The consumer finally reads it — pin released, entry becomes an
        // ordinary FIFO citizen again.
        assert_eq!(r.lookup_or_pull(wanted_cid, "t").unwrap(), wanted_msgs);
        assert!(!r.cache().is_pinned(&wanted_cid));
        let (noise3_cid, noise3) = group(4);
        r.handle(ResolutionMsg::Push {
            cid: noise3_cid,
            msgs: noise3,
        });
        assert!(!r.cache().contains(&wanted_cid), "unpinned entry evicts");
        assert!(r.cache().contains(&noise3_cid));
    }

    /// Abandoning a pull lifts its pin: nothing keeps dead requests'
    /// content alive.
    #[test]
    fn abandoned_pull_releases_its_pin() {
        let mut r = Resolver::with_policy_and_capacity(
            RetryPolicy {
                base_timeout_ms: 10,
                backoff: 1,
                max_timeout_ms: 10,
                max_attempts: 1,
                jitter_pct: 0,
            },
            1,
        );
        let (cid, _) = group(5);
        assert_eq!(r.should_pull(cid, 0), PullDecision::Send);
        assert!(r.cache().is_pinned(&cid));
        assert_eq!(r.should_pull(cid, 10), PullDecision::Abandoned);
        assert!(!r.cache().is_pinned(&cid));
    }

    #[test]
    fn block_sync_messages_pass_through_resolver() {
        let mut r = Resolver::new();
        assert!(r
            .handle(ResolutionMsg::BlockPull {
                subnet: SubnetId::root(),
                from_epoch: ChainEpoch::new(4),
                reply_topic: "t".into(),
            })
            .is_none());
        assert!(r
            .handle(ResolutionMsg::BlockBatch {
                subnet: SubnetId::root(),
                blocks: vec![vec![1, 2, 3]],
            })
            .is_none());
        assert!(r
            .handle(ResolutionMsg::BlobPull {
                cids: vec![Cid::digest(b"chunk")],
                reply_topic: "t".into(),
            })
            .is_none());
        assert!(r
            .handle(ResolutionMsg::BlobBatch {
                blobs: vec![b"chunk".to_vec()],
            })
            .is_none());
        assert_eq!(r.stats(), ResolverStats::default());
    }

    #[test]
    fn zero_jitter_is_bit_identical_to_plain_backoff() {
        let policy = RetryPolicy {
            base_timeout_ms: 100,
            backoff: 2,
            max_timeout_ms: 1_000,
            max_attempts: 0,
            jitter_pct: 0,
        };
        // Whatever seed the owner carries, jitter_pct == 0 must reproduce
        // the pure schedule exactly — the jitter RNG is never built.
        for seed in [0u64, 1, 0xdead_beef] {
            for attempt in 1..=6 {
                assert_eq!(
                    policy.jittered_timeout_for(attempt, seed, 42),
                    policy.timeout_for(attempt),
                );
            }
        }
        // And the resolvers behave identically end to end.
        let drive = |r: &mut Resolver| -> Vec<(PullDecision, u32)> {
            let (cid, _) = group(77);
            (0..2_000)
                .step_by(50)
                .map(|now| (r.should_pull(cid, now), r.pull_attempts(&cid)))
                .collect()
        };
        let mut plain = Resolver::with_policy(policy);
        let mut seeded = Resolver::with_policy_seeded(policy, 0xfeed);
        assert_eq!(drive(&mut plain), drive(&mut seeded));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_desynchronizing() {
        let policy = RetryPolicy {
            base_timeout_ms: 100,
            backoff: 2,
            max_timeout_ms: 1_000,
            max_attempts: 0,
            jitter_pct: 50,
        };
        for attempt in 1..=6 {
            let base = policy.timeout_for(attempt);
            let jittered = policy.jittered_timeout_for(attempt, 7, 99);
            // Bounded stretch, never a shrink.
            assert!(jittered >= base);
            assert!(jittered <= base + base / 2);
            // Pure function of (seed, salt, attempt).
            assert_eq!(jittered, policy.jittered_timeout_for(attempt, 7, 99));
        }
        // Different seeds or salts de-synchronize: across the whole
        // schedule at least one attempt must differ.
        let schedule = |seed: u64, salt: u64| -> Vec<u64> {
            (1..=8)
                .map(|a| policy.jittered_timeout_for(a, seed, salt))
                .collect()
        };
        assert_ne!(schedule(1, 99), schedule(2, 99));
        assert_ne!(schedule(1, 99), schedule(1, 100));
    }
}
