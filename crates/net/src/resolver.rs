//! The cross-net content-resolution protocol (paper §IV-C).
//!
//! Checkpoints carry only the *CIDs* of cross-message groups
//! (`CrossMsgMeta`), so a destination subnet must fetch the raw messages
//! before it can apply them. Two paths exist:
//!
//! * **push** — "as the checkpoints and CrossMsgMetas move up the
//!   hierarchy, miners publish to the pubsub topic of the corresponding
//!   subnet the whole DAG belonging to the CID". Peers may cache or
//!   discard pushed content.
//! * **pull** — a destination that cannot resolve a CID locally "can
//!   resolve the messages behind the CID by sending a pull request to the
//!   originating subnet"; any peer holding the content answers with a
//!   *resolve* message on the requester's topic, giving every other pool
//!   a chance to cache it too.
//!
//! [`Resolver`] implements the per-node state machine over these three
//! message kinds, backed by a validated [`ContentCache`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use hc_actors::{CrossMsg, FundCertificate};
use hc_types::merkle::merkle_root;
use hc_types::Cid;

/// Protocol messages exchanged on subnet topics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResolutionMsg {
    /// Proactive announcement of a message group (sent towards the
    /// destination subnet's topic as a checkpoint is signed).
    Push {
        /// The group's committed CID.
        cid: Cid,
        /// The raw messages.
        msgs: Vec<CrossMsg>,
    },
    /// Request for the content behind `cid`, published on the *source*
    /// subnet's topic; answers go to `reply_topic`.
    Pull {
        /// The CID to resolve.
        cid: Cid,
        /// Topic of the requesting subnet.
        reply_topic: String,
    },
    /// Answer to a pull, published on the requesting subnet's topic.
    Resolve {
        /// The resolved CID.
        cid: Cid,
        /// The raw messages.
        msgs: Vec<CrossMsg>,
    },
    /// A fund certificate riding the same topics: the direct-message
    /// acceleration for slow cross-net routes (paper §IV-A). Handled by
    /// the node runtime, not the resolver cache.
    Certificate(Box<FundCertificate>),
}

/// A validated content-addressable cache of cross-message groups.
///
/// Inserts are only accepted when the messages actually hash to the CID,
/// so cache poisoning is impossible.
#[derive(Debug, Clone, Default)]
pub struct ContentCache {
    entries: BTreeMap<Cid, Vec<CrossMsg>>,
}

impl ContentCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a group if it matches `cid`. Returns `true` on acceptance
    /// (idempotent: re-inserting known content also returns `true`).
    pub fn insert(&mut self, cid: Cid, msgs: Vec<CrossMsg>) -> bool {
        if merkle_root(&msgs) != cid {
            return false;
        }
        self.entries.entry(cid).or_insert(msgs);
        true
    }

    /// Looks up a group.
    pub fn get(&self, cid: &Cid) -> Option<&[CrossMsg]> {
        self.entries.get(cid).map(Vec::as_slice)
    }

    /// Returns `true` if the CID is cached.
    pub fn contains(&self, cid: &Cid) -> bool {
        self.entries.contains_key(cid)
    }

    /// Number of cached groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counters of one node's resolution activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Push announcements accepted into the cache.
    pub pushes_cached: u64,
    /// Push/resolve payloads rejected for CID mismatch.
    pub rejected: u64,
    /// Pull requests answered from the cache.
    pub pulls_served: u64,
    /// Pull requests received for unknown content (ignored; another peer
    /// may serve them).
    pub pulls_missed: u64,
    /// Resolve replies accepted into the cache.
    pub resolves_cached: u64,
    /// Local lookups answered from cache.
    pub cache_hits: u64,
    /// Local lookups that required a pull request.
    pub cache_misses: u64,
}

/// The per-node content-resolution state machine.
///
/// `handle` consumes an incoming [`ResolutionMsg`] and optionally produces
/// a reply `(topic, message)` the caller publishes; `lookup_or_pull`
/// serves local consumers (the cross-msg pool).
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    cache: ContentCache,
    stats: ResolverStats,
}

impl Resolver {
    /// Creates a resolver with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the cache.
    pub fn cache(&self) -> &ContentCache {
        &self.cache
    }

    /// Activity counters.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Seeds the cache with locally produced content (the SCA registers
    /// every group it creates).
    pub fn seed(&mut self, cid: Cid, msgs: Vec<CrossMsg>) -> bool {
        self.cache.insert(cid, msgs)
    }

    /// Processes an incoming protocol message. Returns an optional reply
    /// to publish as `(topic, message)`.
    pub fn handle(&mut self, msg: ResolutionMsg) -> Option<(String, ResolutionMsg)> {
        match msg {
            ResolutionMsg::Push { cid, msgs } => {
                if self.cache.insert(cid, msgs) {
                    self.stats.pushes_cached += 1;
                } else {
                    self.stats.rejected += 1;
                }
                None
            }
            ResolutionMsg::Pull { cid, reply_topic } => match self.cache.get(&cid) {
                Some(msgs) => {
                    self.stats.pulls_served += 1;
                    Some((
                        reply_topic,
                        ResolutionMsg::Resolve {
                            cid,
                            msgs: msgs.to_vec(),
                        },
                    ))
                }
                None => {
                    self.stats.pulls_missed += 1;
                    None
                }
            },
            ResolutionMsg::Resolve { cid, msgs } => {
                if self.cache.insert(cid, msgs) {
                    self.stats.resolves_cached += 1;
                } else {
                    self.stats.rejected += 1;
                }
                None
            }
            // Certificates are consumed by the node runtime before the
            // resolver sees traffic; a stray one is ignored here.
            ResolutionMsg::Certificate(_) => None,
        }
    }

    /// Local lookup for the cross-msg pool: returns the cached content, or
    /// the [`ResolutionMsg::Pull`] to publish on `source_topic`.
    pub fn lookup_or_pull(
        &mut self,
        cid: Cid,
        reply_topic: &str,
    ) -> Result<Vec<CrossMsg>, ResolutionMsg> {
        match self.cache.get(&cid) {
            Some(msgs) => {
                self.stats.cache_hits += 1;
                Ok(msgs.to_vec())
            }
            None => {
                self.stats.cache_misses += 1;
                Err(ResolutionMsg::Pull {
                    cid,
                    reply_topic: reply_topic.to_owned(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_actors::HcAddress;
    use hc_types::{Address, SubnetId, TokenAmount};

    fn group(n: u64) -> (Cid, Vec<CrossMsg>) {
        let msgs: Vec<CrossMsg> = (0..n)
            .map(|i| {
                CrossMsg::transfer(
                    HcAddress::new(
                        SubnetId::root().child(Address::new(9)),
                        Address::new(100 + i),
                    ),
                    HcAddress::new(SubnetId::root(), Address::new(200 + i)),
                    TokenAmount::from_atto(i as u128 + 1),
                )
            })
            .collect();
        (merkle_root(&msgs), msgs)
    }

    #[test]
    fn cache_rejects_mismatched_content() {
        let mut cache = ContentCache::new();
        let (cid, msgs) = group(3);
        let (_, other) = group(2);
        assert!(!cache.insert(cid, other));
        assert!(cache.insert(cid, msgs.clone()));
        assert_eq!(cache.get(&cid).unwrap(), msgs.as_slice());
        // Idempotent re-insert.
        assert!(cache.insert(cid, msgs));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn push_then_local_hit() {
        let mut r = Resolver::new();
        let (cid, msgs) = group(2);
        assert!(r
            .handle(ResolutionMsg::Push {
                cid,
                msgs: msgs.clone()
            })
            .is_none());
        assert_eq!(r.lookup_or_pull(cid, "/root/msgs").unwrap(), msgs);
        let stats = r.stats();
        assert_eq!(stats.pushes_cached, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 0);
    }

    #[test]
    fn miss_produces_pull_and_resolve_round_trip() {
        let mut requester = Resolver::new();
        let mut source = Resolver::new();
        let (cid, msgs) = group(4);
        source.seed(cid, msgs.clone());

        // Requester misses locally → emits a pull.
        let pull = requester.lookup_or_pull(cid, "/root/a5/msgs").unwrap_err();
        assert!(matches!(pull, ResolutionMsg::Pull { .. }));

        // Source answers on the reply topic.
        let (topic, resolve) = source.handle(pull).expect("source serves the pull");
        assert_eq!(topic, "/root/a5/msgs");

        // Requester ingests the resolve; the content is now local.
        assert!(requester.handle(resolve).is_none());
        assert_eq!(requester.lookup_or_pull(cid, "x").unwrap(), msgs);
        assert_eq!(source.stats().pulls_served, 1);
        assert_eq!(requester.stats().resolves_cached, 1);
    }

    #[test]
    fn pull_for_unknown_content_is_ignored() {
        let mut r = Resolver::new();
        let (cid, _) = group(1);
        let reply = r.handle(ResolutionMsg::Pull {
            cid,
            reply_topic: "t".into(),
        });
        assert!(reply.is_none());
        assert_eq!(r.stats().pulls_missed, 1);
    }

    #[test]
    fn poisoned_push_is_rejected() {
        let mut r = Resolver::new();
        let (cid, _) = group(2);
        let (_, wrong) = group(3);
        r.handle(ResolutionMsg::Push { cid, msgs: wrong });
        assert!(!r.cache().contains(&cid));
        assert_eq!(r.stats().rejected, 1);
    }
}
