//! Geo-aware placement: named regions, a per-region-pair latency/jitter
//! matrix, and asymmetric inter-region bandwidth/loss multipliers.
//!
//! A [`RegionMap`] places subscribers in named regions and describes, per
//! *ordered* region pair, the extra network behaviour a delivery crossing
//! that pair experiences (see [`RegionLink`]). The map layers *under* the
//! per-topic delay/loss model of [`crate::Network`]: the base model still
//! draws its delays and drops from the base RNG stream in the exact
//! pre-region order, and only deliveries whose region pair carries a
//! non-identity link draw anything extra — from the domain-separated fault
//! stream, never the base stream. [`RegionMap::uniform`] (the default)
//! therefore leaves every schedule bit-identical to a region-less network.
//!
//! Region-scoped *disasters* (whole-region outage, inter-region partition,
//! degraded trans-oceanic links) are fault-plan rules resolved against
//! this map — see [`crate::fault`].

use std::collections::BTreeMap;

use crate::pubsub::SubscriberId;

/// Extra behaviour of deliveries crossing one *ordered* region pair
/// (`from` region → `to` region). Asymmetric by construction: the reverse
/// direction is a separate link, so trans-oceanic bandwidth asymmetry is
/// expressible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionLink {
    /// Extra one-way propagation delay added to every delivery, in
    /// virtual ms.
    pub extra_delay_ms: u64,
    /// Extra uniform jitter `[0, jitter_ms]` added on top, drawn from the
    /// fault RNG stream (never the base stream).
    pub jitter_ms: u64,
    /// Extra per-delivery drop probability on this pair.
    pub loss_rate: f64,
    /// Bandwidth multiplier in percent applied to the *base* delay+jitter
    /// portion: `100` is identity, `250` models a pipe 2.5× slower in
    /// this direction.
    pub delay_factor_pct: u32,
}

impl RegionLink {
    /// The identity link: no extra delay, jitter, loss, or slow-down.
    /// Same-region traffic and unconfigured pairs behave like this.
    pub const IDENTITY: RegionLink = RegionLink {
        extra_delay_ms: 0,
        jitter_ms: 0,
        loss_rate: 0.0,
        delay_factor_pct: 100,
    };

    /// Is this link behaviourally the identity (adds nothing)?
    pub fn is_identity(&self) -> bool {
        self.extra_delay_ms == 0
            && self.jitter_ms == 0
            && self.loss_rate <= 0.0
            && self.delay_factor_pct == 100
    }
}

impl Default for RegionLink {
    fn default() -> Self {
        RegionLink::IDENTITY
    }
}

/// Placement of subscribers in named regions plus the per-region-pair
/// link matrix. See the module docs for the layering and bit-identity
/// guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionMap {
    /// Region names; a region's index is its identity. Index 0 is the
    /// default region of unplaced subscribers.
    regions: Vec<String>,
    /// Subscriber placement (raw subscriber id → region index).
    placement: BTreeMap<u64, usize>,
    /// Non-identity links, keyed by ordered `(from, to)` region indices.
    links: BTreeMap<(usize, usize), RegionLink>,
}

impl Default for RegionMap {
    fn default() -> Self {
        RegionMap::uniform()
    }
}

impl RegionMap {
    /// The uniform map: a single region, no links. Bit-identical to a
    /// network with no notion of place — it draws no extra randomness and
    /// adds no delay.
    pub fn uniform() -> Self {
        RegionMap {
            regions: vec!["global".to_owned()],
            placement: BTreeMap::new(),
            links: BTreeMap::new(),
        }
    }

    /// A map with the given named regions (index order preserved; the
    /// first is the default region) and no links yet.
    pub fn named(regions: &[&str]) -> Self {
        let mut map = RegionMap {
            regions: Vec::new(),
            placement: BTreeMap::new(),
            links: BTreeMap::new(),
        };
        for r in regions {
            map.add_region(r);
        }
        if map.regions.is_empty() {
            map.regions.push("global".to_owned());
        }
        map
    }

    /// Is this map behaviourally uniform (no non-identity link — every
    /// delivery experiences exactly the base model)?
    pub fn is_uniform(&self) -> bool {
        self.links.is_empty()
    }

    /// Region names in index order.
    pub fn region_names(&self) -> &[String] {
        &self.regions
    }

    /// The index of `name`, if declared.
    pub fn region_index(&self, name: &str) -> Option<usize> {
        self.regions.iter().position(|r| r == name)
    }

    /// Declares a region (idempotent), returning its index.
    pub fn add_region(&mut self, name: &str) -> usize {
        if let Some(i) = self.region_index(name) {
            return i;
        }
        self.regions.push(name.to_owned());
        self.regions.len() - 1
    }

    /// Places `sub` in `name` (declaring the region if needed).
    pub fn place(&mut self, sub: SubscriberId, name: &str) {
        let idx = self.add_region(name);
        self.placement.insert(sub.raw(), idx);
    }

    /// The region index of `sub` (the default region 0 when unplaced).
    pub fn region_of(&self, sub: SubscriberId) -> usize {
        self.placement.get(&sub.raw()).copied().unwrap_or(0)
    }

    /// The region name of `sub`.
    pub fn region_name_of(&self, sub: SubscriberId) -> &str {
        &self.regions[self.region_of(sub)]
    }

    /// Every placed subscriber in region `name` (ascending id order).
    pub fn members(&self, name: &str) -> Vec<SubscriberId> {
        let Some(idx) = self.region_index(name) else {
            return Vec::new();
        };
        self.placement
            .iter()
            .filter(|(_, r)| **r == idx)
            .map(|(raw, _)| SubscriberId::from_raw(*raw))
            .collect()
    }

    /// Sets the directed link `from → to` (declaring regions as needed).
    /// Identity links are *removed* so [`RegionMap::is_uniform`] stays an
    /// exact behavioural test.
    pub fn set_link(&mut self, from: &str, to: &str, link: RegionLink) {
        let f = self.add_region(from);
        let t = self.add_region(to);
        if link.is_identity() {
            self.links.remove(&(f, t));
        } else {
            self.links.insert((f, t), link);
        }
    }

    /// Sets `from → to` *and* `to → from` to the same link.
    pub fn set_link_symmetric(&mut self, a: &str, b: &str, link: RegionLink) {
        self.set_link(a, b, link);
        self.set_link(b, a, link);
    }

    /// The directed link between two region indices. Same-region and
    /// unconfigured pairs are the identity.
    pub fn link(&self, from: usize, to: usize) -> RegionLink {
        if from == to {
            return RegionLink::IDENTITY;
        }
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(RegionLink::IDENTITY)
    }

    /// The directed link between the regions of two subscribers; the
    /// origin defaults to region 0 when unknown.
    pub fn link_between(&self, from: Option<SubscriberId>, to: SubscriberId) -> RegionLink {
        let f = from.map_or(0, |s| self.region_of(s));
        self.link(f, self.region_of(to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_map_is_uniform_and_default() {
        let map = RegionMap::uniform();
        assert!(map.is_uniform());
        assert_eq!(map, RegionMap::default());
        assert_eq!(map.region_of(SubscriberId::from_raw(7)), 0);
        assert!(map
            .link_between(None, SubscriberId::from_raw(7))
            .is_identity());
    }

    #[test]
    fn placement_and_links_resolve_asymmetrically() {
        let mut map = RegionMap::named(&["us-east", "eu-west"]);
        let a = SubscriberId::from_raw(1);
        let b = SubscriberId::from_raw(2);
        map.place(a, "us-east");
        map.place(b, "eu-west");
        map.set_link(
            "us-east",
            "eu-west",
            RegionLink {
                extra_delay_ms: 70,
                ..RegionLink::IDENTITY
            },
        );
        assert!(!map.is_uniform());
        assert_eq!(map.link_between(Some(a), b).extra_delay_ms, 70);
        // The reverse direction was never configured: identity.
        assert!(map.link_between(Some(b), a).is_identity());
        assert_eq!(map.region_name_of(b), "eu-west");
        assert_eq!(map.members("eu-west"), vec![b]);
    }

    #[test]
    fn identity_links_do_not_break_uniformity() {
        let mut map = RegionMap::named(&["a", "b"]);
        map.set_link("a", "b", RegionLink::IDENTITY);
        assert!(map.is_uniform());
        map.set_link(
            "a",
            "b",
            RegionLink {
                loss_rate: 0.5,
                ..RegionLink::IDENTITY
            },
        );
        assert!(!map.is_uniform());
        map.set_link("a", "b", RegionLink::IDENTITY);
        assert!(map.is_uniform());
    }

    #[test]
    fn declared_regions_keep_index_order() {
        let mut map = RegionMap::named(&["x", "y"]);
        assert_eq!(map.add_region("x"), 0);
        assert_eq!(map.add_region("z"), 2);
        assert_eq!(map.region_names(), &["x", "y", "z"]);
    }
}
