//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] is a *schedule* of adversarial network conditions —
//! named partitions, targeted loss, bounded duplication, adversarial
//! reordering, and node crash windows — attached to a
//! [`crate::NetConfig`]. Every fault decision draws from a dedicated
//! fault RNG stream (domain-separated from the base delay/loss stream),
//! so two runs under the same seed are bit-identical, and a run with
//! [`FaultPlan::none`] behaves exactly like a run on a fault-free
//! network build.
//!
//! All times are virtual milliseconds on the simulator clock. Windows
//! are half-open: a fault with `from_ms = a` and `heal_ms`/`until_ms
//! = b` is active for deliveries published at `a <= now < b`.

use hc_types::SubnetId;

use crate::pubsub::SubscriberId;

/// What happens to a delivery that crosses an active [`Partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionPolicy {
    /// The delivery is dropped outright (counted in
    /// `NetStats::partition_dropped`). Senders must retry past the heal
    /// time to get through.
    #[default]
    Drop,
    /// The delivery is queued and released when the partition heals:
    /// its delivery time is clamped to at least `heal_ms` (counted in
    /// `NetStats::partition_held`).
    HoldUntilHeal,
}

/// A named network partition, active for `[from_ms, heal_ms)`.
///
/// Scope is the union of two selectors:
///
/// * `topics` — every delivery on a listed topic is severed (a topic
///   blackout);
/// * `subscribers` — the listed subscribers form an isolated island:
///   a delivery is severed when exactly one side (origin or
///   destination) is inside the island. Traffic *within* the island
///   still flows. A delivery whose origin is unknown (`None`) is
///   treated as coming from outside the island.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Partition {
    /// Human-readable label, surfaced in debug output and reports.
    pub name: String,
    /// Virtual time the partition starts.
    pub from_ms: u64,
    /// Virtual time the partition heals (`u64::MAX` = never).
    pub heal_ms: u64,
    /// Topics blacked out entirely while active.
    pub topics: Vec<String>,
    /// Subscribers isolated from everyone outside this set.
    pub subscribers: Vec<SubscriberId>,
    /// Fate of severed deliveries.
    pub policy: PartitionPolicy,
}

impl Partition {
    /// Returns `true` while the partition is in force at `now_ms`.
    pub fn active(&self, now_ms: u64) -> bool {
        self.from_ms <= now_ms && now_ms < self.heal_ms
    }

    /// Returns `true` when a delivery on `topic` from `origin` to
    /// `dest` crosses this partition's boundary.
    pub fn severs(&self, topic: &str, origin: Option<SubscriberId>, dest: SubscriberId) -> bool {
        if self.topics.iter().any(|t| t == topic) {
            return true;
        }
        if self.subscribers.is_empty() {
            return false;
        }
        let dest_in = self.subscribers.contains(&dest);
        let origin_in = origin.is_some_and(|o| self.subscribers.contains(&o));
        dest_in != origin_in
    }
}

/// Targeted (possibly asymmetric) message loss, active for
/// `[from_ms, until_ms)`. Every selector is optional; `None` matches
/// anything. A rule with `from: Some(_)` only matches deliveries whose
/// origin is known (see [`crate::Network::publish_from`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LossRule {
    /// Virtual time the rule activates.
    pub from_ms: u64,
    /// Virtual time the rule expires (`u64::MAX` = never).
    pub until_ms: u64,
    /// Restrict to one topic (`None` = every topic).
    pub topic: Option<String>,
    /// Restrict to deliveries published by this subscriber.
    pub from: Option<SubscriberId>,
    /// Restrict to deliveries destined for this subscriber.
    pub to: Option<SubscriberId>,
    /// Per-delivery drop probability in `[0, 1]`.
    pub rate: f64,
}

impl LossRule {
    /// Returns `true` when the rule applies to this delivery.
    pub fn matches(
        &self,
        now_ms: u64,
        topic: &str,
        origin: Option<SubscriberId>,
        dest: SubscriberId,
    ) -> bool {
        self.from_ms <= now_ms
            && now_ms < self.until_ms
            && self.topic.as_deref().is_none_or(|t| t == topic)
            && self.to.is_none_or(|t| t == dest)
            && self.from.is_none_or(|f| origin == Some(f))
    }
}

/// Bounded duplication: matching deliveries are scheduled again up to
/// `max_copies` extra times, each copy offset by up to `spread_ms`.
/// Duplicate copies are flagged so [`crate::NetStats::delivered`] never
/// double-counts them — they accumulate in
/// [`crate::NetStats::redelivered`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct DupRule {
    /// Virtual time the rule activates.
    pub from_ms: u64,
    /// Virtual time the rule expires.
    pub until_ms: u64,
    /// Restrict to one topic (`None` = every topic).
    pub topic: Option<String>,
    /// Probability that a matching delivery is duplicated.
    pub rate: f64,
    /// Upper bound on extra copies per duplicated delivery (>= 1).
    pub max_copies: u32,
    /// Extra delay spread applied to each copy, `[0, spread_ms]`.
    pub spread_ms: u64,
}

impl DupRule {
    /// Returns `true` when the rule applies to a delivery published at
    /// `now_ms` on `topic`.
    pub fn matches(&self, now_ms: u64, topic: &str) -> bool {
        self.from_ms <= now_ms
            && now_ms < self.until_ms
            && self.topic.as_deref().is_none_or(|t| t == topic)
    }
}

/// Adversarial reordering: matching deliveries have their delay
/// inflated by up to `max_extra_delay_ms`, letting later publishes
/// overtake earlier ones within the window.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderRule {
    /// Virtual time the rule activates.
    pub from_ms: u64,
    /// Virtual time the rule expires.
    pub until_ms: u64,
    /// Restrict to one topic (`None` = every topic).
    pub topic: Option<String>,
    /// Probability that a matching delivery is delayed.
    pub rate: f64,
    /// Upper bound on the extra delay, in virtual ms (>= 1).
    pub max_extra_delay_ms: u64,
}

impl ReorderRule {
    /// Returns `true` when the rule applies to a delivery published at
    /// `now_ms` on `topic`.
    pub fn matches(&self, now_ms: u64, topic: &str) -> bool {
        self.from_ms <= now_ms
            && now_ms < self.until_ms
            && self.topic.as_deref().is_none_or(|t| t == topic)
    }
}

/// A scheduled single-node crash: the runtime kills `subnet`'s node
/// once virtual time reaches `crash_at_ms` and rejoins it (through
/// recovery plus network catch-up) at `rejoin_at_ms`.
///
/// Carried here — rather than in the runtime's own config — so one
/// `FaultPlan` describes the complete chaos schedule of a run; the
/// network itself only models the node's offline window, the crash
/// state machine lives in `hc-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashFault {
    /// The subnet whose node crashes.
    pub subnet: SubnetId,
    /// Virtual time of the crash.
    pub crash_at_ms: u64,
    /// Virtual time of the rejoin (`u64::MAX` = never rejoins).
    pub rejoin_at_ms: u64,
}

/// A scheduled whole-region disaster: every node placed in `region`
/// (see [`crate::RegionMap`]) crashes at `from_ms` and heals (rejoins
/// through recovery plus catch-up) at `heal_ms`.
///
/// Two layers cooperate: `hc-core` drives the crash–rejoin state machine
/// for every region member (deepest subnets first, parents rejoining
/// before their children), while the network blackholes any delivery to
/// or from a subscriber placed in the region for the whole window
/// (counted in `NetStats::region_dropped`) — members that cannot safely
/// crash, such as the rootnet node, still go dark on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionOutage {
    /// Name of the region that goes dark.
    pub region: String,
    /// Virtual time the outage starts.
    pub from_ms: u64,
    /// Virtual time the region heals (`u64::MAX` = never).
    pub heal_ms: u64,
}

impl RegionOutage {
    /// Returns `true` while the outage is in force at `now_ms`.
    pub fn active(&self, now_ms: u64) -> bool {
        self.from_ms <= now_ms && now_ms < self.heal_ms
    }
}

/// An inter-region partition: deliveries crossing between regions `a`
/// and `b` (in either direction) are severed for `[from_ms, heal_ms)`.
/// Traffic within each region, and to/from third regions, still flows.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPartition {
    /// Human-readable label.
    pub name: String,
    /// One side of the partition (a region name).
    pub a: String,
    /// The other side.
    pub b: String,
    /// Virtual time the partition starts.
    pub from_ms: u64,
    /// Virtual time the partition heals (`u64::MAX` = never).
    pub heal_ms: u64,
    /// Fate of severed deliveries: dropped (`NetStats::region_dropped`)
    /// or queued until heal (`NetStats::region_held`).
    pub policy: PartitionPolicy,
}

impl RegionPartition {
    /// Returns `true` while the partition is in force at `now_ms`.
    pub fn active(&self, now_ms: u64) -> bool {
        self.from_ms <= now_ms && now_ms < self.heal_ms
    }

    /// Returns `true` when a delivery from region `from` to region `to`
    /// (by name) crosses this partition.
    pub fn severs(&self, from: &str, to: &str) -> bool {
        (from == self.a && to == self.b) || (from == self.b && to == self.a)
    }
}

/// A degraded trans-oceanic link: deliveries from region `from` to
/// region `to` get `extra_delay_ms` of added latency and an extra
/// `loss_rate` drop probability for `[from_ms, until_ms)` — inflation
/// *on top of* the static [`crate::RegionLink`] matrix. Directed; add
/// the reverse rule for a symmetric degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDegrade {
    /// Origin region name.
    pub from: String,
    /// Destination region name.
    pub to: String,
    /// Virtual time the degradation starts.
    pub from_ms: u64,
    /// Virtual time it ends (`u64::MAX` = never).
    pub until_ms: u64,
    /// Extra one-way latency while active, in virtual ms.
    pub extra_delay_ms: u64,
    /// Extra per-delivery drop probability while active (counted in
    /// `NetStats::region_lost`).
    pub loss_rate: f64,
}

impl RegionDegrade {
    /// Returns `true` when the rule applies to a delivery published at
    /// `now_ms` from region `from` to region `to` (by name).
    pub fn matches(&self, now_ms: u64, from: &str, to: &str) -> bool {
        self.from_ms <= now_ms && now_ms < self.until_ms && from == self.from && to == self.to
    }
}

/// A complete, seeded, schedulable fault plan.
///
/// The default plan is empty ([`FaultPlan::none`]) and is guaranteed to
/// leave the network's behaviour — including its RNG stream —
/// bit-identical to a build without the chaos layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Named partitions.
    pub partitions: Vec<Partition>,
    /// Targeted/asymmetric loss rules.
    pub losses: Vec<LossRule>,
    /// Bounded duplication rules.
    pub duplications: Vec<DupRule>,
    /// Adversarial reordering rules.
    pub reorders: Vec<ReorderRule>,
    /// Scheduled node crash–rejoin windows (interpreted by `hc-core`).
    pub crashes: Vec<CrashFault>,
    /// Whole-region outages (network blackhole here; the crash–rejoin
    /// of region members is interpreted by `hc-core`).
    pub region_outages: Vec<RegionOutage>,
    /// Inter-region partitions.
    pub region_partitions: Vec<RegionPartition>,
    /// Degraded inter-region links (latency/loss inflation).
    pub region_degrades: Vec<RegionDegrade>,
}

impl FaultPlan {
    /// The empty plan: no faults, byte-identical behaviour to a
    /// fault-free network.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` when the plan schedules nothing.
    pub fn is_none(&self) -> bool {
        self.partitions.is_empty()
            && self.losses.is_empty()
            && self.duplications.is_empty()
            && self.reorders.is_empty()
            && self.crashes.is_empty()
            && self.region_outages.is_empty()
            && self.region_partitions.is_empty()
            && self.region_degrades.is_empty()
    }

    /// Merges another plan's rules into this one (used by tests that
    /// learn subscriber ids only after the network is built).
    pub fn merge(&mut self, other: FaultPlan) {
        self.partitions.extend(other.partitions);
        self.losses.extend(other.losses);
        self.duplications.extend(other.duplications);
        self.reorders.extend(other.reorders);
        self.crashes.extend(other.crashes);
        self.region_outages.extend(other.region_outages);
        self.region_partitions.extend(other.region_partitions);
        self.region_degrades.extend(other.region_degrades);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        let mut plan = FaultPlan::none();
        plan.reorders.push(ReorderRule {
            from_ms: 0,
            until_ms: 10,
            topic: None,
            rate: 1.0,
            max_extra_delay_ms: 5,
        });
        assert!(!plan.is_none());
    }

    #[test]
    fn partition_windows_are_half_open() {
        let p = Partition {
            name: "t".into(),
            from_ms: 100,
            heal_ms: 200,
            topics: vec!["a".into()],
            subscribers: Vec::new(),
            policy: PartitionPolicy::Drop,
        };
        assert!(!p.active(99));
        assert!(p.active(100));
        assert!(p.active(199));
        assert!(!p.active(200));
    }

    #[test]
    fn subscriber_partitions_sever_only_boundary_crossings() {
        let a = SubscriberId::from_raw(1);
        let b = SubscriberId::from_raw(2);
        let outside = SubscriberId::from_raw(3);
        let p = Partition {
            name: "island".into(),
            from_ms: 0,
            heal_ms: u64::MAX,
            topics: Vec::new(),
            subscribers: vec![a, b],
            policy: PartitionPolicy::Drop,
        };
        // Inside the island: flows.
        assert!(!p.severs("t", Some(a), b));
        // Crossing in either direction: severed.
        assert!(p.severs("t", Some(a), outside));
        assert!(p.severs("t", Some(outside), a));
        // Unknown origin counts as outside.
        assert!(p.severs("t", None, a));
        assert!(!p.severs("t", None, outside));
    }

    #[test]
    fn loss_rule_selectors_are_optional() {
        let dest = SubscriberId::from_raw(7);
        let origin = SubscriberId::from_raw(9);
        let rule = LossRule {
            from_ms: 0,
            until_ms: 1_000,
            topic: Some("x".into()),
            from: Some(origin),
            to: Some(dest),
            rate: 1.0,
        };
        assert!(rule.matches(10, "x", Some(origin), dest));
        assert!(!rule.matches(10, "y", Some(origin), dest));
        assert!(!rule.matches(10, "x", None, dest));
        assert!(!rule.matches(2_000, "x", Some(origin), dest));
    }

    #[test]
    fn region_rules_count_toward_is_none_and_merge() {
        let mut plan = FaultPlan::none();
        plan.region_outages.push(RegionOutage {
            region: "ap-south".into(),
            from_ms: 10,
            heal_ms: 20,
        });
        assert!(!plan.is_none());

        let mut other = FaultPlan::none();
        other.region_partitions.push(RegionPartition {
            name: "atlantic".into(),
            a: "us-east".into(),
            b: "eu-west".into(),
            from_ms: 0,
            heal_ms: 5,
            policy: PartitionPolicy::HoldUntilHeal,
        });
        other.region_degrades.push(RegionDegrade {
            from: "us-east".into(),
            to: "eu-west".into(),
            from_ms: 0,
            until_ms: 5,
            extra_delay_ms: 40,
            loss_rate: 0.1,
        });
        assert!(!other.is_none());
        plan.merge(other);
        assert_eq!(plan.region_outages.len(), 1);
        assert_eq!(plan.region_partitions.len(), 1);
        assert_eq!(plan.region_degrades.len(), 1);
    }

    #[test]
    fn region_windows_are_half_open_and_pair_matched() {
        let outage = RegionOutage {
            region: "r".into(),
            from_ms: 100,
            heal_ms: 200,
        };
        assert!(!outage.active(99));
        assert!(outage.active(100));
        assert!(outage.active(199));
        assert!(!outage.active(200));

        let part = RegionPartition {
            name: "p".into(),
            a: "x".into(),
            b: "y".into(),
            from_ms: 0,
            heal_ms: 10,
            policy: PartitionPolicy::Drop,
        };
        assert!(part.severs("x", "y"));
        assert!(part.severs("y", "x"));
        assert!(!part.severs("x", "x"));
        assert!(!part.severs("x", "z"));

        let degrade = RegionDegrade {
            from: "x".into(),
            to: "y".into(),
            from_ms: 5,
            until_ms: 10,
            extra_delay_ms: 1,
            loss_rate: 0.0,
        };
        // Directed: only x → y matches, and only inside the window.
        assert!(degrade.matches(5, "x", "y"));
        assert!(!degrade.matches(5, "y", "x"));
        assert!(!degrade.matches(4, "x", "y"));
        assert!(!degrade.matches(10, "x", "y"));
    }
}
