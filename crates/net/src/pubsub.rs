//! Simulated topic pub-sub.
//!
//! A [`Network`] carries opaque payloads between subscribers of named
//! topics under a configurable delay/loss model. Delivery is pull-based
//! against virtual time: `publish` schedules deliveries, `poll` returns the
//! messages whose delivery time has passed — which makes the network
//! composable with the discrete-event simulator and fully deterministic
//! under a seed.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delay and loss model of the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Base one-way propagation delay in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Uniform jitter added on top of the base delay, `[0, jitter_ms]`.
    pub jitter_ms: u64,
    /// Probability that a given delivery is dropped (per subscriber).
    pub drop_rate: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            base_delay_ms: 50,
            jitter_ms: 20,
            drop_rate: 0.0,
        }
    }
}

/// Handle identifying one subscription of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriberId(u64);

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages published.
    pub published: u64,
    /// Per-subscriber deliveries scheduled.
    pub scheduled: u64,
    /// Deliveries dropped by the loss model.
    pub dropped: u64,
    /// Deliveries actually polled by subscribers.
    pub delivered: u64,
}

#[derive(Debug)]
struct Pending<P> {
    deliver_at_ms: u64,
    payload: P,
}

#[derive(Debug)]
struct Inner<P> {
    config: NetConfig,
    rng: StdRng,
    next_id: u64,
    /// topic -> subscriber ids.
    topics: HashMap<String, Vec<SubscriberId>>,
    /// subscriber -> pending deliveries ordered by delivery time.
    inboxes: BTreeMap<SubscriberId, VecDeque<Pending<P>>>,
    /// Multiset of the delivery times of every pending message, maintained
    /// incrementally on publish/poll so the wave scheduler's
    /// [`Network::next_delivery_ms`] is an O(1) first-key read instead of
    /// an O(total-queued) scan over every inbox.
    pending_times: BTreeMap<u64, usize>,
    stats: NetStats,
}

impl<P> Inner<P> {
    fn note_scheduled(&mut self, deliver_at_ms: u64) {
        *self.pending_times.entry(deliver_at_ms).or_insert(0) += 1;
    }

    fn note_delivered(&mut self, deliver_at_ms: u64) {
        match self.pending_times.get_mut(&deliver_at_ms) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.pending_times.remove(&deliver_at_ms);
            }
            None => unreachable!("delivered a message that was never scheduled"),
        }
    }
}

/// A simulated pub-sub network. Cloning yields another handle to the same
/// network (nodes share it).
#[derive(Debug, Clone)]
pub struct Network<P> {
    inner: Arc<Mutex<Inner<P>>>,
}

impl<P: Clone> Network<P> {
    /// Creates a network with the given delay/loss model and RNG seed.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        Network {
            inner: Arc::new(Mutex::new(Inner {
                config,
                rng: StdRng::seed_from_u64(seed),
                next_id: 0,
                topics: HashMap::new(),
                inboxes: BTreeMap::new(),
                pending_times: BTreeMap::new(),
                stats: NetStats::default(),
            })),
        }
    }

    /// Subscribes a new endpoint to `topic`, returning its handle.
    pub fn subscribe(&self, topic: &str) -> SubscriberId {
        let mut inner = self.inner.lock();
        let id = SubscriberId(inner.next_id);
        inner.next_id += 1;
        inner.topics.entry(topic.to_owned()).or_default().push(id);
        inner.inboxes.insert(id, VecDeque::new());
        id
    }

    /// Adds an existing subscriber to another topic (nodes of a child
    /// subnet also follow their parent's topic, paper §II).
    pub fn join(&self, sub: SubscriberId, topic: &str) {
        let mut inner = self.inner.lock();
        let subs = inner.topics.entry(topic.to_owned()).or_default();
        if !subs.contains(&sub) {
            subs.push(sub);
        }
    }

    /// Publishes `payload` on `topic` at virtual time `now_ms`, scheduling
    /// a delivery per subscriber (minus losses). `exclude` suppresses the
    /// publisher's own copy. Returns the number of deliveries scheduled.
    pub fn publish(
        &self,
        topic: &str,
        payload: P,
        now_ms: u64,
        exclude: Option<SubscriberId>,
    ) -> usize {
        let mut inner = self.inner.lock();
        inner.stats.published += 1;
        let subs = inner.topics.get(topic).cloned().unwrap_or_default();
        let mut scheduled = 0;
        for sub in subs {
            if Some(sub) == exclude {
                continue;
            }
            let drop_rate = inner.config.drop_rate;
            if drop_rate > 0.0 && inner.rng.gen_bool(drop_rate.clamp(0.0, 1.0)) {
                inner.stats.dropped += 1;
                continue;
            }
            let jitter_ms = inner.config.jitter_ms;
            let jitter = if jitter_ms > 0 {
                inner.rng.gen_range(0..=jitter_ms)
            } else {
                0
            };
            let deliver_at_ms = now_ms + inner.config.base_delay_ms + jitter;
            inner
                .inboxes
                .get_mut(&sub)
                .expect("subscriber has inbox")
                .push_back(Pending {
                    deliver_at_ms,
                    payload: payload.clone(),
                });
            inner.note_scheduled(deliver_at_ms);
            inner.stats.scheduled += 1;
            scheduled += 1;
        }
        scheduled
    }

    /// Returns the messages for `sub` whose delivery time has passed.
    pub fn poll(&self, sub: SubscriberId, now_ms: u64) -> Vec<P> {
        let mut inner = self.inner.lock();
        let Some(inbox) = inner.inboxes.get_mut(&sub) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut taken_times = Vec::new();
        let mut remaining = VecDeque::with_capacity(inbox.len());
        while let Some(p) = inbox.pop_front() {
            if p.deliver_at_ms <= now_ms {
                taken_times.push(p.deliver_at_ms);
                out.push(p.payload);
            } else {
                remaining.push_back(p);
            }
        }
        *inbox = remaining;
        for t in taken_times {
            inner.note_delivered(t);
        }
        inner.stats.delivered += out.len() as u64;
        out
    }

    /// Earliest pending delivery time across all subscribers, if any — the
    /// simulator uses this to advance virtual time without busy-waiting.
    /// Reads the incrementally maintained delivery-time multiset, so the
    /// cost is O(1) rather than a scan of every queued message.
    pub fn next_delivery_ms(&self) -> Option<u64> {
        let inner = self.inner.lock();
        inner.pending_times.keys().next().copied()
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(drop_rate: f64) -> Network<&'static str> {
        Network::new(
            NetConfig {
                base_delay_ms: 100,
                jitter_ms: 0,
                drop_rate,
            },
            7,
        )
    }

    #[test]
    fn delivery_respects_virtual_time() {
        let n = net(0.0);
        let a = n.subscribe("/root/msgs");
        assert_eq!(n.publish("/root/msgs", "hello", 0, None), 1);
        // Too early.
        assert!(n.poll(a, 99).is_empty());
        assert_eq!(n.poll(a, 100), vec!["hello"]);
        // Consumed.
        assert!(n.poll(a, 200).is_empty());
    }

    #[test]
    fn all_topic_subscribers_receive_except_excluded() {
        let n = net(0.0);
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        let c = n.subscribe("other");
        assert_eq!(n.publish("t", "x", 0, Some(a)), 1);
        assert!(n.poll(a, 1_000).is_empty());
        assert_eq!(n.poll(b, 1_000), vec!["x"]);
        assert!(n.poll(c, 1_000).is_empty());
    }

    #[test]
    fn join_adds_existing_subscriber_to_topic() {
        let n = net(0.0);
        let a = n.subscribe("child");
        n.join(a, "parent");
        n.join(a, "parent"); // idempotent
        n.publish("parent", "p", 0, None);
        assert_eq!(n.poll(a, 1_000), vec!["p"]);
    }

    #[test]
    fn losses_are_counted() {
        let n = net(1.0);
        let a = n.subscribe("t");
        assert_eq!(n.publish("t", "x", 0, None), 0);
        assert!(n.poll(a, 10_000).is_empty());
        let stats = n.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn publishing_to_unknown_topic_is_a_noop() {
        let n = net(0.0);
        assert_eq!(n.publish("nobody", "x", 0, None), 0);
    }

    #[test]
    fn next_delivery_tracks_earliest_pending() {
        let n = net(0.0);
        let _a = n.subscribe("t");
        assert_eq!(n.next_delivery_ms(), None);
        n.publish("t", "x", 500, None);
        n.publish("t", "y", 0, None);
        assert_eq!(n.next_delivery_ms(), Some(100));
    }

    #[test]
    fn next_delivery_stays_consistent_across_poll() {
        let n = net(0.0);
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        // Same delivery time for two subscribers: polling one of them must
        // not clear the other's pending slot from the multiset.
        n.publish("t", "x", 0, None); // due at 100 for both a and b
        n.publish("t", "y", 400, None); // due at 500 for both
        assert_eq!(n.next_delivery_ms(), Some(100));
        assert_eq!(n.poll(a, 100), vec!["x"]);
        assert_eq!(n.next_delivery_ms(), Some(100)); // b's copy still queued
        assert_eq!(n.poll(b, 100), vec!["x"]);
        assert_eq!(n.next_delivery_ms(), Some(500));
        n.poll(a, 10_000);
        n.poll(b, 10_000);
        assert_eq!(n.next_delivery_ms(), None);
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            let n: Network<u32> = Network::new(
                NetConfig {
                    base_delay_ms: 10,
                    jitter_ms: 50,
                    drop_rate: 0.3,
                },
                1234,
            );
            let a = n.subscribe("t");
            for i in 0..50 {
                n.publish("t", i, i as u64 * 10, None);
            }
            n.poll(a, 10_000)
        };
        assert_eq!(mk(), mk());
    }
}
