//! Simulated topic pub-sub.
//!
//! A [`Network`] carries opaque payloads between subscribers of named
//! topics under a configurable delay/loss model. Delivery is pull-based
//! against virtual time: `publish` schedules deliveries, `poll` returns the
//! messages whose delivery time has passed — which makes the network
//! composable with the discrete-event simulator and fully deterministic
//! under a seed.
//!
//! On top of the base delay/loss model, a seeded [`FaultPlan`] can inject
//! named partitions, targeted loss, bounded duplication, and adversarial
//! reordering (see [`crate::fault`]). Fault decisions draw from a
//! dedicated, domain-separated RNG stream, so the empty plan leaves the
//! base behaviour bit-identical.
//!
//! A [`RegionMap`] (see [`crate::region`]) layers geography *under* the
//! per-topic model: deliveries crossing a non-identity region pair gain
//! extra delay/jitter/loss drawn from the same domain-separated fault
//! stream, and region-scoped disaster rules (outage, partition, degrade)
//! resolve placements against the map. The uniform map draws nothing.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultPlan, PartitionPolicy};
use crate::region::RegionMap;

/// Domain separation for the fault-decision RNG stream: fault draws must
/// never perturb the base delay/loss stream. Shared with the resolver's
/// seeded backoff jitter, which belongs to the same fault domain.
pub(crate) const FAULT_RNG_DOMAIN: u64 = 0x6661_756c_7421; // "fault!"

/// Delay and loss model of the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Base one-way propagation delay in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Uniform jitter added on top of the base delay, `[0, jitter_ms]`.
    pub jitter_ms: u64,
    /// Probability that a given delivery is dropped (per subscriber).
    pub drop_rate: f64,
    /// Scheduled fault injection (partitions, targeted loss, duplication,
    /// reordering, crash windows). The default — [`FaultPlan::none`] —
    /// schedules nothing and is bit-identical to the pre-chaos network.
    pub faults: FaultPlan,
    /// Geo-aware placement and inter-region link matrix. The default —
    /// [`RegionMap::uniform`] — draws no extra randomness, adds no delay,
    /// and is bit-identical to the region-less network.
    pub regions: RegionMap,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            base_delay_ms: 50,
            jitter_ms: 20,
            drop_rate: 0.0,
            faults: FaultPlan::none(),
            regions: RegionMap::uniform(),
        }
    }
}

/// Handle identifying one subscription of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriberId(u64);

impl SubscriberId {
    /// Builds a subscriber id from its raw value — only meaningful for
    /// ids previously handed out by [`Network::subscribe`] (fault plans
    /// reference subscribers this way).
    pub const fn from_raw(raw: u64) -> Self {
        SubscriberId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// Aggregate traffic statistics.
///
/// Every candidate delivery is accounted for exactly once:
/// `attempts == scheduled + dropped + partition_dropped +
/// targeted_dropped + offline_dropped + region_dropped + region_lost`,
/// and after a full drain `scheduled + duplicated == delivered +
/// redelivered + offline_cleared` (plus whatever
/// [`Network::pending_deliveries`] still holds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages published.
    pub published: u64,
    /// Candidate per-subscriber deliveries considered (publishes fanned
    /// out over topic membership, minus the publisher's excluded copy).
    pub attempts: u64,
    /// Per-subscriber deliveries scheduled (fault-injected duplicate
    /// copies are *not* counted here — see [`NetStats::duplicated`]).
    pub scheduled: u64,
    /// Deliveries dropped by the base loss model.
    pub dropped: u64,
    /// Unique deliveries actually polled by subscribers. Fault-injected
    /// duplicate copies polled by subscribers accumulate in
    /// [`NetStats::redelivered`], never here, so `delivered` can be
    /// reconciled against `scheduled` even under duplication faults.
    pub delivered: u64,
    /// Extra copies scheduled by duplication faults.
    pub duplicated: u64,
    /// Duplicate copies polled by subscribers.
    pub redelivered: u64,
    /// Deliveries whose delay was inflated by a reorder fault.
    pub reordered: u64,
    /// Deliveries severed by a [`PartitionPolicy::Drop`] partition.
    pub partition_dropped: u64,
    /// Deliveries deferred to heal time by a
    /// [`PartitionPolicy::HoldUntilHeal`] partition.
    pub partition_held: u64,
    /// Deliveries dropped by targeted loss rules.
    pub targeted_dropped: u64,
    /// Deliveries skipped because the subscriber was offline (crashed).
    pub offline_dropped: u64,
    /// Pending deliveries discarded when a subscriber's inbox was
    /// cleared at crash time.
    pub offline_cleared: u64,
    /// Deliveries blackholed by a region disaster: an active
    /// [`crate::fault::RegionOutage`] touching either endpoint's region,
    /// or an active [`crate::fault::RegionPartition`] with
    /// [`PartitionPolicy::Drop`].
    pub region_dropped: u64,
    /// Deliveries deferred to heal time by an active
    /// [`crate::fault::RegionPartition`] with
    /// [`PartitionPolicy::HoldUntilHeal`].
    pub region_held: u64,
    /// Deliveries dropped by inter-region link loss — the static
    /// [`crate::RegionLink::loss_rate`] matrix or an active
    /// [`crate::fault::RegionDegrade`] inflation.
    pub region_lost: u64,
}

/// Delivered-latency summary of one topic, measured per unique delivery
/// as `deliver_at_ms - sent_at_ms` (pull cadence does not affect it).
/// Fault-injected duplicate copies are not counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicLatency {
    /// Unique deliveries measured.
    pub count: u64,
    /// Median delivery latency in virtual ms (nearest-rank).
    pub p50_ms: u64,
    /// 99th-percentile delivery latency in virtual ms (nearest-rank).
    pub p99_ms: u64,
    /// Worst delivery latency in virtual ms.
    pub max_ms: u64,
}

#[derive(Debug)]
struct Pending<P> {
    deliver_at_ms: u64,
    /// Publish time, kept so poll can histogram the delivered latency.
    sent_at_ms: u64,
    /// Interned topic id (index into `Inner::latency`).
    topic: u32,
    payload: P,
    /// `true` for fault-injected duplicate copies: polled copies count
    /// into `redelivered`, never `delivered`.
    duplicate: bool,
}

#[derive(Debug)]
struct Inner<P> {
    config: NetConfig,
    rng: StdRng,
    /// Fault-decision stream, domain-separated from `rng` so an empty
    /// fault plan leaves the base delay/loss stream untouched.
    fault_rng: StdRng,
    next_id: u64,
    /// topic -> subscriber ids.
    topics: HashMap<String, Vec<SubscriberId>>,
    /// subscriber -> pending deliveries ordered by delivery time.
    inboxes: BTreeMap<SubscriberId, VecDeque<Pending<P>>>,
    /// Subscribers currently offline (crashed nodes): publishes skip
    /// them entirely.
    offline: BTreeSet<SubscriberId>,
    /// Multiset of the delivery times of every pending message, maintained
    /// incrementally on publish/poll so the wave scheduler's
    /// [`Network::next_delivery_ms`] is an O(1) first-key read instead of
    /// an O(total-queued) scan over every inbox.
    pending_times: BTreeMap<u64, usize>,
    /// Topic name → interned id (index into `latency`).
    topic_ids: HashMap<String, u32>,
    /// Per-topic exact latency histogram (latency ms → unique deliveries),
    /// indexed by interned topic id.
    latency: Vec<BTreeMap<u64, u64>>,
    stats: NetStats,
}

impl<P> Inner<P> {
    fn note_scheduled(&mut self, deliver_at_ms: u64) {
        *self.pending_times.entry(deliver_at_ms).or_insert(0) += 1;
    }

    fn note_delivered(&mut self, deliver_at_ms: u64) {
        match self.pending_times.get_mut(&deliver_at_ms) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.pending_times.remove(&deliver_at_ms);
            }
            None => unreachable!("delivered a message that was never scheduled"),
        }
    }
}

/// What an active partition decided for one delivery.
enum PartitionGate {
    Pass,
    Drop,
    Hold(u64),
}

/// A simulated pub-sub network. Cloning yields another handle to the same
/// network (nodes share it).
#[derive(Debug, Clone)]
pub struct Network<P> {
    inner: Arc<Mutex<Inner<P>>>,
}

impl<P: Clone> Network<P> {
    /// Creates a network with the given delay/loss model and RNG seed.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        Network {
            inner: Arc::new(Mutex::new(Inner {
                config,
                rng: StdRng::seed_from_u64(seed),
                fault_rng: StdRng::seed_from_u64(seed ^ FAULT_RNG_DOMAIN),
                next_id: 0,
                topics: HashMap::new(),
                inboxes: BTreeMap::new(),
                offline: BTreeSet::new(),
                pending_times: BTreeMap::new(),
                topic_ids: HashMap::new(),
                latency: Vec::new(),
                stats: NetStats::default(),
            })),
        }
    }

    /// Subscribes a new endpoint to `topic`, returning its handle.
    pub fn subscribe(&self, topic: &str) -> SubscriberId {
        let mut inner = self.inner.lock();
        let id = SubscriberId(inner.next_id);
        inner.next_id += 1;
        inner.topics.entry(topic.to_owned()).or_default().push(id);
        inner.inboxes.insert(id, VecDeque::new());
        id
    }

    /// Adds an existing subscriber to another topic (nodes of a child
    /// subnet also follow their parent's topic, paper §II).
    pub fn join(&self, sub: SubscriberId, topic: &str) {
        let mut inner = self.inner.lock();
        let subs = inner.topics.entry(topic.to_owned()).or_default();
        if !subs.contains(&sub) {
            subs.push(sub);
        }
    }

    /// Publishes `payload` on `topic` at virtual time `now_ms`, scheduling
    /// a delivery per subscriber (minus losses). `exclude` suppresses the
    /// publisher's own copy. Returns the number of deliveries scheduled.
    ///
    /// The delivery's *origin* (used by origin-scoped fault rules) is
    /// taken from `exclude`; use [`Network::publish_from`] to state an
    /// origin without suppressing the publisher's own copy.
    pub fn publish(
        &self,
        topic: &str,
        payload: P,
        now_ms: u64,
        exclude: Option<SubscriberId>,
    ) -> usize {
        self.publish_from(topic, payload, now_ms, exclude, exclude)
    }

    /// [`Network::publish`] with an explicit origin: `origin` identifies
    /// the publishing subscriber for partition/loss rules that scope by
    /// sender, independent of whether its own copy is suppressed. The
    /// catch-up path of a rejoining node publishes on its own topic with
    /// `exclude: None` (it *wants* the self-delivered copy) but still
    /// states itself as origin so asymmetric faults can target it.
    pub fn publish_from(
        &self,
        topic: &str,
        payload: P,
        now_ms: u64,
        exclude: Option<SubscriberId>,
        origin: Option<SubscriberId>,
    ) -> usize {
        let mut inner = self.inner.lock();
        inner.stats.published += 1;
        let subs = inner.topics.get(topic).cloned().unwrap_or_default();
        let faulty = !inner.config.faults.is_none();
        let uniform = inner.config.regions.is_uniform();
        // Intern the topic for the per-topic latency histogram.
        let topic_id = match inner.topic_ids.get(topic).copied() {
            Some(id) => id,
            None => {
                let id = inner.latency.len() as u32;
                inner.topic_ids.insert(topic.to_owned(), id);
                inner.latency.push(BTreeMap::new());
                id
            }
        };
        // The origin's region, and the active region-scoped disaster rules
        // resolved against the map once per publish. Region names a rule
        // carries but the map never declared match nothing.
        let from_region = origin.map_or(0, |o| inner.config.regions.region_of(o));
        let mut outage_regions: Vec<usize> = Vec::new();
        let mut region_parts: Vec<(usize, usize, u64, PartitionPolicy)> = Vec::new();
        let mut degrades: Vec<(usize, usize, u64, f64)> = Vec::new();
        if faulty {
            for o in &inner.config.faults.region_outages {
                if o.active(now_ms) {
                    if let Some(i) = inner.config.regions.region_index(&o.region) {
                        outage_regions.push(i);
                    }
                }
            }
            for p in &inner.config.faults.region_partitions {
                if p.active(now_ms) {
                    if let (Some(a), Some(b)) = (
                        inner.config.regions.region_index(&p.a),
                        inner.config.regions.region_index(&p.b),
                    ) {
                        region_parts.push((a, b, p.heal_ms, p.policy));
                    }
                }
            }
            for d in &inner.config.faults.region_degrades {
                if d.from_ms <= now_ms && now_ms < d.until_ms {
                    if let (Some(f), Some(t)) = (
                        inner.config.regions.region_index(&d.from),
                        inner.config.regions.region_index(&d.to),
                    ) {
                        degrades.push((f, t, d.extra_delay_ms, d.loss_rate));
                    }
                }
            }
        }
        let mut scheduled = 0;
        for sub in subs {
            if Some(sub) == exclude {
                continue;
            }
            inner.stats.attempts += 1;
            let to_region = inner.config.regions.region_of(sub);
            // Offline (crashed) subscribers never receive publishes. The
            // check draws no randomness, so it is safe outside the fault
            // gate: crash tests work without an active `FaultPlan`.
            if inner.offline.contains(&sub) {
                inner.stats.offline_dropped += 1;
                continue;
            }
            let mut hold_until: Option<u64> = None;
            if faulty {
                // Named partitions: the first active partition severing
                // this (origin, dest) pair decides the delivery's fate.
                let gate = inner
                    .config
                    .faults
                    .partitions
                    .iter()
                    .find(|p| p.active(now_ms) && p.severs(topic, origin, sub))
                    .map(|p| match p.policy {
                        PartitionPolicy::Drop => PartitionGate::Drop,
                        PartitionPolicy::HoldUntilHeal => PartitionGate::Hold(p.heal_ms),
                    })
                    .unwrap_or(PartitionGate::Pass);
                match gate {
                    PartitionGate::Drop => {
                        inner.stats.partition_dropped += 1;
                        continue;
                    }
                    PartitionGate::Hold(heal_ms) => {
                        inner.stats.partition_held += 1;
                        hold_until = Some(heal_ms);
                    }
                    PartitionGate::Pass => {}
                }
                // Whole-region outage: anything to or from a dark region
                // is blackholed for the window (the crash–rejoin of the
                // region's nodes is driven separately by `hc-core`).
                if outage_regions
                    .iter()
                    .any(|&r| r == from_region || r == to_region)
                {
                    inner.stats.region_dropped += 1;
                    continue;
                }
                // Inter-region partition: the first active rule whose pair
                // this delivery crosses (either direction) decides.
                let crossed = region_parts
                    .iter()
                    .find(|(a, b, _, _)| {
                        (from_region == *a && to_region == *b)
                            || (from_region == *b && to_region == *a)
                    })
                    .map(|&(_, _, heal_ms, policy)| (heal_ms, policy));
                if let Some((heal_ms, policy)) = crossed {
                    match policy {
                        PartitionPolicy::Drop => {
                            inner.stats.region_dropped += 1;
                            continue;
                        }
                        PartitionPolicy::HoldUntilHeal => {
                            inner.stats.region_held += 1;
                            hold_until = Some(hold_until.map_or(heal_ms, |h| h.max(heal_ms)));
                        }
                    }
                }
                // Targeted/asymmetric loss.
                let loss_rates: Vec<f64> = inner
                    .config
                    .faults
                    .losses
                    .iter()
                    .filter(|r| r.matches(now_ms, topic, origin, sub))
                    .map(|r| r.rate)
                    .collect();
                let lost = loss_rates
                    .into_iter()
                    .any(|rate| rate > 0.0 && inner.fault_rng.gen_bool(rate.clamp(0.0, 1.0)));
                if lost {
                    inner.stats.targeted_dropped += 1;
                    continue;
                }
            }
            // Static inter-region link loss. Gated on the link actually
            // carrying loss, so uniform maps and identity links draw
            // nothing from the fault stream.
            let link = if uniform {
                crate::region::RegionLink::IDENTITY
            } else {
                inner.config.regions.link(from_region, to_region)
            };
            if link.loss_rate > 0.0 && inner.fault_rng.gen_bool(link.loss_rate.clamp(0.0, 1.0)) {
                inner.stats.region_lost += 1;
                continue;
            }
            // Base loss/delay model — drawn from the base stream in the
            // exact pre-chaos order.
            let drop_rate = inner.config.drop_rate;
            if drop_rate > 0.0 && inner.rng.gen_bool(drop_rate.clamp(0.0, 1.0)) {
                inner.stats.dropped += 1;
                continue;
            }
            let jitter_ms = inner.config.jitter_ms;
            let jitter = if jitter_ms > 0 {
                inner.rng.gen_range(0..=jitter_ms)
            } else {
                0
            };
            let mut deliver_at_ms = now_ms + inner.config.base_delay_ms + jitter;
            if !link.is_identity() {
                // The link's bandwidth factor scales the *base* portion
                // (a slow pipe stretches every transfer), then the pair's
                // fixed propagation delay and jitter stack on top. Region
                // jitter comes from the fault stream so the base stream
                // stays untouched.
                let scaled =
                    (inner.config.base_delay_ms + jitter) * u64::from(link.delay_factor_pct) / 100;
                let region_jitter = if link.jitter_ms > 0 {
                    inner.fault_rng.gen_range(0..=link.jitter_ms)
                } else {
                    0
                };
                deliver_at_ms = now_ms + scaled + link.extra_delay_ms + region_jitter;
            }
            if faulty && !degrades.is_empty() {
                // Degraded trans-oceanic links: every active matching rule
                // stacks its latency inflation; loss draws short-circuit.
                let mut extra = 0u64;
                let mut lost = false;
                for &(f, t, extra_delay_ms, rate) in &degrades {
                    if f == from_region && t == to_region {
                        if rate > 0.0 && inner.fault_rng.gen_bool(rate.clamp(0.0, 1.0)) {
                            lost = true;
                            break;
                        }
                        extra += extra_delay_ms;
                    }
                }
                if lost {
                    inner.stats.region_lost += 1;
                    continue;
                }
                deliver_at_ms += extra;
            }
            if faulty {
                // Adversarial reordering: inflate the delay within the
                // rule's window so later publishes can overtake this one.
                let reorder = inner
                    .config
                    .faults
                    .reorders
                    .iter()
                    .find(|r| r.matches(now_ms, topic))
                    .map(|r| (r.rate, r.max_extra_delay_ms));
                if let Some((rate, max_extra)) = reorder {
                    if rate > 0.0 && inner.fault_rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        deliver_at_ms += inner.fault_rng.gen_range(1..=max_extra.max(1));
                        inner.stats.reordered += 1;
                    }
                }
                if let Some(heal_ms) = hold_until {
                    deliver_at_ms = deliver_at_ms.max(heal_ms);
                }
            }
            inner
                .inboxes
                .get_mut(&sub)
                .expect("subscriber has inbox")
                .push_back(Pending {
                    deliver_at_ms,
                    sent_at_ms: now_ms,
                    topic: topic_id,
                    payload: payload.clone(),
                    duplicate: false,
                });
            inner.note_scheduled(deliver_at_ms);
            inner.stats.scheduled += 1;
            scheduled += 1;
            if faulty {
                // Bounded duplication: extra flagged copies, each with
                // its own spread so copies interleave with other traffic.
                let dup = inner
                    .config
                    .faults
                    .duplications
                    .iter()
                    .find(|r| r.matches(now_ms, topic))
                    .map(|r| (r.rate, r.max_copies, r.spread_ms));
                if let Some((rate, max_copies, spread_ms)) = dup {
                    if rate > 0.0 && inner.fault_rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        let copies = inner.fault_rng.gen_range(1..=max_copies.max(1));
                        for _ in 0..copies {
                            let extra = if spread_ms > 0 {
                                inner.fault_rng.gen_range(0..=spread_ms)
                            } else {
                                0
                            };
                            let mut copy_at = deliver_at_ms + extra;
                            if let Some(heal_ms) = hold_until {
                                copy_at = copy_at.max(heal_ms);
                            }
                            inner
                                .inboxes
                                .get_mut(&sub)
                                .expect("subscriber has inbox")
                                .push_back(Pending {
                                    deliver_at_ms: copy_at,
                                    sent_at_ms: now_ms,
                                    topic: topic_id,
                                    payload: payload.clone(),
                                    duplicate: true,
                                });
                            inner.note_scheduled(copy_at);
                            inner.stats.duplicated += 1;
                        }
                    }
                }
            }
        }
        scheduled
    }

    /// Returns the messages for `sub` whose delivery time has passed.
    pub fn poll(&self, sub: SubscriberId, now_ms: u64) -> Vec<P> {
        let mut inner = self.inner.lock();
        let Some(inbox) = inner.inboxes.get_mut(&sub) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut taken_times = Vec::new();
        let mut measured = Vec::new();
        let mut redelivered = 0u64;
        let mut remaining = VecDeque::with_capacity(inbox.len());
        while let Some(p) = inbox.pop_front() {
            if p.deliver_at_ms <= now_ms {
                taken_times.push(p.deliver_at_ms);
                if p.duplicate {
                    redelivered += 1;
                } else {
                    measured.push((p.topic, p.deliver_at_ms - p.sent_at_ms));
                }
                out.push(p.payload);
            } else {
                remaining.push_back(p);
            }
        }
        *inbox = remaining;
        for t in taken_times {
            inner.note_delivered(t);
        }
        for (topic, latency_ms) in measured {
            *inner.latency[topic as usize].entry(latency_ms).or_insert(0) += 1;
        }
        inner.stats.delivered += out.len() as u64 - redelivered;
        inner.stats.redelivered += redelivered;
        out
    }

    /// Marks a subscriber offline (crashed) or back online. Publishes
    /// skip offline subscribers entirely (counted in
    /// [`NetStats::offline_dropped`]); already-queued deliveries stay
    /// queued unless [`Network::clear_inbox`] discards them.
    pub fn set_offline(&self, sub: SubscriberId, offline: bool) {
        let mut inner = self.inner.lock();
        if offline {
            inner.offline.insert(sub);
        } else {
            inner.offline.remove(&sub);
        }
    }

    /// Discards every pending delivery of `sub` (a crashed node loses
    /// its in-flight inbox). Returns the number of discarded deliveries.
    pub fn clear_inbox(&self, sub: SubscriberId) -> usize {
        let mut inner = self.inner.lock();
        let Some(inbox) = inner.inboxes.get_mut(&sub) else {
            return 0;
        };
        let times: Vec<u64> = std::mem::take(inbox)
            .into_iter()
            .map(|p| p.deliver_at_ms)
            .collect();
        for t in &times {
            inner.note_delivered(*t);
        }
        inner.stats.offline_cleared += times.len() as u64;
        times.len()
    }

    /// Merges additional fault rules into the live plan (tests learn
    /// subscriber ids only after building the network).
    pub fn extend_faults(&self, plan: FaultPlan) {
        self.inner.lock().config.faults.merge(plan);
    }

    /// The currently scheduled fault plan.
    pub fn fault_plan(&self) -> FaultPlan {
        self.inner.lock().config.faults.clone()
    }

    /// Earliest pending delivery time across all subscribers, if any — the
    /// simulator uses this to advance virtual time without busy-waiting.
    /// Reads the incrementally maintained delivery-time multiset, so the
    /// cost is O(1) rather than a scan of every queued message.
    pub fn next_delivery_ms(&self) -> Option<u64> {
        let inner = self.inner.lock();
        inner.pending_times.keys().next().copied()
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats
    }

    /// Places a subscriber in a named region of the live map (declaring
    /// the region if needed). Runtimes call this at boot, after
    /// subscribing each node.
    pub fn place_in_region(&self, sub: SubscriberId, region: &str) {
        self.inner.lock().config.regions.place(sub, region);
    }

    /// A snapshot of the live region map.
    pub fn region_map(&self) -> RegionMap {
        self.inner.lock().config.regions.clone()
    }

    /// The region name a subscriber is placed in.
    pub fn region_name_of(&self, sub: SubscriberId) -> String {
        let inner = self.inner.lock();
        inner.config.regions.region_name_of(sub).to_owned()
    }

    /// Delivered-latency summary for `topic` (p50/p99/max over every
    /// unique delivery polled so far), or `None` before the first one.
    pub fn topic_latency(&self, topic: &str) -> Option<TopicLatency> {
        let inner = self.inner.lock();
        let id = *inner.topic_ids.get(topic)?;
        let hist = &inner.latency[id as usize];
        let count: u64 = hist.values().sum();
        if count == 0 {
            return None;
        }
        let quantile = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (&lat, &c) in hist {
                seen += c;
                if seen >= rank {
                    return lat;
                }
            }
            *hist.keys().next_back().expect("non-empty histogram")
        };
        Some(TopicLatency {
            count,
            p50_ms: quantile(0.50),
            p99_ms: quantile(0.99),
            max_ms: *hist.keys().next_back().expect("non-empty histogram"),
        })
    }

    /// Deliveries scheduled but not yet polled (nor cleared), across all
    /// subscribers — the remainder term of the [`NetStats`] ledger.
    pub fn pending_deliveries(&self) -> u64 {
        let inner = self.inner.lock();
        inner.pending_times.values().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DupRule, LossRule, Partition, ReorderRule};

    fn net(drop_rate: f64) -> Network<&'static str> {
        Network::new(
            NetConfig {
                base_delay_ms: 100,
                jitter_ms: 0,
                drop_rate,
                ..NetConfig::default()
            },
            7,
        )
    }

    #[test]
    fn delivery_respects_virtual_time() {
        let n = net(0.0);
        let a = n.subscribe("/root/msgs");
        assert_eq!(n.publish("/root/msgs", "hello", 0, None), 1);
        // Too early.
        assert!(n.poll(a, 99).is_empty());
        assert_eq!(n.poll(a, 100), vec!["hello"]);
        // Consumed.
        assert!(n.poll(a, 200).is_empty());
    }

    #[test]
    fn all_topic_subscribers_receive_except_excluded() {
        let n = net(0.0);
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        let c = n.subscribe("other");
        assert_eq!(n.publish("t", "x", 0, Some(a)), 1);
        assert!(n.poll(a, 1_000).is_empty());
        assert_eq!(n.poll(b, 1_000), vec!["x"]);
        assert!(n.poll(c, 1_000).is_empty());
    }

    #[test]
    fn join_adds_existing_subscriber_to_topic() {
        let n = net(0.0);
        let a = n.subscribe("child");
        n.join(a, "parent");
        n.join(a, "parent"); // idempotent
        n.publish("parent", "p", 0, None);
        assert_eq!(n.poll(a, 1_000), vec!["p"]);
    }

    #[test]
    fn losses_are_counted() {
        let n = net(1.0);
        let a = n.subscribe("t");
        assert_eq!(n.publish("t", "x", 0, None), 0);
        assert!(n.poll(a, 10_000).is_empty());
        let stats = n.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn publishing_to_unknown_topic_is_a_noop() {
        let n = net(0.0);
        assert_eq!(n.publish("nobody", "x", 0, None), 0);
    }

    #[test]
    fn next_delivery_tracks_earliest_pending() {
        let n = net(0.0);
        let _a = n.subscribe("t");
        assert_eq!(n.next_delivery_ms(), None);
        n.publish("t", "x", 500, None);
        n.publish("t", "y", 0, None);
        assert_eq!(n.next_delivery_ms(), Some(100));
    }

    #[test]
    fn next_delivery_stays_consistent_across_poll() {
        let n = net(0.0);
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        // Same delivery time for two subscribers: polling one of them must
        // not clear the other's pending slot from the multiset.
        n.publish("t", "x", 0, None); // due at 100 for both a and b
        n.publish("t", "y", 400, None); // due at 500 for both
        assert_eq!(n.next_delivery_ms(), Some(100));
        assert_eq!(n.poll(a, 100), vec!["x"]);
        assert_eq!(n.next_delivery_ms(), Some(100)); // b's copy still queued
        assert_eq!(n.poll(b, 100), vec!["x"]);
        assert_eq!(n.next_delivery_ms(), Some(500));
        n.poll(a, 10_000);
        n.poll(b, 10_000);
        assert_eq!(n.next_delivery_ms(), None);
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            let n: Network<u32> = Network::new(
                NetConfig {
                    base_delay_ms: 10,
                    jitter_ms: 50,
                    drop_rate: 0.3,
                    ..NetConfig::default()
                },
                1234,
            );
            let a = n.subscribe("t");
            for i in 0..50 {
                n.publish("t", i, i as u64 * 10, None);
            }
            n.poll(a, 10_000)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn empty_fault_plan_matches_faultless_stream() {
        // A plan whose rules exist but never match must still leave the
        // base stream identical: fault draws come from the fault stream.
        let run = |faults: FaultPlan| {
            let n: Network<u32> = Network::new(
                NetConfig {
                    base_delay_ms: 10,
                    jitter_ms: 50,
                    drop_rate: 0.3,
                    faults,
                    ..NetConfig::default()
                },
                99,
            );
            let a = n.subscribe("t");
            for i in 0..100 {
                n.publish("t", i, i as u64 * 7, None);
            }
            n.poll(a, 100_000)
        };
        let mut inert = FaultPlan::none();
        inert.losses.push(LossRule {
            from_ms: 1_000_000, // never active
            until_ms: u64::MAX,
            topic: None,
            from: None,
            to: None,
            rate: 1.0,
        });
        assert_eq!(run(FaultPlan::none()), run(inert));
    }

    #[test]
    fn drop_partition_severs_topic_until_heal() {
        let n = net(0.0);
        let a = n.subscribe("t");
        n.extend_faults(FaultPlan {
            partitions: vec![Partition {
                name: "blackout".into(),
                from_ms: 0,
                heal_ms: 1_000,
                topics: vec!["t".into()],
                subscribers: Vec::new(),
                policy: PartitionPolicy::Drop,
            }],
            ..FaultPlan::none()
        });
        assert_eq!(n.publish("t", "lost", 500, None), 0);
        // After heal, traffic flows again.
        assert_eq!(n.publish("t", "ok", 1_000, None), 1);
        assert_eq!(n.poll(a, 2_000), vec!["ok"]);
        let stats = n.stats();
        assert_eq!(stats.partition_dropped, 1);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn hold_partition_defers_delivery_to_heal_time() {
        let n = net(0.0);
        let a = n.subscribe("t");
        n.extend_faults(FaultPlan {
            partitions: vec![Partition {
                name: "queueing".into(),
                from_ms: 0,
                heal_ms: 5_000,
                topics: vec!["t".into()],
                subscribers: Vec::new(),
                policy: PartitionPolicy::HoldUntilHeal,
            }],
            ..FaultPlan::none()
        });
        n.publish("t", "held", 0, None);
        // Normal delivery time passed, but the partition holds it.
        assert!(n.poll(a, 4_999).is_empty());
        assert_eq!(n.next_delivery_ms(), Some(5_000));
        assert_eq!(n.poll(a, 5_000), vec!["held"]);
        assert_eq!(n.stats().partition_held, 1);
    }

    #[test]
    fn targeted_loss_hits_only_selected_destination() {
        let n = net(0.0);
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        n.extend_faults(FaultPlan {
            losses: vec![LossRule {
                from_ms: 0,
                until_ms: u64::MAX,
                topic: None,
                from: None,
                to: Some(a),
                rate: 1.0,
            }],
            ..FaultPlan::none()
        });
        assert_eq!(n.publish("t", "x", 0, None), 1);
        assert!(n.poll(a, 1_000).is_empty());
        assert_eq!(n.poll(b, 1_000), vec!["x"]);
        assert_eq!(n.stats().targeted_dropped, 1);
    }

    #[test]
    fn asymmetric_loss_requires_matching_origin() {
        let n = net(0.0);
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        n.extend_faults(FaultPlan {
            losses: vec![LossRule {
                from_ms: 0,
                until_ms: u64::MAX,
                topic: None,
                from: Some(a),
                to: None,
                rate: 1.0,
            }],
            ..FaultPlan::none()
        });
        // Published *by* a: lost.
        assert_eq!(n.publish_from("t", "from-a", 0, Some(a), Some(a)), 0);
        // Published by an unknown origin: the asymmetric rule does not
        // match, traffic flows.
        assert_eq!(n.publish("t", "anon", 0, None), 2);
        assert_eq!(n.poll(b, 1_000), vec!["anon"]);
        let _ = n.poll(a, 1_000);
    }

    #[test]
    fn duplication_is_bounded_flagged_and_not_double_counted() {
        let n: Network<u32> = Network::new(
            NetConfig {
                base_delay_ms: 100,
                jitter_ms: 0,
                ..NetConfig::default()
            },
            7,
        );
        let a = n.subscribe("t");
        n.extend_faults(FaultPlan {
            duplications: vec![DupRule {
                from_ms: 0,
                until_ms: u64::MAX,
                topic: Some("t".into()),
                rate: 1.0,
                max_copies: 3,
                spread_ms: 40,
            }],
            ..FaultPlan::none()
        });
        for i in 0..20u32 {
            n.publish("t", i, u64::from(i) * 10, None);
        }
        let got = n.poll(a, 100_000);
        let stats = n.stats();
        // Every original arrived exactly once in `delivered`; every extra
        // copy is accounted separately.
        assert_eq!(stats.delivered, 20);
        assert!(stats.duplicated >= 20); // rate 1.0: at least one copy each
        assert!(stats.duplicated <= 60); // bounded by max_copies
        assert_eq!(stats.redelivered, stats.duplicated);
        assert_eq!(got.len() as u64, stats.delivered + stats.redelivered);
    }

    #[test]
    fn reordering_inflates_delay_within_window() {
        let n = net(0.0);
        let a = n.subscribe("t");
        n.extend_faults(FaultPlan {
            reorders: vec![ReorderRule {
                from_ms: 0,
                until_ms: u64::MAX,
                topic: None,
                rate: 1.0,
                max_extra_delay_ms: 500,
            }],
            ..FaultPlan::none()
        });
        n.publish("t", "slow", 0, None);
        // Base delay is 100; the reorder rule adds at least 1ms.
        assert!(n.poll(a, 100).is_empty());
        let got = n.poll(a, 1_000);
        assert_eq!(got, vec!["slow"]);
        assert_eq!(n.stats().reordered, 1);
    }

    #[test]
    fn offline_subscribers_are_skipped_and_inboxes_clearable() {
        let n = net(0.0);
        let a = n.subscribe("t");
        // Offline handling works even without an active fault plan, so
        // direct crash/rejoin driving does not require one.
        n.publish("t", "queued", 0, None);
        n.set_offline(a, true);
        assert_eq!(n.publish("t", "skipped", 0, None), 0);
        assert_eq!(n.clear_inbox(a), 1);
        assert_eq!(n.next_delivery_ms(), None);
        n.set_offline(a, false);
        n.publish("t", "back", 200, None);
        assert_eq!(n.poll(a, 1_000), vec!["back"]);
        let stats = n.stats();
        assert_eq!(stats.offline_dropped, 1);
        assert_eq!(stats.offline_cleared, 1);
    }

    #[test]
    fn placed_but_linkless_region_map_is_bit_identical() {
        // Placing subscribers in regions without any non-identity link
        // must not perturb a single delivery time: the map is still
        // behaviourally uniform and draws nothing.
        let run = |place: bool| {
            let mut config = NetConfig {
                base_delay_ms: 10,
                jitter_ms: 50,
                drop_rate: 0.3,
                ..NetConfig::default()
            };
            if place {
                config.regions = RegionMap::named(&["us-east", "eu-west"]);
            }
            let n: Network<u32> = Network::new(config, 4242);
            let a = n.subscribe("t");
            if place {
                n.place_in_region(a, "eu-west");
            }
            for i in 0..100 {
                n.publish("t", i, u64::from(i) * 7, None);
            }
            n.poll(a, 1_000_000)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn region_links_shape_delay_asymmetrically() {
        let mut regions = RegionMap::named(&["us", "eu"]);
        regions.set_link(
            "us",
            "eu",
            crate::region::RegionLink {
                extra_delay_ms: 70,
                jitter_ms: 0,
                loss_rate: 0.0,
                delay_factor_pct: 200,
            },
        );
        let n: Network<&'static str> = Network::new(
            NetConfig {
                base_delay_ms: 100,
                jitter_ms: 0,
                drop_rate: 0.0,
                regions,
                ..NetConfig::default()
            },
            7,
        );
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        n.place_in_region(a, "us");
        n.place_in_region(b, "eu");
        // us → eu: base 100 scaled ×2 plus 70 propagation = 270.
        n.publish_from("t", "east", 0, Some(a), Some(a));
        assert!(n.poll(b, 269).is_empty());
        assert_eq!(n.poll(b, 270), vec!["east"]);
        // eu → us was never configured: plain base delay.
        n.publish_from("t", "west", 1_000, Some(b), Some(b));
        assert_eq!(n.poll(a, 1_100), vec!["west"]);
        // Same-region traffic is untouched too.
        let a2 = n.subscribe("t");
        n.place_in_region(a2, "us");
        n.publish_from("t", "local", 2_000, Some(a), Some(a));
        assert_eq!(n.poll(a2, 2_100), vec!["local"]);
    }

    #[test]
    fn region_link_loss_is_counted_and_ledger_balances() {
        let mut regions = RegionMap::named(&["us", "eu"]);
        regions.set_link(
            "us",
            "eu",
            crate::region::RegionLink {
                loss_rate: 1.0,
                ..crate::region::RegionLink::IDENTITY
            },
        );
        let n: Network<u32> = Network::new(
            NetConfig {
                base_delay_ms: 100,
                jitter_ms: 0,
                drop_rate: 0.0,
                regions,
                ..NetConfig::default()
            },
            7,
        );
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        n.place_in_region(a, "us");
        n.place_in_region(b, "eu");
        // a → b crosses the lossy pair; a's own copy is excluded.
        assert_eq!(n.publish_from("t", 1, 0, Some(a), Some(a)), 0);
        // b → a flows: loss is directional.
        assert_eq!(n.publish_from("t", 2, 0, Some(b), Some(b)), 1);
        assert_eq!(n.poll(a, 1_000), vec![2]);
        assert!(n.poll(b, 1_000).is_empty());
        let stats = n.stats();
        assert_eq!(stats.region_lost, 1);
        assert_eq!(
            stats.attempts,
            stats.scheduled
                + stats.dropped
                + stats.partition_dropped
                + stats.targeted_dropped
                + stats.offline_dropped
                + stats.region_dropped
                + stats.region_lost
        );
    }

    #[test]
    fn region_outage_blackholes_both_directions_until_heal() {
        use crate::fault::RegionOutage;
        let regions = RegionMap::named(&["us", "ap"]);
        let n: Network<&'static str> = Network::new(
            NetConfig {
                base_delay_ms: 100,
                jitter_ms: 0,
                drop_rate: 0.0,
                regions,
                ..NetConfig::default()
            },
            7,
        );
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        n.place_in_region(a, "us");
        n.place_in_region(b, "ap");
        n.extend_faults(FaultPlan {
            region_outages: vec![RegionOutage {
                region: "ap".into(),
                from_ms: 0,
                heal_ms: 1_000,
            }],
            ..FaultPlan::none()
        });
        // Into the dark region: blackholed.
        assert_eq!(n.publish_from("t", "in", 0, Some(a), Some(a)), 0);
        // Out of the dark region: blackholed too.
        assert_eq!(n.publish_from("t", "out", 0, Some(b), Some(b)), 0);
        // After heal, both directions flow.
        assert_eq!(n.publish_from("t", "healed", 1_000, Some(a), Some(a)), 1);
        assert_eq!(n.poll(b, 2_000), vec!["healed"]);
        assert_eq!(n.stats().region_dropped, 2);
    }

    #[test]
    fn region_partition_severs_or_holds_cross_pair_traffic() {
        use crate::fault::RegionPartition;
        let regions = RegionMap::named(&["us", "eu", "ap"]);
        let n: Network<&'static str> = Network::new(
            NetConfig {
                base_delay_ms: 100,
                jitter_ms: 0,
                drop_rate: 0.0,
                regions,
                ..NetConfig::default()
            },
            7,
        );
        let us = n.subscribe("t");
        let eu = n.subscribe("t");
        let ap = n.subscribe("t");
        n.place_in_region(us, "us");
        n.place_in_region(eu, "eu");
        n.place_in_region(ap, "ap");
        n.extend_faults(FaultPlan {
            region_partitions: vec![RegionPartition {
                name: "atlantic".into(),
                a: "us".into(),
                b: "eu".into(),
                from_ms: 0,
                heal_ms: 5_000,
                policy: PartitionPolicy::HoldUntilHeal,
            }],
            ..FaultPlan::none()
        });
        // us → {eu held, ap flows}.
        assert_eq!(n.publish_from("t", "x", 0, Some(us), Some(us)), 2);
        assert_eq!(n.poll(ap, 4_999), vec!["x"]);
        assert!(n.poll(eu, 4_999).is_empty());
        assert_eq!(n.poll(eu, 5_000), vec!["x"]);
        let stats = n.stats();
        assert_eq!(stats.region_held, 1);
        assert_eq!(stats.region_dropped, 0);
    }

    #[test]
    fn degraded_links_inflate_latency_and_count_losses() {
        use crate::fault::RegionDegrade;
        let regions = RegionMap::named(&["us", "eu"]);
        let n: Network<&'static str> = Network::new(
            NetConfig {
                base_delay_ms: 100,
                jitter_ms: 0,
                drop_rate: 0.0,
                regions,
                ..NetConfig::default()
            },
            7,
        );
        let a = n.subscribe("t");
        let b = n.subscribe("t");
        n.place_in_region(a, "us");
        n.place_in_region(b, "eu");
        n.extend_faults(FaultPlan {
            region_degrades: vec![
                RegionDegrade {
                    from: "us".into(),
                    to: "eu".into(),
                    from_ms: 0,
                    until_ms: 1_000,
                    extra_delay_ms: 400,
                    loss_rate: 0.0,
                },
                RegionDegrade {
                    from: "eu".into(),
                    to: "us".into(),
                    from_ms: 0,
                    until_ms: 1_000,
                    extra_delay_ms: 0,
                    loss_rate: 1.0,
                },
            ],
            ..FaultPlan::none()
        });
        // us → eu: inflated by 400ms while degraded.
        n.publish_from("t", "slow", 0, Some(a), Some(a));
        assert!(n.poll(b, 499).is_empty());
        assert_eq!(n.poll(b, 500), vec!["slow"]);
        // eu → us: fully lossy while degraded.
        assert_eq!(n.publish_from("t", "gone", 0, Some(b), Some(b)), 0);
        assert_eq!(n.stats().region_lost, 1);
        // Window over: both directions back to base behaviour.
        n.publish_from("t", "fast", 1_000, Some(a), Some(a));
        assert_eq!(n.poll(b, 1_100), vec!["fast"]);
    }

    #[test]
    fn topic_latency_reports_exact_quantiles() {
        let n = net(0.0);
        let a = n.subscribe("t");
        let _ = a;
        assert_eq!(n.topic_latency("t"), None);
        // Base delay 100, no jitter: every delivery takes exactly 100ms
        // regardless of when it is polled.
        for i in 0..10u64 {
            n.publish("t", "m", i * 50, None);
        }
        n.poll(a, 1_000_000);
        let lat = n.topic_latency("t").expect("measured");
        assert_eq!(lat.count, 10);
        assert_eq!(lat.p50_ms, 100);
        assert_eq!(lat.p99_ms, 100);
        assert_eq!(lat.max_ms, 100);
        assert_eq!(n.topic_latency("unknown"), None);
        assert_eq!(n.pending_deliveries(), 0);
    }
}
