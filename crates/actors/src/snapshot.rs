//! State snapshots and fund recovery (paper §III-C).
//!
//! "A subnet may be killed while it is still holding user funds or useful
//! state. […] the SCA includes a *save* function that allows any
//! participant in the subnet to persist the state. Through this persisted
//! state and the checkpoints committed by the subnet, users are able to
//! provide proof of pending funds held in the subnet […] to be migrated
//! back to the parent."
//!
//! A [`StateSnapshot`] commits to a subnet's balance table with a Merkle
//! root. It is persisted in the *parent's* SCA (so it survives the child),
//! gated by the child's Subnet Actor signature policy. After the child is
//! killed, a user presents a [`BalanceProof`] against the latest snapshot
//! to recover their balance from the parent's escrow — still subject to
//! the firewall bound (total recoveries never exceed the child's
//! circulating supply).

use serde::{Deserialize, Serialize};

use hc_types::merkle::{MerkleProof, MerkleTree};
use hc_types::{decode_fields, encode_fields, Address, ChainEpoch, Cid, SubnetId, TokenAmount};

/// One balance entry committed by a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BalanceLeaf {
    /// The account.
    pub addr: Address,
    /// Its balance at the snapshot epoch.
    pub amount: TokenAmount,
}

encode_fields!(BalanceLeaf { addr, amount });
decode_fields!(BalanceLeaf { addr, amount });

/// A committed snapshot of a subnet's balance table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSnapshot {
    /// The snapshotted subnet.
    pub subnet: SubnetId,
    /// Epoch (of the subnet chain) the snapshot was taken at.
    pub epoch: ChainEpoch,
    /// Merkle root over the sorted [`BalanceLeaf`] entries.
    pub balances_root: Cid,
    /// Number of accounts committed.
    pub accounts: u64,
    /// Sum of all committed balances.
    pub total: TokenAmount,
}

encode_fields!(StateSnapshot {
    subnet,
    epoch,
    balances_root,
    accounts,
    total
});
decode_fields!(StateSnapshot {
    subnet,
    epoch,
    balances_root,
    accounts,
    total
});

impl StateSnapshot {
    /// Builds a snapshot (and its proof-capable tree) from a balance
    /// table. Leaves are sorted by address so the commitment is canonical.
    pub fn build<I>(subnet: SubnetId, epoch: ChainEpoch, balances: I) -> (Self, SnapshotTree)
    where
        I: IntoIterator<Item = (Address, TokenAmount)>,
    {
        let mut leaves: Vec<BalanceLeaf> = balances
            .into_iter()
            .map(|(addr, amount)| BalanceLeaf { addr, amount })
            .collect();
        leaves.sort_by_key(|l| l.addr);
        let tree = MerkleTree::from_items(&leaves);
        let snapshot = StateSnapshot {
            subnet,
            epoch,
            balances_root: tree.root(),
            accounts: leaves.len() as u64,
            total: leaves.iter().map(|l| l.amount).sum(),
        };
        (snapshot, SnapshotTree { leaves, tree })
    }
}

/// The prover side of a snapshot: the full leaf set plus the Merkle tree,
/// kept by subnet participants to mint [`BalanceProof`]s later.
#[derive(Debug, Clone)]
pub struct SnapshotTree {
    leaves: Vec<BalanceLeaf>,
    tree: MerkleTree,
}

impl SnapshotTree {
    /// Produces the recovery proof for `addr`, or `None` if the address
    /// holds no committed balance.
    pub fn prove(&self, addr: Address) -> Option<BalanceProof> {
        let idx = self.leaves.iter().position(|l| l.addr == addr)?;
        Some(BalanceProof {
            leaf: self.leaves[idx].clone(),
            proof: self.tree.prove(idx).expect("index in range"),
        })
    }

    /// The committed leaves, sorted by address.
    pub fn leaves(&self) -> &[BalanceLeaf] {
        &self.leaves
    }
}

/// A Merkle proof that an address held a balance in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BalanceProof {
    /// The claimed leaf.
    pub leaf: BalanceLeaf,
    /// Membership proof against [`StateSnapshot::balances_root`].
    pub proof: MerkleProof,
}

encode_fields!(BalanceProof { leaf, proof });
decode_fields!(BalanceProof { leaf, proof });

impl BalanceProof {
    /// Verifies the proof against a snapshot.
    pub fn verify(&self, snapshot: &StateSnapshot) -> bool {
        self.proof.verify(&self.leaf, snapshot.balances_root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> (StateSnapshot, SnapshotTree) {
        StateSnapshot::build(
            SubnetId::root().child(Address::new(200)),
            ChainEpoch::new(42),
            [
                (Address::new(300), TokenAmount::from_whole(5)),
                (Address::new(100), TokenAmount::from_whole(7)),
                (Address::new(200), TokenAmount::from_whole(1)),
            ],
        )
    }

    #[test]
    fn build_is_canonical_regardless_of_input_order() {
        let (a, _) = snapshot();
        let (b, _) = StateSnapshot::build(
            SubnetId::root().child(Address::new(200)),
            ChainEpoch::new(42),
            [
                (Address::new(100), TokenAmount::from_whole(7)),
                (Address::new(200), TokenAmount::from_whole(1)),
                (Address::new(300), TokenAmount::from_whole(5)),
            ],
        );
        assert_eq!(a, b);
        assert_eq!(a.total, TokenAmount::from_whole(13));
        assert_eq!(a.accounts, 3);
    }

    #[test]
    fn proofs_verify_and_reject_tampering() {
        let (snap, tree) = snapshot();
        let proof = tree.prove(Address::new(100)).unwrap();
        assert!(proof.verify(&snap));

        // Inflating the claimed amount breaks the proof.
        let mut inflated = proof.clone();
        inflated.leaf.amount = TokenAmount::from_whole(700);
        assert!(!inflated.verify(&snap));

        // A proof does not transfer to another address.
        let mut stolen = proof;
        stolen.leaf.addr = Address::new(999);
        assert!(!stolen.verify(&snap));

        // Unknown addresses have no proof.
        assert!(tree.prove(Address::new(555)).is_none());
    }

    #[test]
    fn proof_against_wrong_snapshot_fails() {
        let (_, tree) = snapshot();
        let (other, _) = StateSnapshot::build(
            SubnetId::root().child(Address::new(200)),
            ChainEpoch::new(43),
            [(Address::new(100), TokenAmount::from_whole(999))],
        );
        let proof = tree.prove(Address::new(100)).unwrap();
        assert!(!proof.verify(&other));
    }
}
