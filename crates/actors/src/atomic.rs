//! Cross-net atomic execution (paper §IV-D).
//!
//! An atomic execution lets users in different subnets compute a state
//! change over inputs from all of their subnets such that either every
//! subnet incorporates the output or none does. The protocol "resembles a
//! two-phase commit protocol with the SCA of the least common
//! ancestor/parent serving as a coordinator":
//!
//! 1. **Initialization** — users agree off-chain, lock their input state in
//!    their own subnets, and register the execution with the coordinator
//!    ([`AtomicExecRegistry::init`]).
//! 2. **Off-chain execution** — every user fetches the other locked inputs
//!    (by CID) and computes the output locally.
//! 3. **Commit** — each user submits the CID of its computed output to the
//!    coordinator ([`AtomicExecRegistry::submit_output`]). When all parties
//!    have submitted *matching* outputs the execution is `Committed`.
//! 4. **Termination** — subnets watching the coordinator incorporate the
//!    output and unlock inputs on commit, or revert on abort. Any party may
//!    abort while the execution is pending
//!    ([`AtomicExecRegistry::abort`]); aborts after commit are ignored.
//!
//! The registry is the coordinator's state; it lives inside the SCA of the
//! execution subnet (usually the least common ancestor of the parties).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use hc_types::decode::{ByteReader, CanonicalDecode, DecodeError};
use hc_types::{decode_fields, encode_fields, CanonicalEncode, ChainEpoch, Cid};

use crate::msg::HcAddress;

/// Identifier of an atomic execution: the CID of its initialization record
/// (parties + locked inputs + initiation epoch), making IDs unforgeable and
/// deterministic.
pub type ExecId = Cid;

/// Lifecycle of an atomic execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomicExecStatus {
    /// Initialized; waiting for output submissions.
    Pending,
    /// All parties submitted matching outputs: subnets may incorporate the
    /// output state and unlock inputs.
    Committed,
    /// A party aborted (or submissions conflicted, or the execution timed
    /// out): subnets revert and unlock inputs unchanged.
    Aborted,
}

impl fmt::Display for AtomicExecStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomicExecStatus::Pending => "pending",
            AtomicExecStatus::Committed => "committed",
            AtomicExecStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// One atomic execution tracked by the coordinator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicExecution {
    /// The parties involved, each identified by subnet + address.
    pub parties: Vec<HcAddress>,
    /// CID of each party's locked input state.
    pub inputs: Vec<Cid>,
    /// Output CIDs submitted so far, per party.
    pub submitted: BTreeMap<HcAddress, Cid>,
    /// Current status.
    pub status: AtomicExecStatus,
    /// Epoch (of the coordinator chain) at initialization, for timeouts.
    pub initiated_at: ChainEpoch,
}

impl AtomicExecution {
    /// Returns `true` once every party has submitted an output.
    pub fn all_submitted(&self) -> bool {
        self.submitted.len() == self.parties.len()
    }
}

impl CanonicalEncode for AtomicExecStatus {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            AtomicExecStatus::Pending => 0,
            AtomicExecStatus::Committed => 1,
            AtomicExecStatus::Aborted => 2,
        };
        tag.write_bytes(out);
    }
}

impl CanonicalDecode for AtomicExecStatus {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::read_bytes(r)? {
            0 => Ok(AtomicExecStatus::Pending),
            1 => Ok(AtomicExecStatus::Committed),
            2 => Ok(AtomicExecStatus::Aborted),
            tag => Err(DecodeError::BadTag {
                what: "AtomicExecStatus",
                tag,
            }),
        }
    }
}

encode_fields!(AtomicExecution {
    parties,
    inputs,
    submitted,
    status,
    initiated_at,
});
decode_fields!(AtomicExecution {
    parties,
    inputs,
    submitted,
    status,
    initiated_at,
});

/// Errors returned by the atomic execution coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicError {
    /// Executions need at least two distinct parties.
    TooFewParties,
    /// Party list contains duplicates.
    DuplicateParty(HcAddress),
    /// Every party must lock exactly one input.
    InputArityMismatch,
    /// An execution with this ID already exists.
    AlreadyExists(ExecId),
    /// No execution with this ID.
    NotFound(ExecId),
    /// The sender is not a party of the execution.
    NotAParty(HcAddress),
    /// The party already submitted an output.
    AlreadySubmitted(HcAddress),
    /// The execution already terminated with this status.
    AlreadyTerminated(AtomicExecStatus),
}

impl fmt::Display for AtomicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicError::TooFewParties => f.write_str("atomic execution needs >= 2 parties"),
            AtomicError::DuplicateParty(p) => write!(f, "duplicate party {p}"),
            AtomicError::InputArityMismatch => {
                f.write_str("number of inputs must match number of parties")
            }
            AtomicError::AlreadyExists(id) => write!(f, "execution {id} already exists"),
            AtomicError::NotFound(id) => write!(f, "execution {id} not found"),
            AtomicError::NotAParty(p) => write!(f, "{p} is not a party of the execution"),
            AtomicError::AlreadySubmitted(p) => write!(f, "{p} already submitted an output"),
            AtomicError::AlreadyTerminated(s) => write!(f, "execution already {s}"),
        }
    }
}

impl std::error::Error for AtomicError {}

/// The coordinator state: all atomic executions registered with this SCA.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicExecRegistry {
    executions: BTreeMap<ExecId, AtomicExecution>,
}

impl AtomicExecRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new atomic execution over `parties` with their locked
    /// `inputs` (one CID per party, same order). Returns the deterministic
    /// execution ID.
    ///
    /// # Errors
    ///
    /// Fails for fewer than two parties, duplicate parties, arity
    /// mismatches, or if the same execution was already registered.
    pub fn init(
        &mut self,
        parties: Vec<HcAddress>,
        inputs: Vec<Cid>,
        now: ChainEpoch,
    ) -> Result<ExecId, AtomicError> {
        if parties.len() < 2 {
            return Err(AtomicError::TooFewParties);
        }
        for (i, p) in parties.iter().enumerate() {
            if parties[..i].contains(p) {
                return Err(AtomicError::DuplicateParty(p.clone()));
            }
        }
        if inputs.len() != parties.len() {
            return Err(AtomicError::InputArityMismatch);
        }
        let id = (&parties, &inputs, now).cid();
        if self.executions.contains_key(&id) {
            return Err(AtomicError::AlreadyExists(id));
        }
        self.executions.insert(
            id,
            AtomicExecution {
                parties,
                inputs,
                submitted: BTreeMap::new(),
                status: AtomicExecStatus::Pending,
                initiated_at: now,
            },
        );
        Ok(id)
    }

    /// Looks up an execution.
    pub fn get(&self, id: &ExecId) -> Option<&AtomicExecution> {
        self.executions.get(id)
    }

    /// Number of executions tracked (any status).
    pub fn len(&self) -> usize {
        self.executions.len()
    }

    /// Returns `true` if no executions are tracked.
    pub fn is_empty(&self) -> bool {
        self.executions.is_empty()
    }

    /// Iterates over `(id, execution)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&ExecId, &AtomicExecution)> {
        self.executions.iter()
    }

    /// Returns `true` if any execution is still pending (drives the
    /// coordinator's timeout sweep scheduling).
    pub fn has_pending(&self) -> bool {
        self.executions
            .values()
            .any(|e| e.status == AtomicExecStatus::Pending)
    }

    /// Submits `party`'s computed output CID.
    ///
    /// The execution commits when every party has submitted and all outputs
    /// match; it aborts immediately if a submission conflicts with an
    /// earlier one (the outputs can never all match anymore).
    ///
    /// # Errors
    ///
    /// Fails if the execution is unknown or terminated, the sender is not a
    /// party, or the party already submitted.
    pub fn submit_output(
        &mut self,
        id: &ExecId,
        party: HcAddress,
        output: Cid,
    ) -> Result<AtomicExecStatus, AtomicError> {
        let exec = self
            .executions
            .get_mut(id)
            .ok_or(AtomicError::NotFound(*id))?;
        if exec.status != AtomicExecStatus::Pending {
            return Err(AtomicError::AlreadyTerminated(exec.status));
        }
        if !exec.parties.contains(&party) {
            return Err(AtomicError::NotAParty(party));
        }
        if exec.submitted.contains_key(&party) {
            return Err(AtomicError::AlreadySubmitted(party));
        }
        if let Some(existing) = exec.submitted.values().next() {
            if *existing != output {
                // Conflicting outputs can never converge: abort now.
                exec.status = AtomicExecStatus::Aborted;
                exec.submitted.insert(party, output);
                return Ok(AtomicExecStatus::Aborted);
            }
        }
        exec.submitted.insert(party, output);
        if exec.all_submitted() {
            exec.status = AtomicExecStatus::Committed;
        }
        Ok(exec.status)
    }

    /// Aborts a pending execution on behalf of `party`. "To prevent the
    /// protocol from blocking if one of the parties disappears halfway, any
    /// user is allowed to abort the execution at any time" (paper §IV-D).
    /// Aborts arriving after commit are rejected ("possible aborts are no
    /// longer taken into account").
    ///
    /// # Errors
    ///
    /// Fails if the execution is unknown or already terminated, or the
    /// sender is not a party.
    pub fn abort(&mut self, id: &ExecId, party: &HcAddress) -> Result<(), AtomicError> {
        let exec = self
            .executions
            .get_mut(id)
            .ok_or(AtomicError::NotFound(*id))?;
        if exec.status != AtomicExecStatus::Pending {
            return Err(AtomicError::AlreadyTerminated(exec.status));
        }
        if !exec.parties.contains(party) {
            return Err(AtomicError::NotAParty(party.clone()));
        }
        exec.status = AtomicExecStatus::Aborted;
        Ok(())
    }

    /// Aborts every pending execution initiated more than `timeout` epochs
    /// ago, guaranteeing the protocol's *timeliness* property. Returns the
    /// aborted execution IDs.
    pub fn abort_stale(&mut self, now: ChainEpoch, timeout: u64) -> Vec<ExecId> {
        let mut aborted = Vec::new();
        for (id, exec) in self.executions.iter_mut() {
            if exec.status == AtomicExecStatus::Pending && now.since(exec.initiated_at) > timeout {
                exec.status = AtomicExecStatus::Aborted;
                aborted.push(*id);
            }
        }
        aborted
    }
}

encode_fields!(AtomicExecRegistry { executions });
decode_fields!(AtomicExecRegistry { executions });

#[cfg(test)]
mod tests {
    use super::*;
    use hc_types::{Address, SubnetId};

    fn party(route: &[u64], id: u64) -> HcAddress {
        HcAddress::new(
            SubnetId::from_route(route.iter().copied().map(Address::new)),
            Address::new(id),
        )
    }

    fn two_party_exec() -> (AtomicExecRegistry, ExecId, HcAddress, HcAddress) {
        let mut reg = AtomicExecRegistry::new();
        let (a, b) = (party(&[100], 1), party(&[101], 2));
        let id = reg
            .init(
                vec![a.clone(), b.clone()],
                vec![Cid::digest(b"in-a"), Cid::digest(b"in-b")],
                ChainEpoch::new(5),
            )
            .unwrap();
        (reg, id, a, b)
    }

    #[test]
    fn happy_path_commits_on_matching_outputs() {
        let (mut reg, id, a, b) = two_party_exec();
        let out = Cid::digest(b"output");
        assert_eq!(
            reg.submit_output(&id, a, out).unwrap(),
            AtomicExecStatus::Pending
        );
        assert_eq!(
            reg.submit_output(&id, b, out).unwrap(),
            AtomicExecStatus::Committed
        );
        assert_eq!(reg.get(&id).unwrap().status, AtomicExecStatus::Committed);
    }

    #[test]
    fn conflicting_outputs_abort() {
        let (mut reg, id, a, b) = two_party_exec();
        reg.submit_output(&id, a, Cid::digest(b"x")).unwrap();
        assert_eq!(
            reg.submit_output(&id, b, Cid::digest(b"y")).unwrap(),
            AtomicExecStatus::Aborted
        );
    }

    #[test]
    fn abort_before_commit_wins_and_late_abort_is_ignored() {
        let (mut reg, id, a, b) = two_party_exec();
        let out = Cid::digest(b"output");
        reg.submit_output(&id, a.clone(), out).unwrap();
        reg.abort(&id, &b).unwrap();
        assert_eq!(reg.get(&id).unwrap().status, AtomicExecStatus::Aborted);
        // Submissions after abort are rejected.
        assert!(matches!(
            reg.submit_output(&id, b.clone(), out),
            Err(AtomicError::AlreadyTerminated(AtomicExecStatus::Aborted))
        ));

        // On a fresh execution, abort after commit is rejected.
        let (mut reg, id, a, b) = two_party_exec();
        reg.submit_output(&id, a.clone(), out).unwrap();
        reg.submit_output(&id, b, out).unwrap();
        assert!(matches!(
            reg.abort(&id, &a),
            Err(AtomicError::AlreadyTerminated(AtomicExecStatus::Committed))
        ));
    }

    #[test]
    fn init_validates_parties_and_inputs() {
        let mut reg = AtomicExecRegistry::new();
        let a = party(&[100], 1);
        assert_eq!(
            reg.init(vec![a.clone()], vec![Cid::NIL], ChainEpoch::GENESIS),
            Err(AtomicError::TooFewParties)
        );
        assert_eq!(
            reg.init(
                vec![a.clone(), a.clone()],
                vec![Cid::NIL, Cid::NIL],
                ChainEpoch::GENESIS
            ),
            Err(AtomicError::DuplicateParty(a.clone()))
        );
        assert_eq!(
            reg.init(
                vec![a.clone(), party(&[101], 2)],
                vec![Cid::NIL],
                ChainEpoch::GENESIS
            ),
            Err(AtomicError::InputArityMismatch)
        );
    }

    #[test]
    fn duplicate_init_is_rejected_and_ids_are_deterministic() {
        let mut reg = AtomicExecRegistry::new();
        let parties = vec![party(&[100], 1), party(&[101], 2)];
        let inputs = vec![Cid::digest(b"a"), Cid::digest(b"b")];
        let id = reg
            .init(parties.clone(), inputs.clone(), ChainEpoch::new(1))
            .unwrap();
        assert_eq!(
            reg.init(parties.clone(), inputs.clone(), ChainEpoch::new(1)),
            Err(AtomicError::AlreadyExists(id))
        );
        // Different epoch gives a different execution.
        let id2 = reg.init(parties, inputs, ChainEpoch::new(2)).unwrap();
        assert_ne!(id, id2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn outsiders_cannot_submit_or_abort() {
        let (mut reg, id, _, _) = two_party_exec();
        let outsider = party(&[999], 9);
        assert!(matches!(
            reg.submit_output(&id, outsider.clone(), Cid::NIL),
            Err(AtomicError::NotAParty(_))
        ));
        assert!(matches!(
            reg.abort(&id, &outsider),
            Err(AtomicError::NotAParty(_))
        ));
    }

    #[test]
    fn double_submission_is_rejected() {
        let (mut reg, id, a, _) = two_party_exec();
        reg.submit_output(&id, a.clone(), Cid::digest(b"o"))
            .unwrap();
        assert!(matches!(
            reg.submit_output(&id, a, Cid::digest(b"o")),
            Err(AtomicError::AlreadySubmitted(_))
        ));
    }

    #[test]
    fn stale_executions_time_out() {
        let (mut reg, id, a, _) = two_party_exec(); // initiated at epoch 5
        reg.submit_output(&id, a, Cid::digest(b"o")).unwrap();
        assert!(reg.abort_stale(ChainEpoch::new(10), 10).is_empty());
        let aborted = reg.abort_stale(ChainEpoch::new(16), 10);
        assert_eq!(aborted, vec![id]);
        assert_eq!(reg.get(&id).unwrap().status, AtomicExecStatus::Aborted);
        // Idempotent.
        assert!(reg.abort_stale(ChainEpoch::new(30), 10).is_empty());
    }
}
