//! # hc-actors — the system actors of hierarchical consensus
//!
//! This crate implements the protocol logic of the paper as deterministic
//! state machines, independent of any particular chain or network substrate:
//!
//! * [`msg`] — cross-net messages ([`CrossMsg`]) and their aggregated
//!   metadata ([`CrossMsgMeta`]), the unit of inter-subnet communication
//!   (paper §IV-A).
//! * [`checkpoint`] — checkpoints (`⟨s, proof, prev, children, crossMeta⟩`,
//!   paper §III-B) and their signed envelope.
//! * [`sca`] — the **Subnet Coordinator Actor**: subnet registration and
//!   collateral, checkpoint commitment and aggregation, cross-net message
//!   routing with per-direction nonces, circulating-supply accounting, and
//!   the firewall property (paper §II, §III, §IV).
//! * [`sa`] — the **Subnet Actor**: the user-defined contract governing one
//!   subnet — join/leave/kill policies and the checkpoint signature policy
//!   (paper §III-A).
//! * [`atomic`] — the atomic cross-net execution coordinator, a two-phase
//!   commit orchestrated by the SCA of the least common ancestor
//!   (paper §IV-D).
//! * [`ledger`] — the [`Ledger`] trait through which actors move funds;
//!   implemented by `hc-state`'s account table.
//!
//! The state machines mutate their own fields plus a caller-provided
//! [`Ledger`] and return domain *effects* (e.g. "this cross-message is now
//! committed top-down") that the embedding chain turns into follow-up work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod cert;
pub mod checkpoint;
pub mod ledger;
pub mod msg;
pub mod sa;
pub mod sca;
pub mod snapshot;

pub use atomic::{AtomicExecRegistry, AtomicExecStatus, AtomicExecution, ExecId};
pub use cert::FundCertificate;
pub use checkpoint::{Checkpoint, ChildCheck, SignedCheckpoint};
pub use ledger::Ledger;
pub use msg::{CrossMsg, CrossMsgKind, CrossMsgMeta, HcAddress};
pub use sa::{JoinPolicy, SaConfig, SaState, ValidatorInfo};
pub use sca::{ScaConfig, ScaError, ScaState, SubnetInfo, SubnetStatus};
pub use snapshot::{BalanceProof, SnapshotTree, StateSnapshot};
