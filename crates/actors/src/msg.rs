//! Cross-net messages and their aggregated metadata.
//!
//! A [`CrossMsg`] is a message whose source and destination live in
//! different subnets. Depending on the relative position of the two subnets
//! it propagates *top-down* (committed directly by the parent's SCA and
//! applied by the child's consensus), *bottom-up* (aggregated into
//! checkpoints as [`CrossMsgMeta`]), or as a *path* message combining both
//! legs via the least common ancestor (paper §IV-A).

use serde::{Deserialize, Serialize};

use hc_types::merkle::merkle_root;
use hc_types::{
    decode_fields, encode_fields, Address, ByteReader, CanonicalDecode, CanonicalEncode, Cid,
    DecodeError, Nonce, SubnetId, TokenAmount,
};

/// A hierarchical address: an actor address qualified by the subnet it
/// lives in. This is how cross-net message endpoints are named.
///
/// # Example
///
/// ```
/// use hc_actors::HcAddress;
/// use hc_types::{Address, SubnetId};
///
/// let alice = HcAddress::new(SubnetId::root(), Address::new(100));
/// assert_eq!(alice.to_string(), "/root:a100");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HcAddress {
    /// The subnet the actor lives in.
    pub subnet: SubnetId,
    /// The actor address within that subnet.
    pub raw: Address,
}

impl HcAddress {
    /// Creates a hierarchical address.
    pub fn new(subnet: SubnetId, raw: Address) -> Self {
        HcAddress { subnet, raw }
    }
}

impl std::fmt::Display for HcAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.subnet, self.raw)
    }
}

encode_fields!(HcAddress { subnet, raw });
decode_fields!(HcAddress { subnet, raw });

/// What a cross-net message does on arrival.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrossMsgKind {
    /// Plain token transfer to `to.raw` in the destination subnet.
    Transfer,
    /// Invocation of an actor method in the destination subnet, carrying
    /// opaque call data interpreted by the destination VM.
    Call {
        /// Method selector understood by the destination actor.
        method: u64,
        /// Opaque, canonical parameter bytes.
        params: Vec<u8>,
    },
    /// A revert of a failed cross-message: value is returned to the
    /// original sender. Generated automatically when application fails at
    /// the destination (paper §IV-B: "a cross-msg that cannot be applied in
    /// a subnet triggers a new cross-msg … used to revert every
    /// intermediate state change").
    Revert {
        /// CID of the cross-message being reverted.
        original: Cid,
    },
}

impl CanonicalEncode for CrossMsgKind {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        match self {
            CrossMsgKind::Transfer => out.push(0),
            CrossMsgKind::Call { method, params } => {
                out.push(1);
                method.write_bytes(out);
                params.write_bytes(out);
            }
            CrossMsgKind::Revert { original } => {
                out.push(2);
                original.write_bytes(out);
            }
        }
    }
}

impl CanonicalDecode for CrossMsgKind {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::read_bytes(r)? {
            0 => Ok(CrossMsgKind::Transfer),
            1 => Ok(CrossMsgKind::Call {
                method: u64::read_bytes(r)?,
                params: Vec::<u8>::read_bytes(r)?,
            }),
            2 => Ok(CrossMsgKind::Revert {
                original: Cid::read_bytes(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "CrossMsgKind",
                tag,
            }),
        }
    }
}

/// A cross-net message.
///
/// The `nonce` is assigned by the SCA that first commits the message in a
/// given direction and enforces total order of arrival at the destination
/// (paper §IV-A). A freshly created message carries `Nonce::ZERO` until the
/// SCA stamps it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrossMsg {
    /// Source endpoint.
    pub from: HcAddress,
    /// Destination endpoint.
    pub to: HcAddress,
    /// Token value carried by the message.
    pub value: TokenAmount,
    /// Per-(direction, destination) sequence number assigned by the SCA.
    pub nonce: Nonce,
    /// Payload semantics.
    pub kind: CrossMsgKind,
    /// Fee paid to the miners of the subnets the message traverses.
    pub fee: TokenAmount,
}

encode_fields!(CrossMsg {
    from,
    to,
    value,
    nonce,
    kind,
    fee
});
decode_fields!(CrossMsg {
    from,
    to,
    value,
    nonce,
    kind,
    fee
});

impl CrossMsg {
    /// Creates an unstamped transfer message.
    pub fn transfer(from: HcAddress, to: HcAddress, value: TokenAmount) -> Self {
        CrossMsg {
            from,
            to,
            value,
            nonce: Nonce::ZERO,
            kind: CrossMsgKind::Transfer,
            fee: TokenAmount::ZERO,
        }
    }

    /// Creates an unstamped actor call message.
    pub fn call(
        from: HcAddress,
        to: HcAddress,
        value: TokenAmount,
        method: u64,
        params: Vec<u8>,
    ) -> Self {
        CrossMsg {
            from,
            to,
            value,
            nonce: Nonce::ZERO,
            kind: CrossMsgKind::Call { method, params },
            fee: TokenAmount::ZERO,
        }
    }

    /// Builds the revert message for this message: same value, flowing back
    /// from the failing subnet to the original source.
    #[must_use]
    pub fn revert_msg(&self, failed_at: &SubnetId) -> CrossMsg {
        CrossMsg {
            from: HcAddress::new(failed_at.clone(), Address::SCA),
            to: self.from.clone(),
            value: self.value,
            nonce: Nonce::ZERO,
            kind: CrossMsgKind::Revert {
                original: self.cid(),
            },
            fee: TokenAmount::ZERO,
        }
    }

    /// Returns `true` if this message only descends the hierarchy
    /// (destination is in a strict descendant of the source subnet).
    pub fn is_top_down(&self) -> bool {
        self.from.subnet.is_ancestor_of(&self.to.subnet)
    }

    /// Returns `true` if this message only ascends the hierarchy.
    pub fn is_bottom_up(&self) -> bool {
        self.to.subnet.is_ancestor_of(&self.from.subnet)
    }

    /// Returns `true` if source and destination are in different branches,
    /// so the message combines a bottom-up and a top-down leg.
    pub fn is_path(&self) -> bool {
        !self.is_top_down() && !self.is_bottom_up() && self.from.subnet != self.to.subnet
    }
}

/// Aggregated metadata for a group of bottom-up cross-messages, as carried
/// in checkpoints: `crossMeta = (from, to, nonce, msgsCid)` (paper §III-B).
///
/// The raw messages are *not* embedded; the destination resolves `msgs_cid`
/// through the content-resolution protocol (paper §IV-C).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrossMsgMeta {
    /// Source subnet of the group.
    pub from: SubnetId,
    /// Destination subnet of the group.
    pub to: SubnetId,
    /// Sequence number assigned by the destination's SCA on arrival;
    /// `Nonce::ZERO` while in flight.
    pub nonce: Nonce,
    /// Merkle-root CID of the message group.
    pub msgs_cid: Cid,
    /// Number of messages behind `msgs_cid`.
    pub count: u64,
    /// Total token value carried by the group — message values only; fees
    /// are paid to miners of the source subnet and never traverse. Used
    /// for supply accounting as the meta moves through intermediate
    /// subnets.
    pub total_value: TokenAmount,
}

encode_fields!(CrossMsgMeta {
    from,
    to,
    nonce,
    msgs_cid,
    count,
    total_value
});
decode_fields!(CrossMsgMeta {
    from,
    to,
    nonce,
    msgs_cid,
    count,
    total_value
});

impl CrossMsgMeta {
    /// Builds the metadata for a group of messages travelling `from → to`,
    /// committing to them with a Merkle root.
    pub fn for_group(from: SubnetId, to: SubnetId, msgs: &[CrossMsg]) -> Self {
        CrossMsgMeta {
            from,
            to,
            nonce: Nonce::ZERO,
            msgs_cid: merkle_root(msgs),
            count: msgs.len() as u64,
            total_value: msgs.iter().map(|m| m.value).sum(),
        }
    }

    /// Verifies that `msgs` is exactly the group committed to by this meta.
    pub fn matches(&self, msgs: &[CrossMsg]) -> bool {
        msgs.len() as u64 == self.count && merkle_root(msgs) == self.msgs_cid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subnet(route: &[u64]) -> SubnetId {
        SubnetId::from_route(route.iter().copied().map(Address::new))
    }

    fn addr(route: &[u64], id: u64) -> HcAddress {
        HcAddress::new(subnet(route), Address::new(id))
    }

    #[test]
    fn direction_classification() {
        let td = CrossMsg::transfer(addr(&[], 100), addr(&[100, 101], 200), TokenAmount::ZERO);
        assert!(td.is_top_down());
        assert!(!td.is_bottom_up());
        assert!(!td.is_path());

        let bu = CrossMsg::transfer(addr(&[100, 101], 200), addr(&[], 100), TokenAmount::ZERO);
        assert!(bu.is_bottom_up());
        assert!(!bu.is_top_down());

        let path = CrossMsg::transfer(addr(&[100], 200), addr(&[102], 300), TokenAmount::ZERO);
        assert!(path.is_path());

        let local = CrossMsg::transfer(addr(&[100], 200), addr(&[100], 300), TokenAmount::ZERO);
        assert!(!local.is_top_down() && !local.is_bottom_up() && !local.is_path());
    }

    #[test]
    fn meta_commits_to_exact_group() {
        let msgs = vec![
            CrossMsg::transfer(addr(&[100], 1), addr(&[], 2), TokenAmount::from_atto(5)),
            CrossMsg::transfer(addr(&[100], 3), addr(&[], 4), TokenAmount::from_atto(7)),
        ];
        let meta = CrossMsgMeta::for_group(subnet(&[100]), subnet(&[]), &msgs);
        assert_eq!(meta.count, 2);
        assert_eq!(meta.total_value, TokenAmount::from_atto(12));
        assert!(meta.matches(&msgs));

        let mut reordered = msgs.clone();
        reordered.swap(0, 1);
        assert!(!meta.matches(&reordered));
        assert!(!meta.matches(&msgs[..1]));
    }

    #[test]
    fn revert_flows_back_to_source_with_same_value() {
        let orig = CrossMsg::transfer(addr(&[100], 1), addr(&[102], 2), TokenAmount::from_atto(9));
        let failed_at = subnet(&[102]);
        let rev = orig.revert_msg(&failed_at);
        assert_eq!(rev.to, orig.from);
        assert_eq!(rev.from.subnet, failed_at);
        assert_eq!(rev.value, orig.value);
        assert_eq!(
            rev.kind,
            CrossMsgKind::Revert {
                original: orig.cid()
            }
        );
    }

    #[test]
    fn cids_differ_for_different_messages() {
        let a = CrossMsg::transfer(addr(&[100], 1), addr(&[], 2), TokenAmount::from_atto(5));
        let mut b = a.clone();
        b.nonce = Nonce::new(1);
        assert_ne!(a.cid(), b.cid());
    }
}
