//! The ledger abstraction actors use to move funds.
//!
//! System actors (SCA, SA, atomic coordinator) manipulate balances of the
//! subnet they live in — freezing collateral, burning funds leaving the
//! subnet, minting funds entering it. They do so through this trait so the
//! actor state machines stay independent of the concrete state tree
//! (`hc-state` provides the production implementation; tests use
//! [`MapLedger`]).

use std::collections::BTreeMap;
use std::fmt;

use hc_types::{Address, TokenAmount};

/// Error returned by fallible ledger operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerError {
    /// The debited account's balance is lower than the requested amount.
    InsufficientFunds {
        /// Account being debited.
        account: Address,
        /// Amount requested.
        needed: TokenAmount,
        /// Amount available.
        available: TokenAmount,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::InsufficientFunds {
                account,
                needed,
                available,
            } => write!(
                f,
                "insufficient funds in {account}: need {needed}, have {available}"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Balance book of a single subnet, as seen by its system actors.
pub trait Ledger {
    /// Current balance of `account` (zero for unknown accounts).
    fn balance(&self, account: Address) -> TokenAmount;

    /// Adds `amount` to `account`, creating it if needed.
    fn credit(&mut self, account: Address, amount: TokenAmount);

    /// Removes `amount` from `account`.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::InsufficientFunds`] without mutating state if
    /// the balance is too low.
    fn debit(&mut self, account: Address, amount: TokenAmount) -> Result<(), LedgerError>;

    /// Moves `amount` between two accounts atomically.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::InsufficientFunds`] if `from` cannot cover
    /// `amount`; in that case neither account changes.
    fn transfer(
        &mut self,
        from: Address,
        to: Address,
        amount: TokenAmount,
    ) -> Result<(), LedgerError> {
        self.debit(from, amount)?;
        self.credit(to, amount);
        Ok(())
    }

    /// Destroys `amount` from `account` by moving it to the burnt-funds
    /// actor. Burned funds stay visible for supply audits but are
    /// unspendable (the burn actor never signs messages).
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::InsufficientFunds`] if the balance is too low.
    fn burn(&mut self, account: Address, amount: TokenAmount) -> Result<(), LedgerError> {
        self.transfer(account, Address::BURNT_FUNDS, amount)
    }

    /// Creates `amount` new tokens in `account`.
    ///
    /// Minting happens only when applying a committed top-down message: the
    /// parent already froze the equivalent value in its SCA, so global
    /// supply is conserved (audited by the supply-conservation tests).
    fn mint(&mut self, account: Address, amount: TokenAmount) {
        self.credit(account, amount);
    }
}

/// A simple in-memory ledger used in unit tests and by the state substrate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapLedger {
    balances: BTreeMap<Address, TokenAmount>,
}

impl MapLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ledger with the given initial balances.
    pub fn with_balances<I: IntoIterator<Item = (Address, TokenAmount)>>(balances: I) -> Self {
        MapLedger {
            balances: balances.into_iter().collect(),
        }
    }

    /// Sum of all balances, including burnt funds.
    pub fn total(&self) -> TokenAmount {
        self.balances.values().copied().sum()
    }

    /// Iterates over all `(account, balance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &TokenAmount)> {
        self.balances.iter()
    }
}

impl Ledger for MapLedger {
    fn balance(&self, account: Address) -> TokenAmount {
        self.balances
            .get(&account)
            .copied()
            .unwrap_or(TokenAmount::ZERO)
    }

    fn credit(&mut self, account: Address, amount: TokenAmount) {
        let entry = self.balances.entry(account).or_insert(TokenAmount::ZERO);
        *entry += amount;
    }

    fn debit(&mut self, account: Address, amount: TokenAmount) -> Result<(), LedgerError> {
        let available = self.balance(account);
        let new = available
            .checked_sub(amount)
            .ok_or(LedgerError::InsufficientFunds {
                account,
                needed: amount,
                available,
            })?;
        self.balances.insert(account, new);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_debit_round_trip() {
        let mut l = MapLedger::new();
        let a = Address::new(100);
        l.credit(a, TokenAmount::from_atto(10));
        assert_eq!(l.balance(a), TokenAmount::from_atto(10));
        l.debit(a, TokenAmount::from_atto(4)).unwrap();
        assert_eq!(l.balance(a), TokenAmount::from_atto(6));
    }

    #[test]
    fn debit_more_than_balance_fails_without_mutation() {
        let mut l = MapLedger::with_balances([(Address::new(100), TokenAmount::from_atto(3))]);
        let err = l
            .debit(Address::new(100), TokenAmount::from_atto(5))
            .unwrap_err();
        assert!(matches!(err, LedgerError::InsufficientFunds { .. }));
        assert_eq!(l.balance(Address::new(100)), TokenAmount::from_atto(3));
    }

    #[test]
    fn transfer_is_atomic() {
        let mut l = MapLedger::with_balances([(Address::new(100), TokenAmount::from_atto(3))]);
        let before = l.clone();
        assert!(l
            .transfer(
                Address::new(100),
                Address::new(101),
                TokenAmount::from_atto(5)
            )
            .is_err());
        assert_eq!(l, before);
        l.transfer(
            Address::new(100),
            Address::new(101),
            TokenAmount::from_atto(2),
        )
        .unwrap();
        assert_eq!(l.balance(Address::new(101)), TokenAmount::from_atto(2));
    }

    #[test]
    fn burn_preserves_total_but_moves_to_burn_actor() {
        let mut l = MapLedger::with_balances([(Address::new(100), TokenAmount::from_atto(9))]);
        l.burn(Address::new(100), TokenAmount::from_atto(4))
            .unwrap();
        assert_eq!(l.balance(Address::BURNT_FUNDS), TokenAmount::from_atto(4));
        assert_eq!(l.total(), TokenAmount::from_atto(9));
    }

    #[test]
    fn mint_increases_total() {
        let mut l = MapLedger::new();
        l.mint(Address::new(100), TokenAmount::from_atto(7));
        assert_eq!(l.total(), TokenAmount::from_atto(7));
    }
}
