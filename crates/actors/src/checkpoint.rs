//! Checkpoints: the anchoring mechanism between a subnet and its parent.
//!
//! Per the paper (§III-B), a checkpoint is the tuple
//! `⟨s, proof, prev, children, crossMeta⟩`, identified by its CID, and
//! carries the signatures required by the Subnet Actor's signature policy.
//! Checkpoints serve two purposes:
//!
//! 1. **Security anchoring** — committing the child's chain (`proof`) into
//!    the parent protects against history rewrites (e.g. long-range attacks
//!    on PoS subnets), and the `prev` pointers form a hash chain of
//!    checkpoints that can be audited from the rootnet.
//! 2. **Transport** — `crossMeta` propagates bottom-up cross-net message
//!    metadata towards the rest of the hierarchy.

use serde::{Deserialize, Serialize};

use hc_types::crypto::AggregateSignature;
use hc_types::{decode_fields, encode_fields, CanonicalEncode, ChainEpoch, Cid, SubnetId};

use crate::msg::CrossMsgMeta;

/// An entry of the checkpoint's `children` tree: the checkpoint CIDs a
/// child subnet committed during this checkpoint window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChildCheck {
    /// The child subnet.
    pub source: SubnetId,
    /// CIDs of checkpoints committed by `source` in this window, oldest
    /// first.
    pub checks: Vec<Cid>,
}

encode_fields!(ChildCheck { source, checks });
decode_fields!(ChildCheck { source, checks });

/// A subnet checkpoint: `⟨s, proof, prev, children, crossMeta⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// `s` — the source subnet committing this checkpoint.
    pub source: SubnetId,
    /// `proof` — CID of the latest block of the subnet chain being
    /// committed. Subnets are free to use richer proof schemes
    /// (multi-signature, threshold, ZK); the proof is opaque to the parent
    /// beyond equality checks.
    pub proof: Cid,
    /// Epoch of the subnet chain at which this checkpoint was cut.
    pub epoch: ChainEpoch,
    /// `prev` — CID of this subnet's previous checkpoint ([`Cid::NIL`] for
    /// the first), forming a per-subnet hash chain.
    pub prev: Cid,
    /// `children` — checkpoint CIDs from each child committed this window.
    pub children: Vec<ChildCheck>,
    /// `crossMeta` — bottom-up cross-message metadata being propagated
    /// upwards by this subnet and its descendants.
    pub cross_msgs: Vec<CrossMsgMeta>,
}

encode_fields!(Checkpoint {
    source,
    proof,
    epoch,
    prev,
    children,
    cross_msgs
});
decode_fields!(Checkpoint {
    source,
    proof,
    epoch,
    prev,
    children,
    cross_msgs
});

impl Checkpoint {
    /// Creates an empty checkpoint template for `source` at `epoch`,
    /// chained to `prev`.
    ///
    /// Miners populate the template over the checkpoint window by calling
    /// the SCA (paper Fig. 2), then sign it when the window closes.
    pub fn template(source: SubnetId, epoch: ChainEpoch, prev: Cid) -> Self {
        Checkpoint {
            source,
            proof: Cid::NIL,
            epoch,
            prev,
            children: Vec::new(),
            cross_msgs: Vec::new(),
        }
    }

    /// Adds (or merges) a child's committed checkpoint CID.
    pub fn add_child_check(&mut self, child: SubnetId, cid: Cid) {
        if let Some(entry) = self.children.iter_mut().find(|c| c.source == child) {
            if !entry.checks.contains(&cid) {
                entry.checks.push(cid);
            }
        } else {
            self.children.push(ChildCheck {
                source: child,
                checks: vec![cid],
            });
        }
    }

    /// Adds a cross-message meta to be propagated in this checkpoint.
    pub fn add_cross_meta(&mut self, meta: CrossMsgMeta) {
        self.cross_msgs.push(meta);
    }

    /// Total number of cross-messages referenced by the metas carried.
    pub fn cross_msg_count(&self) -> u64 {
        self.cross_msgs.iter().map(|m| m.count).sum()
    }

    /// Size of the canonical encoding in bytes — the on-parent-chain
    /// footprint used by the checkpoint-overhead experiments.
    pub fn encoded_size(&self) -> usize {
        self.canonical_bytes().len()
    }
}

/// A checkpoint plus the signatures collected from the subnet's validators.
///
/// The signatures are over the checkpoint's CID, and whether they satisfy
/// the subnet's policy is judged by the Subnet Actor
/// ([`crate::sa::SaState::submit_checkpoint`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedCheckpoint {
    /// The checkpoint body.
    pub checkpoint: Checkpoint,
    /// Validator signatures over the checkpoint CID.
    pub signatures: AggregateSignature,
}

encode_fields!(SignedCheckpoint {
    checkpoint,
    signatures
});
decode_fields!(SignedCheckpoint {
    checkpoint,
    signatures
});

impl SignedCheckpoint {
    /// Wraps a checkpoint with an (initially empty) signature set.
    pub fn new(checkpoint: Checkpoint) -> Self {
        SignedCheckpoint {
            checkpoint,
            signatures: AggregateSignature::new(),
        }
    }

    /// The message validators sign: the checkpoint CID bytes.
    pub fn signing_bytes(&self) -> Vec<u8> {
        self.checkpoint.cid().as_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_types::{Address, Nonce, TokenAmount};

    fn subnet(route: &[u64]) -> SubnetId {
        SubnetId::from_route(route.iter().copied().map(Address::new))
    }

    fn meta(from: &[u64], to: &[u64]) -> CrossMsgMeta {
        CrossMsgMeta {
            from: subnet(from),
            to: subnet(to),
            nonce: Nonce::ZERO,
            msgs_cid: Cid::digest(b"group"),
            count: 3,
            total_value: TokenAmount::from_atto(10),
        }
    }

    #[test]
    fn template_starts_empty_and_chained() {
        let prev = Cid::digest(b"prev");
        let c = Checkpoint::template(subnet(&[100]), ChainEpoch::new(10), prev);
        assert_eq!(c.prev, prev);
        assert!(c.children.is_empty());
        assert!(c.cross_msgs.is_empty());
        assert_eq!(c.cross_msg_count(), 0);
    }

    #[test]
    fn add_child_check_merges_per_child() {
        let mut c = Checkpoint::template(subnet(&[]), ChainEpoch::new(0), Cid::NIL);
        let child = subnet(&[100]);
        let c1 = Cid::digest(b"c1");
        let c2 = Cid::digest(b"c2");
        c.add_child_check(child.clone(), c1);
        c.add_child_check(child.clone(), c2);
        c.add_child_check(child.clone(), c1); // duplicate ignored
        c.add_child_check(subnet(&[101]), c1);
        assert_eq!(c.children.len(), 2);
        assert_eq!(c.children[0].checks, vec![c1, c2]);
    }

    #[test]
    fn cid_changes_with_content() {
        let a = Checkpoint::template(subnet(&[100]), ChainEpoch::new(1), Cid::NIL);
        let mut b = a.clone();
        b.add_cross_meta(meta(&[100], &[]));
        assert_ne!(a.cid(), b.cid());
        assert_eq!(b.cross_msg_count(), 3);
    }

    #[test]
    fn signing_bytes_are_the_checkpoint_cid() {
        let c = Checkpoint::template(subnet(&[100]), ChainEpoch::new(1), Cid::NIL);
        let signed = SignedCheckpoint::new(c.clone());
        assert_eq!(signed.signing_bytes(), c.cid().as_bytes().to_vec());
    }

    #[test]
    fn encoded_size_grows_with_metas() {
        let mut c = Checkpoint::template(subnet(&[100]), ChainEpoch::new(1), Cid::NIL);
        let small = c.encoded_size();
        for _ in 0..10 {
            c.add_cross_meta(meta(&[100, 101], &[]));
        }
        assert!(c.encoded_size() > small);
    }
}
