//! Fund certificates: the cross-net acceleration path (paper §IV-A).
//!
//! Bottom-up and path messages are slow — they ride checkpoints through
//! every level of the hierarchy. The paper's acceleration: "each SA in the
//! path can send a direct message to the destination, certifying that the
//! user is the legitimate owner of the funds. This information can be used
//! by the destination subnet (depending on the finality required for the
//! actions to be performed) to indicate a pending payment or even as
//! tentative information to start operating as if these funds were already
//! settled."
//!
//! A [`FundCertificate`] is the committed cross-message plus the source
//! subnet's validator signatures. It conveys *no custody* — settlement
//! still happens through checkpoints and the SCA escrow — only an
//! attestation the destination may treat as a pending payment.

use serde::{Deserialize, Serialize};

use hc_types::crypto::AggregateSignature;
use hc_types::{encode_fields, CanonicalEncode, ChainEpoch, Cid};

use crate::msg::CrossMsg;
use crate::sa::{SaError, SaState};

/// The signed body of a fund certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertBody {
    /// The committed cross-message (nonce-stamped by the source SCA).
    pub msg: CrossMsg,
    /// Source-chain epoch at which the message was committed.
    pub committed_at: ChainEpoch,
}

encode_fields!(CertBody { msg, committed_at });

/// A direct attestation that `msg` was committed in its source subnet,
/// signed by the source's validators per its Subnet Actor policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FundCertificate {
    /// The attested commitment.
    pub body: CertBody,
    /// Source-validator signatures over [`FundCertificate::signing_cid`].
    pub signatures: AggregateSignature,
}

impl FundCertificate {
    /// Creates an unsigned certificate for a committed message.
    pub fn new(msg: CrossMsg, committed_at: ChainEpoch) -> Self {
        FundCertificate {
            body: CertBody { msg, committed_at },
            signatures: AggregateSignature::new(),
        }
    }

    /// The CID validators sign.
    pub fn signing_cid(&self) -> Cid {
        self.body.cid()
    }

    /// Verifies the certificate against the source subnet's Subnet Actor
    /// (the destination reads the SA from a chain it tracks — its parent
    /// or another ancestor).
    ///
    /// # Errors
    ///
    /// Fails if the signatures do not satisfy the SA's policy.
    pub fn verify(&self, source_sa: &SaState) -> Result<(), SaError> {
        let policy = source_sa.signature_policy();
        policy.check(self.signing_cid().as_bytes(), &self.signatures)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::HcAddress;
    use crate::sa::SaConfig;
    use hc_types::{Address, Keypair, SubnetId, TokenAmount};

    fn setup() -> (SaState, Keypair, FundCertificate) {
        let mut sa = SaState::new(SaConfig::default());
        let kp = Keypair::from_seed([0xce; 32]);
        sa.join(Address::new(100), kp.public(), TokenAmount::from_whole(5))
            .unwrap();
        let msg = CrossMsg::transfer(
            HcAddress::new(SubnetId::root().child(Address::new(200)), Address::new(1)),
            HcAddress::new(SubnetId::root(), Address::new(2)),
            TokenAmount::from_whole(3),
        );
        let cert = FundCertificate::new(msg, ChainEpoch::new(7));
        (sa, kp, cert)
    }

    #[test]
    fn signed_certificate_verifies() {
        let (sa, kp, mut cert) = setup();
        let cid = cert.signing_cid();
        cert.signatures.add(kp.sign(cid.as_bytes()));
        cert.verify(&sa).unwrap();
    }

    #[test]
    fn unsigned_or_tampered_certificates_fail() {
        let (sa, kp, mut cert) = setup();
        assert!(cert.verify(&sa).is_err());

        let cid = cert.signing_cid();
        cert.signatures.add(kp.sign(cid.as_bytes()));
        // Tamper with the attested value after signing.
        cert.body.msg.value = TokenAmount::from_whole(1_000);
        assert!(cert.verify(&sa).is_err());
    }

    #[test]
    fn outsider_signatures_do_not_count() {
        let (sa, _kp, mut cert) = setup();
        let outsider = Keypair::from_seed([0xcf; 32]);
        let cid = cert.signing_cid();
        cert.signatures.add(outsider.sign(cid.as_bytes()));
        assert!(cert.verify(&sa).is_err());
    }
}
