//! The Subnet Coordinator Actor (SCA).
//!
//! One SCA instance lives in every subnet's state. It is the trusted system
//! actor that (paper §III-A) "exposes the interface for subnets to interact
//! with the hierarchical consensus protocol", enforcing security
//! assumptions, fund management, and cryptoeconomics on top of the
//! user-defined (and untrusted) Subnet Actors:
//!
//! * **Registration & collateral** — children register with an initial
//!   collateral which is frozen for the subnet's lifetime, slashed on fraud
//!   proofs, and gates the subnet's `Active` status
//!   ([`ScaState::register_subnet`], [`ScaState::add_collateral`],
//!   [`ScaState::release_collateral`], [`ScaState::kill_subnet`],
//!   [`ScaState::slash`]).
//! * **Top-down messages** — committing a message towards a child freezes
//!   its value in the SCA escrow, stamps the child's next top-down nonce,
//!   and queues it for the child's consensus
//!   ([`ScaState::commit_top_down`], [`ScaState::apply_top_down`]).
//! * **Bottom-up messages** — messages leaving the subnet burn funds
//!   locally and are aggregated per destination into the current checkpoint
//!   window; committed child checkpoints release escrow, update circulating
//!   supply (the **firewall**), and sort metas into
//!   apply-here / turn-around / propagate-up
//!   ([`ScaState::send_cross_msg`], [`ScaState::commit_child_checkpoint`],
//!   [`ScaState::apply_bottom_up`]).
//! * **Checkpointing** — the SCA owns the checkpoint template of its subnet
//!   and cuts it at every period boundary ([`ScaState::cut_checkpoint`]).
//! * **Content registry** — raw messages behind every propagated
//!   `CrossMsgMeta` CID, served to the content-resolution protocol
//!   ([`ScaState::resolve_content`]).
//! * **State snapshots** — the `save` function persisting subnet state
//!   proofs ([`ScaState::save_state`]).

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use hc_types::decode::{ByteReader, CanonicalDecode, DecodeError};
use hc_types::{
    decode_fields, encode_fields, Address, CanonicalEncode, ChainEpoch, Cid, Nonce, SubnetId,
    TokenAmount,
};

use crate::checkpoint::Checkpoint;
use crate::ledger::{Ledger, LedgerError};
use crate::msg::{CrossMsg, CrossMsgMeta};
use crate::snapshot::{BalanceProof, StateSnapshot};

/// Static parameters of an SCA instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaConfig {
    /// Checkpoint period of this subnet, in its own epochs. At every
    /// multiple of this period the current checkpoint template is cut and
    /// handed to the validators for signing (paper Fig. 2).
    pub checkpoint_period: u64,
    /// Minimum collateral a child subnet must hold to stay `Active`
    /// (`minCollateral_subnet`, paper §III-B).
    pub min_collateral: TokenAmount,
    /// Flat fee charged per cross-net message, paid to the reward actor of
    /// the subnet committing the message ("miners in subnets are rewarded
    /// with fees", paper §II).
    pub cross_msg_fee: TokenAmount,
}

impl Default for ScaConfig {
    fn default() -> Self {
        ScaConfig {
            checkpoint_period: 10,
            min_collateral: TokenAmount::from_whole(10),
            cross_msg_fee: TokenAmount::ZERO,
        }
    }
}

encode_fields!(ScaConfig {
    checkpoint_period,
    min_collateral,
    cross_msg_fee,
});
decode_fields!(ScaConfig {
    checkpoint_period,
    min_collateral,
    cross_msg_fee,
});

/// Lifecycle status of a registered child subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubnetStatus {
    /// Collateral ≥ minimum; the subnet may interact with the hierarchy.
    Active,
    /// Collateral dropped below the minimum; cross-net interaction is
    /// suspended until users top the collateral back up (paper §III-B).
    Inactive,
    /// The subnet was killed; only state recovery via saved snapshots
    /// remains possible.
    Killed,
}

impl fmt::Display for SubnetStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubnetStatus::Active => "active",
            SubnetStatus::Inactive => "inactive",
            SubnetStatus::Killed => "killed",
        };
        f.write_str(s)
    }
}

impl CanonicalEncode for SubnetStatus {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            SubnetStatus::Active => 0,
            SubnetStatus::Inactive => 1,
            SubnetStatus::Killed => 2,
        };
        tag.write_bytes(out);
    }
}

impl CanonicalDecode for SubnetStatus {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::read_bytes(r)? {
            0 => Ok(SubnetStatus::Active),
            1 => Ok(SubnetStatus::Inactive),
            2 => Ok(SubnetStatus::Killed),
            tag => Err(DecodeError::BadTag {
                what: "SubnetStatus",
                tag,
            }),
        }
    }
}

/// Everything the SCA tracks about one registered child subnet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubnetInfo {
    /// The child's hierarchical ID.
    pub id: SubnetId,
    /// Address of the child's Subnet Actor in this chain.
    pub sa: Address,
    /// Collateral currently frozen for the child. Not part of the child's
    /// circulating supply.
    pub collateral: TokenAmount,
    /// Circulating supply of the parent token inside the child: the
    /// (positive) balance between value injected top-down and value
    /// returned bottom-up. This is exactly the firewall bound: a fully
    /// compromised child can extract at most this amount (paper §II).
    pub circ_supply: TokenAmount,
    /// Lifecycle status.
    pub status: SubnetStatus,
    /// Epoch (of this chain) at which the child registered.
    pub registered_at: ChainEpoch,
    /// CID of the child's most recent committed checkpoint
    /// ([`Cid::NIL`] before the first).
    pub prev_checkpoint: Cid,
    /// Next top-down nonce to assign for messages directed at this child.
    pub topdown_nonce: Nonce,
    /// Number of checkpoints the child has committed.
    pub committed_checkpoints: u64,
}

encode_fields!(SubnetInfo {
    id,
    sa,
    collateral,
    circ_supply,
    status,
    registered_at,
    prev_checkpoint,
    topdown_nonce,
    committed_checkpoints,
});
decode_fields!(SubnetInfo {
    id,
    sa,
    collateral,
    circ_supply,
    status,
    registered_at,
    prev_checkpoint,
    topdown_nonce,
    committed_checkpoints,
});

/// Result of committing a child checkpoint: where each carried
/// `CrossMsgMeta` must go next.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CheckpointOutcome {
    /// Metas whose destination is this subnet; stamped with fresh bottom-up
    /// nonces, queued for application once their content is resolved.
    pub applied_here: Vec<CrossMsgMeta>,
    /// Metas whose destination is a *descendant* of this subnet (path
    /// messages turning around at their least common ancestor). The runtime
    /// resolves their content and re-commits each message top-down.
    pub turnaround: Vec<CrossMsgMeta>,
    /// Metas propagated further up inside this subnet's next checkpoint.
    pub propagated_up: Vec<CrossMsgMeta>,
}

/// Errors returned by SCA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaError {
    /// The referenced child subnet is not registered.
    SubnetNotFound(SubnetId),
    /// The child subnet exists but is not `Active`.
    SubnetNotActive(SubnetId, SubnetStatus),
    /// A subnet with this Subnet Actor is already registered.
    AlreadyRegistered(SubnetId),
    /// The collateral provided is below the configured minimum.
    InsufficientCollateral {
        /// Collateral offered.
        got: TokenAmount,
        /// Minimum required.
        need: TokenAmount,
    },
    /// **Firewall violation**: the child attempted to move more value out
    /// than its circulating supply. The offending amount is rejected,
    /// bounding the impact of a compromised child (paper §II).
    FirewallViolation {
        /// The child attempting the withdrawal.
        subnet: SubnetId,
        /// Value the child tried to move out.
        attempted: TokenAmount,
        /// The child's current circulating supply (the bound).
        available: TokenAmount,
    },
    /// A structurally invalid checkpoint (wrong source, broken `prev`
    /// chain, stale epoch, …).
    BadCheckpoint(String),
    /// A message was applied out of nonce order.
    NonceMismatch {
        /// Nonce expected next.
        expected: Nonce,
        /// Nonce presented.
        got: Nonce,
    },
    /// The message is not a cross-net message for this operation.
    NotCrossNet,
    /// The destination cannot be reached from this subnet (e.g. message
    /// committed top-down for a child that is not on the route).
    BadRoute(String),
    /// The presented messages do not match the meta's committed CID.
    ContentMismatch(Cid),
    /// Underlying balance operation failed.
    Ledger(LedgerError),
    /// The fraud proof did not demonstrate equivocation.
    InvalidFraudProof(String),
}

impl fmt::Display for ScaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaError::SubnetNotFound(id) => write!(f, "subnet {id} is not registered"),
            ScaError::SubnetNotActive(id, s) => write!(f, "subnet {id} is {s}, not active"),
            ScaError::AlreadyRegistered(id) => write!(f, "subnet {id} is already registered"),
            ScaError::InsufficientCollateral { got, need } => {
                write!(f, "insufficient collateral: got {got}, need {need}")
            }
            ScaError::FirewallViolation {
                subnet,
                attempted,
                available,
            } => write!(
                f,
                "firewall violation: {subnet} attempted to withdraw {attempted} with circulating supply {available}"
            ),
            ScaError::BadCheckpoint(why) => write!(f, "invalid checkpoint: {why}"),
            ScaError::NonceMismatch { expected, got } => {
                write!(f, "nonce mismatch: expected {expected}, got {got}")
            }
            ScaError::NotCrossNet => f.write_str("message is not cross-net"),
            ScaError::BadRoute(why) => write!(f, "unroutable message: {why}"),
            ScaError::ContentMismatch(cid) => {
                write!(f, "messages do not match committed content {cid}")
            }
            ScaError::Ledger(e) => write!(f, "ledger error: {e}"),
            ScaError::InvalidFraudProof(why) => write!(f, "invalid fraud proof: {why}"),
        }
    }
}

impl std::error::Error for ScaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScaError::Ledger(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LedgerError> for ScaError {
    fn from(e: LedgerError) -> Self {
        ScaError::Ledger(e)
    }
}

/// The Subnet Coordinator Actor state for one subnet.
///
/// See the [module docs](self) for the full protocol surface. The state is
/// deterministic and fully serializable; all token movement goes through
/// the [`Ledger`] passed into each operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaState {
    /// The subnet this SCA instance governs.
    subnet_id: SubnetId,
    /// Static configuration.
    config: ScaConfig,
    /// Registered child subnets.
    subnets: BTreeMap<SubnetId, SubnetInfo>,
    /// Committed-but-unapplied top-down messages per child, in nonce order.
    /// Child nodes sync this queue from the parent state (paper Fig. 3).
    top_down_queue: BTreeMap<SubnetId, VecDeque<CrossMsg>>,
    /// Bottom-up messages of the *current* checkpoint window, grouped by
    /// destination subnet (paper Fig. 2: the template being populated).
    window_bottom_up: BTreeMap<SubnetId, Vec<CrossMsg>>,
    /// Metas received from children that must continue upward in the next
    /// checkpoint.
    window_propagated: Vec<CrossMsgMeta>,
    /// Child checkpoint CIDs committed during the current window, included
    /// in the next cut checkpoint's `children` tree.
    window_child_checks: Vec<(SubnetId, Cid)>,
    /// Next nonce stamped on each bottom-up message *sent from* this
    /// subnet (makes every message globally distinguishable and
    /// replay-proof).
    bottomup_send_nonce: Nonce,
    /// Next nonce for bottom-up metas arriving at this subnet.
    bottomup_nonce: Nonce,
    /// Next bottom-up meta nonce expected to be applied.
    applied_bottomup_nonce: Nonce,
    /// Next top-down nonce expected from the parent.
    applied_topdown_nonce: Nonce,
    /// CID of this subnet's own previous cut checkpoint.
    prev_checkpoint: Cid,
    /// Content-addressable registry of the raw messages behind every
    /// `CrossMsgMeta` this SCA created or forwarded (paper §IV-C).
    msg_registry: BTreeMap<Cid, Vec<CrossMsg>>,
    /// Saved state snapshots: `(epoch, state CID)`, via the `save`
    /// function (paper §III-C).
    saved_states: Vec<(ChainEpoch, Cid)>,
    /// Latest balance snapshot persisted for each child (parent-side
    /// `save` function; survives the child being killed).
    child_snapshots: BTreeMap<SubnetId, StateSnapshot>,
    /// Funds already recovered per `(child, claimant)` to prevent double
    /// claims.
    recovered: BTreeMap<(SubnetId, Address), TokenAmount>,
}

impl ScaState {
    /// Creates the SCA for `subnet_id` with the given configuration.
    pub fn new(subnet_id: SubnetId, config: ScaConfig) -> Self {
        ScaState {
            subnet_id,
            config,
            subnets: BTreeMap::new(),
            top_down_queue: BTreeMap::new(),
            window_bottom_up: BTreeMap::new(),
            window_propagated: Vec::new(),
            window_child_checks: Vec::new(),
            bottomup_send_nonce: Nonce::ZERO,
            bottomup_nonce: Nonce::ZERO,
            applied_bottomup_nonce: Nonce::ZERO,
            applied_topdown_nonce: Nonce::ZERO,
            prev_checkpoint: Cid::NIL,
            msg_registry: BTreeMap::new(),
            saved_states: Vec::new(),
            child_snapshots: BTreeMap::new(),
            recovered: BTreeMap::new(),
        }
    }

    /// The subnet this SCA governs.
    pub fn subnet_id(&self) -> &SubnetId {
        &self.subnet_id
    }

    /// The SCA configuration.
    pub fn config(&self) -> &ScaConfig {
        &self.config
    }

    /// Info about a registered child subnet.
    pub fn subnet(&self, id: &SubnetId) -> Option<&SubnetInfo> {
        self.subnets.get(id)
    }

    /// Iterates over all registered child subnets.
    pub fn subnets(&self) -> impl Iterator<Item = &SubnetInfo> {
        self.subnets.values()
    }

    /// Number of registered children (any status).
    pub fn child_count(&self) -> usize {
        self.subnets.len()
    }

    fn active_subnet_mut(&mut self, id: &SubnetId) -> Result<&mut SubnetInfo, ScaError> {
        let info = self
            .subnets
            .get_mut(id)
            .ok_or_else(|| ScaError::SubnetNotFound(id.clone()))?;
        if info.status != SubnetStatus::Active {
            return Err(ScaError::SubnetNotActive(id.clone(), info.status));
        }
        Ok(info)
    }

    // ------------------------------------------------------------------
    // Registration and collateral (paper §III-A, §III-B, §III-C)
    // ------------------------------------------------------------------

    /// Registers a new child subnet governed by the Subnet Actor at `sa`,
    /// freezing `collateral` from `payer` into the SCA.
    ///
    /// The new subnet's ID is derived deterministically:
    /// `self.subnet_id / sa`.
    ///
    /// # Errors
    ///
    /// Fails if the subnet is already registered, the collateral is below
    /// the minimum, or `payer` cannot cover it.
    pub fn register_subnet<L: Ledger>(
        &mut self,
        ledger: &mut L,
        payer: Address,
        sa: Address,
        collateral: TokenAmount,
        now: ChainEpoch,
    ) -> Result<SubnetId, ScaError> {
        let id = self.subnet_id.child(sa);
        if self.subnets.contains_key(&id) {
            return Err(ScaError::AlreadyRegistered(id));
        }
        if collateral < self.config.min_collateral {
            return Err(ScaError::InsufficientCollateral {
                got: collateral,
                need: self.config.min_collateral,
            });
        }
        ledger.transfer(payer, Address::SCA, collateral)?;
        self.subnets.insert(
            id.clone(),
            SubnetInfo {
                id: id.clone(),
                sa,
                collateral,
                circ_supply: TokenAmount::ZERO,
                status: SubnetStatus::Active,
                registered_at: now,
                prev_checkpoint: Cid::NIL,
                topdown_nonce: Nonce::ZERO,
                committed_checkpoints: 0,
            },
        );
        self.top_down_queue.insert(id.clone(), VecDeque::new());
        Ok(id)
    }

    /// Adds collateral to a child subnet, potentially reactivating it.
    ///
    /// # Errors
    ///
    /// Fails if the subnet is unknown or killed, or the payer cannot cover
    /// the amount.
    pub fn add_collateral<L: Ledger>(
        &mut self,
        ledger: &mut L,
        payer: Address,
        id: &SubnetId,
        amount: TokenAmount,
    ) -> Result<(), ScaError> {
        let min = self.config.min_collateral;
        let info = self
            .subnets
            .get_mut(id)
            .ok_or_else(|| ScaError::SubnetNotFound(id.clone()))?;
        if info.status == SubnetStatus::Killed {
            return Err(ScaError::SubnetNotActive(id.clone(), info.status));
        }
        ledger.transfer(payer, Address::SCA, amount)?;
        info.collateral += amount;
        if info.collateral >= min {
            info.status = SubnetStatus::Active;
        }
        Ok(())
    }

    /// Releases `amount` of a child's collateral to `recipient` (a miner
    /// leaving the subnet, paper §III-C). If the remaining collateral drops
    /// below the minimum, the subnet becomes `Inactive`.
    ///
    /// # Errors
    ///
    /// Fails if the subnet is unknown/killed or `amount` exceeds the frozen
    /// collateral.
    pub fn release_collateral<L: Ledger>(
        &mut self,
        ledger: &mut L,
        id: &SubnetId,
        recipient: Address,
        amount: TokenAmount,
    ) -> Result<(), ScaError> {
        let min = self.config.min_collateral;
        let info = self
            .subnets
            .get_mut(id)
            .ok_or_else(|| ScaError::SubnetNotFound(id.clone()))?;
        if info.status == SubnetStatus::Killed {
            return Err(ScaError::SubnetNotActive(id.clone(), info.status));
        }
        let remaining =
            info.collateral
                .checked_sub(amount)
                .ok_or(ScaError::InsufficientCollateral {
                    got: info.collateral,
                    need: amount,
                })?;
        ledger.transfer(Address::SCA, recipient, amount)?;
        info.collateral = remaining;
        if info.collateral < min {
            info.status = SubnetStatus::Inactive;
        }
        Ok(())
    }

    /// Kills a child subnet, releasing all remaining collateral to
    /// `recipient` (paper §III-C). The subnet can no longer interact with
    /// the hierarchy; saved snapshots remain available for state recovery.
    ///
    /// # Errors
    ///
    /// Fails if the subnet is unknown or already killed.
    pub fn kill_subnet<L: Ledger>(
        &mut self,
        ledger: &mut L,
        id: &SubnetId,
        recipient: Address,
    ) -> Result<TokenAmount, ScaError> {
        let info = self
            .subnets
            .get_mut(id)
            .ok_or_else(|| ScaError::SubnetNotFound(id.clone()))?;
        if info.status == SubnetStatus::Killed {
            return Err(ScaError::SubnetNotActive(id.clone(), info.status));
        }
        let released = info.collateral;
        ledger.transfer(Address::SCA, recipient, released)?;
        info.collateral = TokenAmount::ZERO;
        info.status = SubnetStatus::Killed;
        self.top_down_queue.remove(id);
        Ok(released)
    }

    /// Slashes `amount` from a child's collateral after a valid fraud
    /// proof: half is burned, half rewards the reporter. The subnet drops
    /// to `Inactive` if the remainder is below the minimum.
    ///
    /// The fraud-proof *validation* lives in
    /// [`crate::sa::FraudProof::validate`]; this method applies the
    /// economic consequence.
    ///
    /// # Errors
    ///
    /// Fails if the subnet is unknown.
    pub fn slash<L: Ledger>(
        &mut self,
        ledger: &mut L,
        id: &SubnetId,
        amount: TokenAmount,
        reporter: Address,
    ) -> Result<TokenAmount, ScaError> {
        let min = self.config.min_collateral;
        let info = self
            .subnets
            .get_mut(id)
            .ok_or_else(|| ScaError::SubnetNotFound(id.clone()))?;
        let slashed = amount.min(info.collateral);
        info.collateral -= slashed;
        let reward = TokenAmount::from_atto(slashed.atto() / 2);
        ledger.transfer(Address::SCA, reporter, reward)?;
        ledger.transfer(Address::SCA, Address::BURNT_FUNDS, slashed - reward)?;
        if info.collateral < min {
            info.status = SubnetStatus::Inactive;
        }
        Ok(slashed)
    }

    // ------------------------------------------------------------------
    // Cross-net messages (paper §IV)
    // ------------------------------------------------------------------

    /// Entry point for a cross-net message originated by `sender` *in this
    /// subnet*. Dispatches on direction:
    ///
    /// * destination below → committed top-down immediately;
    /// * destination above or in another branch → burned locally and added
    ///   to the current checkpoint window (bottom-up leg first).
    ///
    /// # Errors
    ///
    /// Fails for local (non-cross-net) messages, inactive child subnets,
    /// or insufficient sender funds (value + fee).
    pub fn send_cross_msg<L: Ledger>(
        &mut self,
        ledger: &mut L,
        sender: Address,
        mut msg: CrossMsg,
    ) -> Result<CrossMsg, ScaError> {
        if msg.from.subnet != self.subnet_id {
            return Err(ScaError::BadRoute(format!(
                "message source {} is not this subnet {}",
                msg.from.subnet, self.subnet_id
            )));
        }
        if msg.to.subnet == self.subnet_id {
            return Err(ScaError::NotCrossNet);
        }
        msg.fee = self.config.cross_msg_fee;
        // Collect value + fee from the sender up front.
        ledger.debit(sender, msg.value + msg.fee)?;
        ledger.credit(Address::REWARD, msg.fee);
        if msg.is_top_down() {
            // Freeze value in the SCA escrow and queue for the child.
            ledger.credit(Address::SCA, msg.value);
            self.commit_top_down(msg)
        } else {
            // Bottom-up (or the bottom-up leg of a path message): value
            // leaves this subnet, so it is burned here; the parent releases
            // the escrowed equivalent when the checkpoint commits.
            ledger.credit(Address::BURNT_FUNDS, msg.value);
            Ok(self.queue_bottom_up(msg))
        }
    }

    /// Commits an already-funded top-down message: stamps the next top-down
    /// nonce of the child on the route and appends it to that child's
    /// queue. The value is assumed to already sit in the SCA escrow.
    ///
    /// # Errors
    ///
    /// Fails if the route's child subnet is not registered and active.
    pub fn commit_top_down(&mut self, mut msg: CrossMsg) -> Result<CrossMsg, ScaError> {
        if !self.subnet_id.is_ancestor_of(&msg.to.subnet) {
            return Err(ScaError::BadRoute(format!(
                "{} is not a descendant of {}",
                msg.to.subnet, self.subnet_id
            )));
        }
        let child = self
            .subnet_id
            .child(msg.to.subnet.route()[self.subnet_id.depth()]);
        let info = self.active_subnet_mut(&child)?;
        msg.nonce = info.topdown_nonce.fetch_increment();
        info.circ_supply += msg.value;
        // The relay queue is transport bookkeeping excluded from the
        // canonical encoding, so a snapshot-installed SCA starts without one
        // even for registered children — recreate it lazily.
        self.top_down_queue
            .entry(child.clone())
            .or_default()
            .push_back(msg.clone());
        Ok(msg)
    }

    /// Drops committed top-down messages for `child` below `below` — safe
    /// once the child acknowledged application up to that nonce (in this
    /// system: once its checkpoints prove the corresponding state). Keeps
    /// the registry bounded in long-running deployments. Returns how many
    /// messages were pruned.
    pub fn prune_top_down(&mut self, child: &SubnetId, below: Nonce) -> usize {
        let Some(queue) = self.top_down_queue.get_mut(child) else {
            return 0;
        };
        let before = queue.len();
        queue.retain(|m| m.nonce >= below);
        before - queue.len()
    }

    /// Returns the committed top-down messages for `child` with nonce ≥
    /// `from_nonce` — what a syncing child node pulls into its cross-msg
    /// pool (paper Fig. 3).
    pub fn top_down_msgs(&self, child: &SubnetId, from_nonce: Nonce) -> Vec<CrossMsg> {
        self.top_down_queue
            .get(child)
            .map(|q| {
                q.iter()
                    .filter(|m| m.nonce >= from_nonce)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Applies a top-down message *in the destination (this) subnet*,
    /// enforcing nonce order. Returns the minted recipient credit, or
    /// re-commits transit messages for the next child on the route.
    ///
    /// For messages terminating here, value is minted to the recipient
    /// (the parent holds the escrowed equivalent). For transit messages
    /// (destination deeper in the hierarchy), value is minted into this
    /// subnet's own SCA escrow and the message is re-committed top-down.
    ///
    /// # Errors
    ///
    /// Fails on nonce gaps ([`ScaError::NonceMismatch`]) or unroutable
    /// destinations.
    pub fn apply_top_down<L: Ledger>(
        &mut self,
        ledger: &mut L,
        msg: CrossMsg,
    ) -> Result<(), ScaError> {
        if msg.nonce != self.applied_topdown_nonce {
            return Err(ScaError::NonceMismatch {
                expected: self.applied_topdown_nonce,
                got: msg.nonce,
            });
        }
        if msg.to.subnet == self.subnet_id {
            self.applied_topdown_nonce = self.applied_topdown_nonce.next();
            ledger.mint(msg.to.raw, msg.value);
            Ok(())
        } else if self.subnet_id.is_ancestor_of(&msg.to.subnet) {
            self.applied_topdown_nonce = self.applied_topdown_nonce.next();
            // Transit: escrow here and continue down.
            ledger.mint(Address::SCA, msg.value);
            let mut transit = msg;
            transit.nonce = Nonce::ZERO; // restamped per hop
            self.commit_top_down(transit).map(|_| ())
        } else {
            Err(ScaError::BadRoute(format!(
                "top-down message for {} applied in {}",
                msg.to.subnet, self.subnet_id
            )))
        }
    }

    /// Queues a bottom-up message into the current checkpoint window,
    /// grouped by destination subnet, stamping the subnet's next bottom-up
    /// send nonce (every cross-msg carries a unique nonce, paper §III-B).
    /// Fund movement is the caller's responsibility
    /// ([`ScaState::send_cross_msg`] burns locally).
    fn queue_bottom_up(&mut self, mut msg: CrossMsg) -> CrossMsg {
        msg.nonce = self.bottomup_send_nonce.fetch_increment();
        self.window_bottom_up
            .entry(msg.to.subnet.clone())
            .or_default()
            .push(msg.clone());
        msg
    }

    /// Returns `true` when the current checkpoint window carries no
    /// value-bearing cross-net work (outgoing groups or pass-through
    /// metas). Child-checkpoint CIDs are excluded: they are periodic
    /// heartbeats, not pending value.
    pub fn window_is_value_empty(&self) -> bool {
        self.window_bottom_up.is_empty() && self.window_propagated.is_empty()
    }

    /// Test/diagnostic view of the current window's bottom-up groups.
    pub fn window_bottom_up_counts(&self) -> BTreeMap<SubnetId, usize> {
        self.window_bottom_up
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    // ------------------------------------------------------------------
    // Checkpoints (paper §III-B)
    // ------------------------------------------------------------------

    /// Returns `true` if `epoch` closes a checkpoint window (non-genesis
    /// multiples of the checkpoint period).
    pub fn is_checkpoint_epoch(&self, epoch: ChainEpoch) -> bool {
        epoch.value() != 0 && epoch.is_multiple_of(self.config.checkpoint_period)
    }

    /// Cuts the checkpoint for the window ending at `epoch`, committing the
    /// chain head `proof`. Drains the window state: outgoing bottom-up
    /// groups become `CrossMsgMeta` entries (their raw messages registered
    /// for content resolution), child checkpoint CIDs fill the `children`
    /// tree, and pass-through metas are appended.
    ///
    /// Returns `None` when there is nothing to do for a root SCA (the
    /// rootnet has no parent to checkpoint into) — callers decide; the SCA
    /// itself always cuts.
    pub fn cut_checkpoint(&mut self, epoch: ChainEpoch, proof: Cid) -> Checkpoint {
        let mut ckpt = Checkpoint::template(self.subnet_id.clone(), epoch, self.prev_checkpoint);
        ckpt.proof = proof;
        for (child, cid) in self.window_child_checks.drain(..) {
            ckpt.add_child_check(child, cid);
        }
        let window = std::mem::take(&mut self.window_bottom_up);
        for (dest, msgs) in window {
            let meta = CrossMsgMeta::for_group(self.subnet_id.clone(), dest, &msgs);
            self.msg_registry.insert(meta.msgs_cid, msgs);
            ckpt.add_cross_meta(meta);
        }
        for meta in self.window_propagated.drain(..) {
            ckpt.add_cross_meta(meta);
        }
        self.prev_checkpoint = ckpt.cid();
        ckpt
    }

    /// CID of this subnet's most recently cut checkpoint.
    pub fn prev_checkpoint(&self) -> Cid {
        self.prev_checkpoint
    }

    /// Commits a checkpoint from child `source` (already validated against
    /// the child's Subnet Actor signature policy).
    ///
    /// Verifies the `prev` hash chain, records the child checkpoint CID for
    /// inclusion in this subnet's own next checkpoint, and routes every
    /// carried [`CrossMsgMeta`]:
    ///
    /// * metas for **this** subnet get the next bottom-up nonce; the value
    ///   they carry is released from this SCA's escrow when applied;
    /// * metas for a **descendant** are returned as `turnaround` (resolved
    ///   and re-committed top-down by the runtime);
    /// * all other metas continue **upward** in the next checkpoint.
    ///
    /// Any meta moving value out of the child's subtree decrements the
    /// child's circulating supply; exceeding it is a
    /// [`ScaError::FirewallViolation`] and rejects the checkpoint. Value
    /// continuing *above* this subnet is burned from the local escrow —
    /// the corresponding real tokens live in an ancestor's escrow ("funds
    /// are conveniently released and burned in each of the subnets as
    /// cross-msgs flow", paper §IV-A).
    ///
    /// # Errors
    ///
    /// Fails for unknown/inactive children, broken `prev` chains, or
    /// firewall violations.
    pub fn commit_child_checkpoint<L: Ledger>(
        &mut self,
        ledger: &mut L,
        ckpt: &Checkpoint,
    ) -> Result<CheckpointOutcome, ScaError> {
        let child_id = ckpt.source.clone();
        if ckpt.source.parent().as_ref() != Some(&self.subnet_id) {
            return Err(ScaError::BadCheckpoint(format!(
                "checkpoint source {} is not a direct child of {}",
                ckpt.source, self.subnet_id
            )));
        }
        // Pre-validate against a read-only view before mutating anything.
        {
            let info = self
                .subnets
                .get(&child_id)
                .ok_or_else(|| ScaError::SubnetNotFound(child_id.clone()))?;
            if info.status != SubnetStatus::Active {
                return Err(ScaError::SubnetNotActive(child_id.clone(), info.status));
            }
            if ckpt.prev != info.prev_checkpoint {
                return Err(ScaError::BadCheckpoint(format!(
                    "prev pointer {} does not extend committed chain {}",
                    ckpt.prev, info.prev_checkpoint
                )));
            }
            // Firewall pre-check: total value leaving the child's subtree
            // must not exceed its circulating supply.
            let leaving: TokenAmount = ckpt
                .cross_msgs
                .iter()
                .filter(|m| !child_id.is_prefix_of(&m.to))
                .map(|m| m.total_value)
                .sum();
            if leaving > info.circ_supply {
                return Err(ScaError::FirewallViolation {
                    subnet: child_id,
                    attempted: leaving,
                    available: info.circ_supply,
                });
            }
        }

        let mut outcome = CheckpointOutcome::default();
        for meta in &ckpt.cross_msgs {
            let mut meta = meta.clone();
            if !child_id.is_prefix_of(&meta.to) {
                // Value exits the child's subtree.
                let info = self.subnets.get_mut(&child_id).expect("checked above");
                info.circ_supply -= meta.total_value;
            }
            if meta.to == self.subnet_id {
                meta.nonce = self.bottomup_nonce.fetch_increment();
                outcome.applied_here.push(meta);
            } else if self.subnet_id.is_ancestor_of(&meta.to) {
                // This subnet is the LCA: the meta turns around here and
                // continues top-down after content resolution.
                outcome.turnaround.push(meta);
            } else {
                // The value continues above this subnet: burn the local
                // escrow; the parent releases its own escrow when this
                // subnet's next checkpoint commits there.
                ledger.transfer(Address::SCA, Address::BURNT_FUNDS, meta.total_value)?;
                self.window_propagated.push(meta.clone());
                outcome.propagated_up.push(meta);
            }
        }

        let info = self.subnets.get_mut(&child_id).expect("checked above");
        info.prev_checkpoint = ckpt.cid();
        info.committed_checkpoints += 1;
        self.window_child_checks.push((child_id, ckpt.cid()));
        Ok(outcome)
    }

    /// Applies a resolved bottom-up message group in this (destination)
    /// subnet: verifies the messages against the meta's committed CID,
    /// enforces meta nonce order, and pays recipients out of the SCA
    /// escrow.
    ///
    /// # Errors
    ///
    /// Fails on nonce gaps, content mismatches, or if the escrow cannot
    /// cover the total (which indicates double-spend attempts upstream and
    /// is rejected as a firewall violation).
    pub fn apply_bottom_up<L: Ledger>(
        &mut self,
        ledger: &mut L,
        meta: &CrossMsgMeta,
        msgs: &[CrossMsg],
    ) -> Result<(), ScaError> {
        if meta.nonce != self.applied_bottomup_nonce {
            return Err(ScaError::NonceMismatch {
                expected: self.applied_bottomup_nonce,
                got: meta.nonce,
            });
        }
        if !meta.matches(msgs) {
            return Err(ScaError::ContentMismatch(meta.msgs_cid));
        }
        // Root holds no escrow above it: for the rootnet the escrow *is*
        // the SCA balance accumulated from top-down funding.
        let total: TokenAmount = msgs.iter().map(|m| m.value).sum();
        if ledger.balance(Address::SCA) < total {
            return Err(ScaError::FirewallViolation {
                subnet: meta.from.clone(),
                attempted: total,
                available: ledger.balance(Address::SCA),
            });
        }
        self.applied_bottomup_nonce = self.applied_bottomup_nonce.next();
        for m in msgs {
            ledger.transfer(Address::SCA, m.to.raw, m.value)?;
        }
        Ok(())
    }

    /// Looks up the raw messages behind a `CrossMsgMeta` CID, serving the
    /// content-resolution protocol (paper §IV-C).
    pub fn resolve_content(&self, cid: &Cid) -> Option<&[CrossMsg]> {
        self.msg_registry.get(cid).map(Vec::as_slice)
    }

    /// Registers externally resolved content (e.g. learned via a push
    /// message) in the local registry.
    ///
    /// # Errors
    ///
    /// Fails if `msgs` do not hash to `cid`.
    pub fn register_content(&mut self, cid: Cid, msgs: Vec<CrossMsg>) -> Result<(), ScaError> {
        if hc_types::merkle::merkle_root(&msgs) != cid {
            return Err(ScaError::ContentMismatch(cid));
        }
        self.msg_registry.insert(cid, msgs);
        Ok(())
    }

    /// Persists a state snapshot CID (`save` function, paper §III-C),
    /// enabling fund/state recovery proofs after a subnet is killed.
    pub fn save_state(&mut self, epoch: ChainEpoch, state: Cid) {
        self.saved_states.push((epoch, state));
    }

    /// Saved state snapshots, oldest first.
    pub fn saved_states(&self) -> &[(ChainEpoch, Cid)] {
        &self.saved_states
    }

    /// Builds the revert message for a cross-message that failed to apply
    /// in this subnet (paper §IV-B) and queues it back towards the original
    /// sender. The reverted value rides the normal cross-net flow, undoing
    /// intermediate supply changes hop by hop.
    ///
    /// # Errors
    ///
    /// Fails if the revert itself cannot be routed.
    pub fn revert_failed_msg<L: Ledger>(
        &mut self,
        ledger: &mut L,
        failed: &CrossMsg,
    ) -> Result<CrossMsg, ScaError> {
        let revert = failed.revert_msg(&self.subnet_id);
        // The failed message's value was minted/credited here on apply;
        // recover it from the SCA escrow path: send it back as a cross-msg
        // funded by the SCA itself.
        if revert.to.subnet == self.subnet_id {
            return Err(ScaError::NotCrossNet);
        }
        if revert.is_top_down() {
            ledger.credit(Address::SCA, revert.value);
            let stamped = self.commit_top_down(revert)?;
            Ok(stamped)
        } else {
            ledger.credit(Address::BURNT_FUNDS, revert.value);
            Ok(self.queue_bottom_up(revert))
        }
    }
}

impl ScaState {
    /// Persists a balance snapshot of a child subnet (the parent-side
    /// `save` function, paper §III-C). The caller (the VM) has already
    /// validated the child's Subnet Actor signature policy over the
    /// snapshot. Only the newest snapshot per child is kept.
    ///
    /// # Errors
    ///
    /// Fails for unregistered children, killed children (nothing new can
    /// be persisted once the subnet is gone), or stale epochs.
    pub fn save_child_snapshot(&mut self, snapshot: StateSnapshot) -> Result<(), ScaError> {
        let info = self
            .subnets
            .get(&snapshot.subnet)
            .ok_or_else(|| ScaError::SubnetNotFound(snapshot.subnet.clone()))?;
        if info.status == SubnetStatus::Killed {
            return Err(ScaError::SubnetNotActive(
                snapshot.subnet.clone(),
                info.status,
            ));
        }
        if let Some(existing) = self.child_snapshots.get(&snapshot.subnet) {
            if snapshot.epoch <= existing.epoch {
                return Err(ScaError::BadCheckpoint(format!(
                    "snapshot at {} does not advance the saved one at {}",
                    snapshot.epoch, existing.epoch
                )));
            }
        }
        self.child_snapshots
            .insert(snapshot.subnet.clone(), snapshot);
        Ok(())
    }

    /// The latest persisted snapshot for a child, if any.
    pub fn child_snapshot(&self, subnet: &SubnetId) -> Option<&StateSnapshot> {
        self.child_snapshots.get(subnet)
    }

    /// Recovers `claimant`'s funds from a killed child subnet against the
    /// persisted snapshot (paper §III-C: "users are able to provide proof
    /// of pending funds held in the subnet"). Pays from the SCA escrow,
    /// debits the child's circulating supply, and records the claim so it
    /// cannot be replayed. Returns the amount paid.
    ///
    /// # Errors
    ///
    /// Fails if the child is not killed, no snapshot exists, the proof
    /// does not verify for `claimant`, the claim was already paid, or the
    /// remaining circulating supply cannot cover it (firewall: recoveries
    /// can never mint value that was not in the subnet).
    pub fn recover_funds<L: Ledger>(
        &mut self,
        ledger: &mut L,
        claimant: Address,
        subnet: &SubnetId,
        proof: &BalanceProof,
    ) -> Result<TokenAmount, ScaError> {
        let info = self
            .subnets
            .get(subnet)
            .ok_or_else(|| ScaError::SubnetNotFound(subnet.clone()))?;
        if info.status != SubnetStatus::Killed {
            return Err(ScaError::BadRoute(format!(
                "funds can only be recovered from killed subnets; {subnet} is {}",
                info.status
            )));
        }
        let snapshot = self
            .child_snapshots
            .get(subnet)
            .ok_or_else(|| ScaError::BadCheckpoint("no snapshot persisted".into()))?;
        if proof.leaf.addr != claimant {
            return Err(ScaError::InvalidFraudProof(
                "proof is for a different address".into(),
            ));
        }
        if !proof.verify(snapshot) {
            return Err(ScaError::ContentMismatch(snapshot.balances_root));
        }
        let key = (subnet.clone(), claimant);
        if self.recovered.contains_key(&key) {
            return Err(ScaError::BadRoute("claim already recovered".into()));
        }
        let amount = proof.leaf.amount;
        let info = self.subnets.get_mut(subnet).expect("checked above");
        if amount > info.circ_supply {
            return Err(ScaError::FirewallViolation {
                subnet: subnet.clone(),
                attempted: amount,
                available: info.circ_supply,
            });
        }
        ledger.transfer(Address::SCA, claimant, amount)?;
        info.circ_supply -= amount;
        self.recovered.insert(key, amount);
        Ok(amount)
    }
}

/// The *complete* canonical encoding of the SCA: every consensus-relevant
/// field, in declaration order, so the state root commits to the exact SCA
/// content and a verified chunk blob reconstructs it bit-for-bit (snapshot
/// state-sync depends on this).
///
/// The single exclusion is `top_down_queue`: it is transport bookkeeping —
/// the parent-side relay buffer of committed top-down messages, pruned
/// *outside* block execution as children acknowledge application (see
/// [`ScaState::prune_top_down`]). Including it would make the state root
/// depend on relay timing rather than executed history. Every message in it
/// is recoverable from the committed top-down history, and only subnets
/// with children ever hold entries.
impl CanonicalEncode for ScaState {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.subnet_id.write_bytes(out);
        self.config.write_bytes(out);
        self.subnets.write_bytes(out);
        self.window_bottom_up.write_bytes(out);
        self.window_propagated.write_bytes(out);
        self.window_child_checks.write_bytes(out);
        self.bottomup_send_nonce.write_bytes(out);
        self.bottomup_nonce.write_bytes(out);
        self.applied_bottomup_nonce.write_bytes(out);
        self.applied_topdown_nonce.write_bytes(out);
        self.prev_checkpoint.write_bytes(out);
        self.msg_registry.write_bytes(out);
        self.saved_states.write_bytes(out);
        self.child_snapshots.write_bytes(out);
        self.recovered.write_bytes(out);
    }
}

impl CanonicalDecode for ScaState {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(ScaState {
            subnet_id: CanonicalDecode::read_bytes(r)?,
            config: CanonicalDecode::read_bytes(r)?,
            subnets: CanonicalDecode::read_bytes(r)?,
            // Not part of the encoding (relay bookkeeping, see the encode
            // impl); a freshly installed SCA starts with empty relay queues.
            top_down_queue: BTreeMap::new(),
            window_bottom_up: CanonicalDecode::read_bytes(r)?,
            window_propagated: CanonicalDecode::read_bytes(r)?,
            window_child_checks: CanonicalDecode::read_bytes(r)?,
            bottomup_send_nonce: CanonicalDecode::read_bytes(r)?,
            bottomup_nonce: CanonicalDecode::read_bytes(r)?,
            applied_bottomup_nonce: CanonicalDecode::read_bytes(r)?,
            applied_topdown_nonce: CanonicalDecode::read_bytes(r)?,
            prev_checkpoint: CanonicalDecode::read_bytes(r)?,
            msg_registry: CanonicalDecode::read_bytes(r)?,
            saved_states: CanonicalDecode::read_bytes(r)?,
            child_snapshots: CanonicalDecode::read_bytes(r)?,
            recovered: CanonicalDecode::read_bytes(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::MapLedger;
    use crate::msg::HcAddress;

    fn subnet(route: &[u64]) -> SubnetId {
        SubnetId::from_route(route.iter().copied().map(Address::new))
    }

    fn haddr(route: &[u64], id: u64) -> HcAddress {
        HcAddress::new(subnet(route), Address::new(id))
    }

    fn funded_ledger(accounts: &[(u64, u64)]) -> MapLedger {
        MapLedger::with_balances(
            accounts
                .iter()
                .map(|&(a, v)| (Address::new(a), TokenAmount::from_whole(v))),
        )
    }

    fn root_sca_with_child() -> (ScaState, MapLedger, SubnetId) {
        let mut sca = ScaState::new(SubnetId::root(), ScaConfig::default());
        let mut ledger = funded_ledger(&[(100, 1000)]);
        let child = sca
            .register_subnet(
                &mut ledger,
                Address::new(100),
                Address::new(200),
                TokenAmount::from_whole(10),
                ChainEpoch::GENESIS,
            )
            .unwrap();
        (sca, ledger, child)
    }

    #[test]
    fn register_freezes_collateral_and_derives_id() {
        let (sca, ledger, child) = root_sca_with_child();
        assert_eq!(child, subnet(&[200]));
        let info = sca.subnet(&child).unwrap();
        assert_eq!(info.collateral, TokenAmount::from_whole(10));
        assert_eq!(info.status, SubnetStatus::Active);
        assert_eq!(ledger.balance(Address::SCA), TokenAmount::from_whole(10));
        assert_eq!(
            ledger.balance(Address::new(100)),
            TokenAmount::from_whole(990)
        );
    }

    #[test]
    fn register_rejects_duplicates_and_low_collateral() {
        let (mut sca, mut ledger, _) = root_sca_with_child();
        assert!(matches!(
            sca.register_subnet(
                &mut ledger,
                Address::new(100),
                Address::new(200),
                TokenAmount::from_whole(10),
                ChainEpoch::GENESIS,
            ),
            Err(ScaError::AlreadyRegistered(_))
        ));
        assert!(matches!(
            sca.register_subnet(
                &mut ledger,
                Address::new(100),
                Address::new(201),
                TokenAmount::from_whole(1),
                ChainEpoch::GENESIS,
            ),
            Err(ScaError::InsufficientCollateral { .. })
        ));
    }

    #[test]
    fn leave_below_min_collateral_deactivates() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        sca.release_collateral(
            &mut ledger,
            &child,
            Address::new(100),
            TokenAmount::from_whole(5),
        )
        .unwrap();
        assert_eq!(sca.subnet(&child).unwrap().status, SubnetStatus::Inactive);
        // Topping back up reactivates.
        sca.add_collateral(
            &mut ledger,
            Address::new(100),
            &child,
            TokenAmount::from_whole(7),
        )
        .unwrap();
        assert_eq!(sca.subnet(&child).unwrap().status, SubnetStatus::Active);
    }

    #[test]
    fn kill_releases_all_collateral() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        let released = sca
            .kill_subnet(&mut ledger, &child, Address::new(100))
            .unwrap();
        assert_eq!(released, TokenAmount::from_whole(10));
        assert_eq!(sca.subnet(&child).unwrap().status, SubnetStatus::Killed);
        assert_eq!(
            ledger.balance(Address::new(100)),
            TokenAmount::from_whole(1000)
        );
        // Dead subnets reject everything.
        assert!(sca
            .kill_subnet(&mut ledger, &child, Address::new(100))
            .is_err());
    }

    #[test]
    fn top_down_send_freezes_value_and_stamps_nonces() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        let to = HcAddress::new(child.clone(), Address::new(300));
        for i in 0..3u64 {
            let msg = CrossMsg::transfer(haddr(&[], 100), to.clone(), TokenAmount::from_whole(1));
            sca.send_cross_msg(&mut ledger, Address::new(100), msg)
                .unwrap();
            let queued = sca.top_down_msgs(&child, Nonce::ZERO);
            assert_eq!(queued.len() as u64, i + 1);
            assert_eq!(queued[i as usize].nonce, Nonce::new(i));
        }
        // Escrow = collateral (10) + 3 × 1.
        assert_eq!(ledger.balance(Address::SCA), TokenAmount::from_whole(13));
        assert_eq!(
            sca.subnet(&child).unwrap().circ_supply,
            TokenAmount::from_whole(3)
        );
        // Partial sync from a later nonce.
        assert_eq!(sca.top_down_msgs(&child, Nonce::new(2)).len(), 1);
    }

    #[test]
    fn send_to_unregistered_child_fails() {
        let (mut sca, mut ledger, _) = root_sca_with_child();
        let msg = CrossMsg::transfer(
            haddr(&[], 100),
            haddr(&[999], 300),
            TokenAmount::from_whole(1),
        );
        assert!(matches!(
            sca.send_cross_msg(&mut ledger, Address::new(100), msg),
            Err(ScaError::SubnetNotFound(_))
        ));
    }

    #[test]
    fn local_message_is_rejected_as_not_cross_net() {
        let (mut sca, mut ledger, _) = root_sca_with_child();
        let msg = CrossMsg::transfer(haddr(&[], 100), haddr(&[], 101), TokenAmount::from_whole(1));
        assert_eq!(
            sca.send_cross_msg(&mut ledger, Address::new(100), msg),
            Err(ScaError::NotCrossNet)
        );
    }

    #[test]
    fn apply_top_down_enforces_nonce_order_and_mints() {
        // Child-side SCA applying messages from its parent.
        let child_id = subnet(&[200]);
        let mut child_sca = ScaState::new(child_id.clone(), ScaConfig::default());
        let mut ledger = MapLedger::new();
        let mut msg0 = CrossMsg::transfer(
            haddr(&[], 100),
            HcAddress::new(child_id.clone(), Address::new(300)),
            TokenAmount::from_whole(2),
        );
        msg0.nonce = Nonce::new(0);
        let mut msg1 = msg0.clone();
        msg1.nonce = Nonce::new(1);

        // Out-of-order application is rejected.
        assert!(matches!(
            child_sca.apply_top_down(&mut ledger, msg1.clone()),
            Err(ScaError::NonceMismatch { .. })
        ));
        child_sca.apply_top_down(&mut ledger, msg0).unwrap();
        child_sca.apply_top_down(&mut ledger, msg1).unwrap();
        assert_eq!(
            ledger.balance(Address::new(300)),
            TokenAmount::from_whole(4)
        );
    }

    #[test]
    fn transit_top_down_rescrows_and_requeues() {
        // Message /root -> /root/a200/a300 applied in /root/a200 (transit).
        let mid = subnet(&[200]);
        let mut sca = ScaState::new(mid.clone(), ScaConfig::default());
        let mut ledger = funded_ledger(&[(100, 100)]);
        // Register the grandchild under this mid subnet.
        let grandchild = sca
            .register_subnet(
                &mut ledger,
                Address::new(100),
                Address::new(300),
                TokenAmount::from_whole(10),
                ChainEpoch::GENESIS,
            )
            .unwrap();
        let mut msg = CrossMsg::transfer(
            haddr(&[], 100),
            HcAddress::new(grandchild.clone(), Address::new(400)),
            TokenAmount::from_whole(5),
        );
        msg.nonce = Nonce::new(0);
        let escrow_before = ledger.balance(Address::SCA);
        sca.apply_top_down(&mut ledger, msg).unwrap();
        assert_eq!(
            ledger.balance(Address::SCA),
            escrow_before + TokenAmount::from_whole(5)
        );
        let queued = sca.top_down_msgs(&grandchild, Nonce::ZERO);
        assert_eq!(queued.len(), 1);
        assert_eq!(queued[0].nonce, Nonce::new(0));
        assert_eq!(
            sca.subnet(&grandchild).unwrap().circ_supply,
            TokenAmount::from_whole(5)
        );
    }

    #[test]
    fn bottom_up_send_burns_and_windows() {
        // SCA of /root/a200 sending up to /root.
        let child_id = subnet(&[200]);
        let mut sca = ScaState::new(child_id.clone(), ScaConfig::default());
        let mut ledger = funded_ledger(&[(300, 10)]);
        let msg = CrossMsg::transfer(
            HcAddress::new(child_id.clone(), Address::new(300)),
            haddr(&[], 100),
            TokenAmount::from_whole(4),
        );
        sca.send_cross_msg(&mut ledger, Address::new(300), msg)
            .unwrap();
        assert_eq!(
            ledger.balance(Address::BURNT_FUNDS),
            TokenAmount::from_whole(4)
        );
        assert_eq!(
            sca.window_bottom_up_counts().get(&SubnetId::root()),
            Some(&1)
        );
        // Cutting the checkpoint produces a meta committing to the group.
        let ckpt = sca.cut_checkpoint(ChainEpoch::new(10), Cid::digest(b"head"));
        assert_eq!(ckpt.cross_msgs.len(), 1);
        let meta = &ckpt.cross_msgs[0];
        assert_eq!(meta.from, child_id);
        assert_eq!(meta.to, SubnetId::root());
        assert_eq!(meta.count, 1);
        // Raw content is registered for resolution.
        let resolved = sca.resolve_content(&meta.msgs_cid).unwrap();
        assert!(meta.matches(resolved));
        // Next window is empty.
        let ckpt2 = sca.cut_checkpoint(ChainEpoch::new(20), Cid::digest(b"head2"));
        assert!(ckpt2.cross_msgs.is_empty());
        assert_eq!(ckpt2.prev, ckpt.cid());
    }

    #[test]
    fn commit_child_checkpoint_routes_metas_and_updates_supply() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        // Fund the child so it has circulating supply to send back.
        let msg = CrossMsg::transfer(
            haddr(&[], 100),
            HcAddress::new(child.clone(), Address::new(300)),
            TokenAmount::from_whole(6),
        );
        sca.send_cross_msg(&mut ledger, Address::new(100), msg)
            .unwrap();
        assert_eq!(
            sca.subnet(&child).unwrap().circ_supply,
            TokenAmount::from_whole(6)
        );

        // Child cuts a checkpoint with a 4-token meta back to root.
        let mut ckpt = Checkpoint::template(child.clone(), ChainEpoch::new(10), Cid::NIL);
        let return_msgs = vec![CrossMsg::transfer(
            HcAddress::new(child.clone(), Address::new(300)),
            haddr(&[], 101),
            TokenAmount::from_whole(4),
        )];
        ckpt.add_cross_meta(CrossMsgMeta::for_group(
            child.clone(),
            SubnetId::root(),
            &return_msgs,
        ));

        let outcome = sca.commit_child_checkpoint(&mut ledger, &ckpt).unwrap();
        assert_eq!(outcome.applied_here.len(), 1);
        assert!(outcome.turnaround.is_empty());
        assert!(outcome.propagated_up.is_empty());
        assert_eq!(outcome.applied_here[0].nonce, Nonce::new(0));
        assert_eq!(
            sca.subnet(&child).unwrap().circ_supply,
            TokenAmount::from_whole(2)
        );
        assert_eq!(sca.subnet(&child).unwrap().prev_checkpoint, ckpt.cid());

        // Applying the resolved messages pays from escrow.
        sca.apply_bottom_up(&mut ledger, &outcome.applied_here[0], &return_msgs)
            .unwrap();
        assert_eq!(
            ledger.balance(Address::new(101)),
            TokenAmount::from_whole(4)
        );
    }

    #[test]
    fn firewall_rejects_overdraw() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        // Inject 3 tokens of circulating supply.
        let msg = CrossMsg::transfer(
            haddr(&[], 100),
            HcAddress::new(child.clone(), Address::new(300)),
            TokenAmount::from_whole(3),
        );
        sca.send_cross_msg(&mut ledger, Address::new(100), msg)
            .unwrap();

        // Compromised child claims to send back 50.
        let mut ckpt = Checkpoint::template(child.clone(), ChainEpoch::new(10), Cid::NIL);
        let forged = vec![CrossMsg::transfer(
            HcAddress::new(child.clone(), Address::new(300)),
            haddr(&[], 666),
            TokenAmount::from_whole(50),
        )];
        ckpt.add_cross_meta(CrossMsgMeta::for_group(
            child.clone(),
            SubnetId::root(),
            &forged,
        ));
        let err = sca.commit_child_checkpoint(&mut ledger, &ckpt).unwrap_err();
        assert!(matches!(err, ScaError::FirewallViolation { .. }));
        // Supply unchanged; checkpoint not recorded.
        assert_eq!(
            sca.subnet(&child).unwrap().circ_supply,
            TokenAmount::from_whole(3)
        );
        assert_eq!(sca.subnet(&child).unwrap().prev_checkpoint, Cid::NIL);
    }

    #[test]
    fn checkpoint_prev_chain_is_enforced() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        let ckpt1 = Checkpoint::template(child.clone(), ChainEpoch::new(10), Cid::NIL);
        sca.commit_child_checkpoint(&mut ledger, &ckpt1).unwrap();
        // A second checkpoint must chain to the first.
        let stale = Checkpoint::template(child.clone(), ChainEpoch::new(20), Cid::NIL);
        assert!(matches!(
            sca.commit_child_checkpoint(&mut ledger, &stale),
            Err(ScaError::BadCheckpoint(_))
        ));
        let good = Checkpoint::template(child.clone(), ChainEpoch::new(20), ckpt1.cid());
        sca.commit_child_checkpoint(&mut ledger, &good).unwrap();
        assert_eq!(sca.subnet(&child).unwrap().committed_checkpoints, 2);
    }

    #[test]
    fn checkpoint_from_non_child_is_rejected() {
        let (mut sca, mut ledger, _) = root_sca_with_child();
        let ckpt = Checkpoint::template(subnet(&[200, 300]), ChainEpoch::new(10), Cid::NIL);
        assert!(matches!(
            sca.commit_child_checkpoint(&mut ledger, &ckpt),
            Err(ScaError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn metas_to_other_branches_propagate_up() {
        // SCA of /root/a200 receives from child /root/a200/a300 a meta
        // destined to /root/a999 (different branch): must propagate up.
        let mid = subnet(&[200]);
        let mut sca = ScaState::new(mid.clone(), ScaConfig::default());
        let mut ledger = funded_ledger(&[(100, 100)]);
        let grandchild = sca
            .register_subnet(
                &mut ledger,
                Address::new(100),
                Address::new(300),
                TokenAmount::from_whole(10),
                ChainEpoch::GENESIS,
            )
            .unwrap();
        // Give the grandchild supply to spend.
        let fund = CrossMsg::transfer(
            HcAddress::new(mid.clone(), Address::new(100)),
            HcAddress::new(grandchild.clone(), Address::new(1)),
            TokenAmount::from_whole(5),
        );
        sca.send_cross_msg(&mut ledger, Address::new(100), fund)
            .unwrap();

        let mut ckpt = Checkpoint::template(grandchild.clone(), ChainEpoch::new(10), Cid::NIL);
        let msgs = vec![CrossMsg::transfer(
            HcAddress::new(grandchild.clone(), Address::new(1)),
            haddr(&[999], 2),
            TokenAmount::from_whole(2),
        )];
        ckpt.add_cross_meta(CrossMsgMeta::for_group(
            grandchild.clone(),
            subnet(&[999]),
            &msgs,
        ));
        let outcome = sca.commit_child_checkpoint(&mut ledger, &ckpt).unwrap();
        assert_eq!(outcome.propagated_up.len(), 1);
        assert!(outcome.applied_here.is_empty());
        assert_eq!(
            sca.subnet(&grandchild).unwrap().circ_supply,
            TokenAmount::from_whole(3)
        );
        // The meta rides the next cut checkpoint.
        let own = sca.cut_checkpoint(ChainEpoch::new(10), Cid::digest(b"h"));
        assert!(own.cross_msgs.iter().any(|m| m.to == subnet(&[999])));
        // And the child's checkpoint CID is in the children tree.
        assert_eq!(own.children.len(), 1);
        assert_eq!(own.children[0].checks, vec![ckpt.cid()]);
    }

    #[test]
    fn meta_to_descendant_is_turnaround() {
        // SCA of /root receives from child /root/a200 a meta destined to
        // /root/a201/... — root is the LCA, so it turns around.
        let (mut sca, mut ledger, child) = root_sca_with_child();
        let other = sca
            .register_subnet(
                &mut ledger,
                Address::new(100),
                Address::new(201),
                TokenAmount::from_whole(10),
                ChainEpoch::GENESIS,
            )
            .unwrap();
        // Fund child so the firewall allows the flow.
        let fund = CrossMsg::transfer(
            haddr(&[], 100),
            HcAddress::new(child.clone(), Address::new(1)),
            TokenAmount::from_whole(5),
        );
        sca.send_cross_msg(&mut ledger, Address::new(100), fund)
            .unwrap();

        let mut ckpt = Checkpoint::template(child.clone(), ChainEpoch::new(10), Cid::NIL);
        let msgs = vec![CrossMsg::transfer(
            HcAddress::new(child.clone(), Address::new(1)),
            HcAddress::new(other.clone(), Address::new(2)),
            TokenAmount::from_whole(2),
        )];
        ckpt.add_cross_meta(CrossMsgMeta::for_group(child.clone(), other.clone(), &msgs));
        let outcome = sca.commit_child_checkpoint(&mut ledger, &ckpt).unwrap();
        assert_eq!(outcome.turnaround.len(), 1);
        assert_eq!(outcome.turnaround[0].to, other);
    }

    #[test]
    fn apply_bottom_up_checks_content_and_nonce() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        let fund = CrossMsg::transfer(
            haddr(&[], 100),
            HcAddress::new(child.clone(), Address::new(300)),
            TokenAmount::from_whole(6),
        );
        sca.send_cross_msg(&mut ledger, Address::new(100), fund)
            .unwrap();
        let mut ckpt = Checkpoint::template(child.clone(), ChainEpoch::new(10), Cid::NIL);
        let msgs = vec![CrossMsg::transfer(
            HcAddress::new(child.clone(), Address::new(300)),
            haddr(&[], 101),
            TokenAmount::from_whole(4),
        )];
        ckpt.add_cross_meta(CrossMsgMeta::for_group(
            child.clone(),
            SubnetId::root(),
            &msgs,
        ));
        let outcome = sca.commit_child_checkpoint(&mut ledger, &ckpt).unwrap();
        let meta = &outcome.applied_here[0];

        // Wrong content.
        let wrong = vec![CrossMsg::transfer(
            HcAddress::new(child.clone(), Address::new(300)),
            haddr(&[], 666),
            TokenAmount::from_whole(4),
        )];
        assert!(matches!(
            sca.apply_bottom_up(&mut ledger, meta, &wrong),
            Err(ScaError::ContentMismatch(_))
        ));

        // Wrong nonce.
        let mut skipped = meta.clone();
        skipped.nonce = Nonce::new(5);
        assert!(matches!(
            sca.apply_bottom_up(&mut ledger, &skipped, &msgs),
            Err(ScaError::NonceMismatch { .. })
        ));

        sca.apply_bottom_up(&mut ledger, meta, &msgs).unwrap();
        // Replay is rejected (nonce already advanced).
        assert!(matches!(
            sca.apply_bottom_up(&mut ledger, meta, &msgs),
            Err(ScaError::NonceMismatch { .. })
        ));
    }

    #[test]
    fn slash_burns_and_rewards_then_deactivates() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        let slashed = sca
            .slash(
                &mut ledger,
                &child,
                TokenAmount::from_whole(4),
                Address::new(500),
            )
            .unwrap();
        assert_eq!(slashed, TokenAmount::from_whole(4));
        assert_eq!(
            ledger.balance(Address::new(500)),
            TokenAmount::from_whole(2)
        );
        assert_eq!(
            ledger.balance(Address::BURNT_FUNDS),
            TokenAmount::from_whole(2)
        );
        // Collateral now 6 < 10 → inactive.
        assert_eq!(sca.subnet(&child).unwrap().status, SubnetStatus::Inactive);
        // Slashing more than remaining collateral is capped.
        let slashed = sca
            .slash(
                &mut ledger,
                &child,
                TokenAmount::from_whole(100),
                Address::new(500),
            )
            .unwrap();
        assert_eq!(slashed, TokenAmount::from_whole(6));
        assert_eq!(sca.subnet(&child).unwrap().collateral, TokenAmount::ZERO);
    }

    #[test]
    fn save_state_records_snapshots() {
        let (mut sca, _ledger, _) = root_sca_with_child();
        sca.save_state(ChainEpoch::new(5), Cid::digest(b"s1"));
        sca.save_state(ChainEpoch::new(9), Cid::digest(b"s2"));
        assert_eq!(sca.saved_states().len(), 2);
        assert_eq!(sca.saved_states()[1].0, ChainEpoch::new(9));
    }

    #[test]
    fn register_content_validates_cid() {
        let (mut sca, _ledger, child) = root_sca_with_child();
        let msgs = vec![CrossMsg::transfer(
            HcAddress::new(child, Address::new(1)),
            haddr(&[], 2),
            TokenAmount::from_whole(1),
        )];
        let cid = hc_types::merkle::merkle_root(&msgs);
        assert!(sca
            .register_content(Cid::digest(b"bogus"), msgs.clone())
            .is_err());
        sca.register_content(cid, msgs.clone()).unwrap();
        assert_eq!(sca.resolve_content(&cid).unwrap(), msgs.as_slice());
    }

    #[test]
    fn inactive_subnet_cannot_receive_top_down() {
        let (mut sca, mut ledger, child) = root_sca_with_child();
        sca.release_collateral(
            &mut ledger,
            &child,
            Address::new(100),
            TokenAmount::from_whole(8),
        )
        .unwrap();
        assert_eq!(sca.subnet(&child).unwrap().status, SubnetStatus::Inactive);
        let msg = CrossMsg::transfer(
            haddr(&[], 100),
            HcAddress::new(child, Address::new(300)),
            TokenAmount::from_whole(1),
        );
        assert!(matches!(
            sca.send_cross_msg(&mut ledger, Address::new(100), msg),
            Err(ScaError::SubnetNotActive(..))
        ));
    }

    #[test]
    fn revert_failed_top_down_goes_back_up() {
        // A message from /root failed in /root/a200: the child SCA emits a
        // bottom-up revert towards the original sender.
        let child_id = subnet(&[200]);
        let mut sca = ScaState::new(child_id.clone(), ScaConfig::default());
        let mut ledger = MapLedger::new();
        let failed = CrossMsg::transfer(
            haddr(&[], 100),
            HcAddress::new(child_id.clone(), Address::new(300)),
            TokenAmount::from_whole(2),
        );
        let revert = sca.revert_failed_msg(&mut ledger, &failed).unwrap();
        assert!(revert.is_bottom_up());
        assert_eq!(revert.to, failed.from);
        assert_eq!(
            sca.window_bottom_up_counts().get(&SubnetId::root()),
            Some(&1)
        );
    }

    #[test]
    fn complete_encoding_round_trips_through_decode() {
        // Populate every encoded field: registered child, bottom-up window,
        // cut checkpoint (msg registry + prev pointer), saved states, child
        // snapshot, recovered claims.
        let child_id = subnet(&[200]);
        let mut sca = ScaState::new(child_id.clone(), ScaConfig::default());
        let mut ledger = funded_ledger(&[(100, 1000), (300, 10)]);
        let child = sca
            .register_subnet(
                &mut ledger,
                Address::new(100),
                Address::new(900),
                TokenAmount::from_whole(10),
                ChainEpoch::GENESIS,
            )
            .unwrap();
        let up = |value| {
            CrossMsg::transfer(
                HcAddress::new(child_id.clone(), Address::new(300)),
                haddr(&[], 100),
                TokenAmount::from_whole(value),
            )
        };
        sca.send_cross_msg(&mut ledger, Address::new(300), up(4))
            .unwrap();
        // The cut populates the msg registry and prev pointer; a second
        // send leaves the *current* window non-empty in the encoding.
        let _ = sca.cut_checkpoint(ChainEpoch::new(10), Cid::digest(b"head"));
        sca.send_cross_msg(&mut ledger, Address::new(300), up(2))
            .unwrap();
        sca.save_state(ChainEpoch::new(10), Cid::digest(b"state"));
        sca.save_child_snapshot(StateSnapshot {
            subnet: child.clone(),
            epoch: ChainEpoch::new(9),
            balances_root: Cid::digest(b"bal"),
            accounts: 2,
            total: TokenAmount::from_whole(5),
        })
        .unwrap();
        sca.recovered
            .insert((child.clone(), Address::new(7)), TokenAmount::from_whole(1));

        let bytes = sca.canonical_bytes();
        let decoded = ScaState::decode(&bytes).expect("canonical bytes decode");
        assert_eq!(
            decoded.canonical_bytes(),
            bytes,
            "decode is an exact inverse"
        );
        assert_eq!(decoded.subnet_id(), sca.subnet_id());
        assert_eq!(decoded.config(), sca.config());
        assert_eq!(decoded.subnet(&child), sca.subnet(&child));
        // The relay queue is deliberately outside the encoding.
        assert!(decoded.top_down_queue.is_empty());

        // Truncation and trailing bytes are rejected.
        assert!(ScaState::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(ScaState::decode(&extended).is_err());
    }
}
