//! The Subnet Actor (SA).
//!
//! A Subnet Actor is the user-deployed contract in the *parent* chain that
//! "implements the core logic for the new subnet" (paper §III-A): the
//! consensus protocol the subnet runs, the policies for joining and leaving,
//! the checkpoint period and signature policy, and the conditions for
//! killing the subnet. SAs are untrusted: all fund custody and hierarchy
//! bookkeeping stays in the SCA, which is why [`SaState::submit_checkpoint`]
//! only *validates* checkpoints and hands them to the SCA.

use std::fmt;

use serde::{Deserialize, Serialize};

use hc_types::crypto::{PolicyError, SignaturePolicy};
use hc_types::{
    decode_fields, encode_fields, Address, ByteReader, CanonicalDecode, CanonicalEncode,
    DecodeError, PublicKey, TokenAmount,
};

use crate::checkpoint::SignedCheckpoint;

/// The consensus protocol a subnet runs. Hierarchical consensus is
/// consensus-agnostic: "each subnet can run its own independent consensus
/// algorithm" (paper §I); this label selects the engine in `hc-consensus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsensusKind {
    /// Deterministic rotating proposer (a delegated/ authority setup).
    RoundRobin,
    /// Simulated proof-of-work: block production is a mining-power lottery
    /// with probabilistic finality.
    ProofOfWork,
    /// Simulated proof-of-stake: stake-weighted leader election.
    ProofOfStake,
    /// Tendermint-style BFT: rounds with 2f+1 quorums and instant finality
    /// (the paper's planned Tendermint integration).
    Tendermint,
    /// Mir-style multi-leader BFT: parallel proposers for high throughput
    /// (the paper's planned MirBFT integration).
    Mir,
}

impl fmt::Display for ConsensusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConsensusKind::RoundRobin => "round-robin",
            ConsensusKind::ProofOfWork => "pow",
            ConsensusKind::ProofOfStake => "pos",
            ConsensusKind::Tendermint => "tendermint",
            ConsensusKind::Mir => "mir",
        };
        f.write_str(s)
    }
}

impl CanonicalEncode for ConsensusKind {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ConsensusKind::RoundRobin => 0,
            ConsensusKind::ProofOfWork => 1,
            ConsensusKind::ProofOfStake => 2,
            ConsensusKind::Tendermint => 3,
            ConsensusKind::Mir => 4,
        });
    }
}

impl CanonicalDecode for ConsensusKind {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::read_bytes(r)? {
            0 => Ok(ConsensusKind::RoundRobin),
            1 => Ok(ConsensusKind::ProofOfWork),
            2 => Ok(ConsensusKind::ProofOfStake),
            3 => Ok(ConsensusKind::Tendermint),
            4 => Ok(ConsensusKind::Mir),
            tag => Err(DecodeError::BadTag {
                what: "ConsensusKind",
                tag,
            }),
        }
    }
}

/// Membership policy for validators joining the subnet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinPolicy {
    /// Anyone staking at least the minimum may join.
    Open {
        /// Minimum stake a validator must put up.
        min_stake: TokenAmount,
    },
    /// Only the listed addresses may join (permissioned subnet).
    Allowlist {
        /// Addresses allowed to join.
        allowed: Vec<Address>,
        /// Minimum stake a validator must put up.
        min_stake: TokenAmount,
    },
}

impl JoinPolicy {
    fn min_stake(&self) -> TokenAmount {
        match self {
            JoinPolicy::Open { min_stake } => *min_stake,
            JoinPolicy::Allowlist { min_stake, .. } => *min_stake,
        }
    }

    fn admits(&self, addr: Address) -> bool {
        match self {
            JoinPolicy::Open { .. } => true,
            JoinPolicy::Allowlist { allowed, .. } => allowed.contains(&addr),
        }
    }
}

impl CanonicalEncode for JoinPolicy {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        match self {
            JoinPolicy::Open { min_stake } => {
                out.push(0);
                min_stake.write_bytes(out);
            }
            JoinPolicy::Allowlist { allowed, min_stake } => {
                out.push(1);
                allowed.write_bytes(out);
                min_stake.write_bytes(out);
            }
        }
    }
}

impl CanonicalDecode for JoinPolicy {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::read_bytes(r)? {
            0 => Ok(JoinPolicy::Open {
                min_stake: TokenAmount::read_bytes(r)?,
            }),
            1 => Ok(JoinPolicy::Allowlist {
                allowed: Vec::<Address>::read_bytes(r)?,
                min_stake: TokenAmount::read_bytes(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "JoinPolicy",
                tag,
            }),
        }
    }
}

/// Static configuration of a Subnet Actor, fixed at deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Consensus protocol the subnet runs.
    pub consensus: ConsensusKind,
    /// Membership policy.
    pub join_policy: JoinPolicy,
    /// Minimum number of validators for the subnet to produce blocks.
    pub min_validators: usize,
    /// Checkpoint period, in the subnet's epochs.
    pub checkpoint_period: u64,
}

impl CanonicalEncode for SaConfig {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.consensus.write_bytes(out);
        self.join_policy.write_bytes(out);
        (self.min_validators as u64).write_bytes(out);
        self.checkpoint_period.write_bytes(out);
    }
}

impl CanonicalDecode for SaConfig {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let consensus = ConsensusKind::read_bytes(r)?;
        let join_policy = JoinPolicy::read_bytes(r)?;
        // `min_validators` is a usize in memory but canonically a u64.
        let min_validators = u64::read_bytes(r)? as usize;
        let checkpoint_period = u64::read_bytes(r)?;
        Ok(SaConfig {
            consensus,
            join_policy,
            min_validators,
            checkpoint_period,
        })
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            consensus: ConsensusKind::RoundRobin,
            join_policy: JoinPolicy::Open {
                min_stake: TokenAmount::from_whole(1),
            },
            min_validators: 1,
            checkpoint_period: 10,
        }
    }
}

/// A validator registered in the Subnet Actor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatorInfo {
    /// The validator's account in the parent chain.
    pub addr: Address,
    /// Signing key used for blocks and checkpoints in the subnet.
    pub key: PublicKey,
    /// Stake the validator put up when joining.
    pub stake: TokenAmount,
}

encode_fields!(ValidatorInfo { addr, key, stake });
decode_fields!(ValidatorInfo { addr, key, stake });

/// Errors returned by Subnet Actor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaError {
    /// The address is not admitted by the join policy.
    NotAllowed(Address),
    /// The stake offered is below the policy minimum.
    InsufficientStake {
        /// Stake offered.
        got: TokenAmount,
        /// Minimum stake required.
        need: TokenAmount,
    },
    /// The validator is already registered.
    AlreadyJoined(Address),
    /// The validator is not registered.
    NotAValidator(Address),
    /// The checkpoint's signatures do not satisfy the signature policy.
    Policy(PolicyError),
    /// The checkpoint is for a different subnet.
    WrongSubnet,
}

impl fmt::Display for SaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaError::NotAllowed(a) => write!(f, "{a} is not admitted by the join policy"),
            SaError::InsufficientStake { got, need } => {
                write!(f, "insufficient stake: got {got}, need {need}")
            }
            SaError::AlreadyJoined(a) => write!(f, "{a} already joined"),
            SaError::NotAValidator(a) => write!(f, "{a} is not a validator"),
            SaError::Policy(e) => write!(f, "checkpoint signature policy failed: {e}"),
            SaError::WrongSubnet => f.write_str("checkpoint targets a different subnet"),
        }
    }
}

impl std::error::Error for SaError {}

impl From<PolicyError> for SaError {
    fn from(e: PolicyError) -> Self {
        SaError::Policy(e)
    }
}

/// The Subnet Actor state: validator set and checkpoint gatekeeping for one
/// child subnet, living in the parent chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaState {
    config: SaConfig,
    validators: Vec<ValidatorInfo>,
}

impl SaState {
    /// Deploys a Subnet Actor with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        SaState {
            config,
            validators: Vec::new(),
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }

    /// The current validator set.
    pub fn validators(&self) -> &[ValidatorInfo] {
        &self.validators
    }

    /// Total stake across validators.
    pub fn total_stake(&self) -> TokenAmount {
        self.validators.iter().map(|v| v.stake).sum()
    }

    /// Returns `true` if the subnet has enough validators to operate.
    pub fn has_quorum(&self) -> bool {
        self.validators.len() >= self.config.min_validators
    }

    /// The signature policy checkpoints must satisfy: a 2/3 threshold over
    /// the current validator keys (or single-signer while only one
    /// validator exists).
    pub fn signature_policy(&self) -> SignaturePolicy {
        match self.validators.as_slice() {
            [only] => SignaturePolicy::Single(only.key),
            all => SignaturePolicy::two_thirds(all.iter().map(|v| v.key).collect()),
        }
    }

    /// Registers a validator, enforcing the join policy.
    ///
    /// The *stake custody* (moving the funds into the SCA) is handled by
    /// the caller; the SA only records membership — it is untrusted and
    /// never holds funds.
    ///
    /// # Errors
    ///
    /// Fails if the address is not admitted, already joined, or under-staked.
    pub fn join(
        &mut self,
        addr: Address,
        key: PublicKey,
        stake: TokenAmount,
    ) -> Result<(), SaError> {
        if !self.config.join_policy.admits(addr) {
            return Err(SaError::NotAllowed(addr));
        }
        if stake < self.config.join_policy.min_stake() {
            return Err(SaError::InsufficientStake {
                got: stake,
                need: self.config.join_policy.min_stake(),
            });
        }
        if self.validators.iter().any(|v| v.addr == addr) {
            return Err(SaError::AlreadyJoined(addr));
        }
        self.validators.push(ValidatorInfo { addr, key, stake });
        Ok(())
    }

    /// Removes a validator, returning the stake to release.
    ///
    /// # Errors
    ///
    /// Fails if the address is not a validator.
    pub fn leave(&mut self, addr: Address) -> Result<TokenAmount, SaError> {
        let idx = self
            .validators
            .iter()
            .position(|v| v.addr == addr)
            .ok_or(SaError::NotAValidator(addr))?;
        Ok(self.validators.remove(idx).stake)
    }

    /// Validates a signed checkpoint against the SA's signature policy.
    /// On success the caller forwards the checkpoint body to the SCA
    /// ([`crate::sca::ScaState::commit_child_checkpoint`]).
    ///
    /// # Errors
    ///
    /// Fails if the signatures do not satisfy the policy.
    pub fn submit_checkpoint(&self, signed: &SignedCheckpoint) -> Result<(), SaError> {
        let policy = self.signature_policy();
        policy.check(&signed.signing_bytes(), &signed.signatures)?;
        Ok(())
    }
}

// The full SA state is canonically encoded so a state-tree chunk determines
// it exactly: snapshot state-sync reconstructs deployed Subnet Actors —
// including their join policy and consensus configuration — from verified
// chunk blobs alone.
encode_fields!(SaState { config, validators });
decode_fields!(SaState { config, validators });

/// An equivocation fraud proof: two *distinct* validly-signed checkpoints
/// extending the same `prev` pointer for the same subnet. Checkpoints "can
/// be used to generate equivocation proofs which, in turn, can be used for
/// penalizing misbehaving entities" (paper §III-B).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FraudProof {
    /// First conflicting signed checkpoint.
    pub a: SignedCheckpoint,
    /// Second conflicting signed checkpoint.
    pub b: SignedCheckpoint,
}

encode_fields!(FraudProof { a, b });
decode_fields!(FraudProof { a, b });

impl FraudProof {
    /// Validates the proof against the subnet's Subnet Actor: both
    /// checkpoints must satisfy the signature policy, come from the same
    /// subnet, extend the same `prev`, and differ.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the proof does not demonstrate
    /// equivocation.
    pub fn validate(&self, sa: &SaState) -> Result<(), String> {
        if self.a.checkpoint.source != self.b.checkpoint.source {
            return Err("checkpoints come from different subnets".into());
        }
        if self.a.checkpoint.prev != self.b.checkpoint.prev {
            return Err("checkpoints extend different prev pointers".into());
        }
        if self.a.checkpoint.cid() == self.b.checkpoint.cid() {
            return Err("checkpoints are identical".into());
        }
        sa.submit_checkpoint(&self.a)
            .map_err(|e| format!("first checkpoint signatures invalid: {e}"))?;
        sa.submit_checkpoint(&self.b)
            .map_err(|e| format!("second checkpoint signatures invalid: {e}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use hc_types::{ChainEpoch, Cid, Keypair, SubnetId};

    fn kp(i: u8) -> Keypair {
        let mut seed = [0u8; 32];
        seed[0] = i;
        seed[1] = 0x5a;
        Keypair::from_seed(seed)
    }

    fn open_sa() -> SaState {
        SaState::new(SaConfig::default())
    }

    #[test]
    fn join_enforces_stake_and_uniqueness() {
        let mut sa = open_sa();
        let k = kp(1);
        assert!(matches!(
            sa.join(Address::new(100), k.public(), TokenAmount::ZERO),
            Err(SaError::InsufficientStake { .. })
        ));
        sa.join(Address::new(100), k.public(), TokenAmount::from_whole(1))
            .unwrap();
        assert!(matches!(
            sa.join(Address::new(100), k.public(), TokenAmount::from_whole(1)),
            Err(SaError::AlreadyJoined(_))
        ));
        assert_eq!(sa.total_stake(), TokenAmount::from_whole(1));
        assert!(sa.has_quorum());
    }

    #[test]
    fn allowlist_policy_excludes_outsiders() {
        let mut sa = SaState::new(SaConfig {
            join_policy: JoinPolicy::Allowlist {
                allowed: vec![Address::new(100)],
                min_stake: TokenAmount::from_whole(1),
            },
            ..SaConfig::default()
        });
        assert!(matches!(
            sa.join(
                Address::new(999),
                kp(2).public(),
                TokenAmount::from_whole(5)
            ),
            Err(SaError::NotAllowed(_))
        ));
        sa.join(
            Address::new(100),
            kp(3).public(),
            TokenAmount::from_whole(5),
        )
        .unwrap();
    }

    #[test]
    fn leave_returns_stake() {
        let mut sa = open_sa();
        sa.join(
            Address::new(100),
            kp(4).public(),
            TokenAmount::from_whole(3),
        )
        .unwrap();
        assert_eq!(
            sa.leave(Address::new(100)).unwrap(),
            TokenAmount::from_whole(3)
        );
        assert!(matches!(
            sa.leave(Address::new(100)),
            Err(SaError::NotAValidator(_))
        ));
        assert!(!sa.has_quorum());
    }

    fn signed(ckpt: Checkpoint, signers: &[&Keypair]) -> SignedCheckpoint {
        let mut sc = SignedCheckpoint::new(ckpt);
        let bytes = sc.signing_bytes();
        for k in signers {
            sc.signatures.add(k.sign(&bytes));
        }
        sc
    }

    #[test]
    fn checkpoint_needs_policy_quorum() {
        let mut sa = open_sa();
        let keys: Vec<Keypair> = (10..14).map(kp).collect();
        for (i, k) in keys.iter().enumerate() {
            sa.join(
                Address::new(100 + i as u64),
                k.public(),
                TokenAmount::from_whole(1),
            )
            .unwrap();
        }
        let ckpt = Checkpoint::template(
            SubnetId::root().child(Address::new(200)),
            ChainEpoch::new(10),
            Cid::NIL,
        );
        // 2 of 4 signatures: below the 2/3 threshold (needs 3).
        let under = signed(ckpt.clone(), &[&keys[0], &keys[1]]);
        assert!(matches!(
            sa.submit_checkpoint(&under),
            Err(SaError::Policy(_))
        ));
        let enough = signed(ckpt, &[&keys[0], &keys[1], &keys[2]]);
        sa.submit_checkpoint(&enough).unwrap();
    }

    #[test]
    fn single_validator_uses_single_policy() {
        let mut sa = open_sa();
        let k = kp(20);
        sa.join(Address::new(100), k.public(), TokenAmount::from_whole(1))
            .unwrap();
        assert_eq!(sa.signature_policy(), SignaturePolicy::Single(k.public()));
    }

    #[test]
    fn fraud_proof_detects_equivocation() {
        let mut sa = open_sa();
        let k = kp(30);
        sa.join(Address::new(100), k.public(), TokenAmount::from_whole(1))
            .unwrap();
        let subnet = SubnetId::root().child(Address::new(200));
        let c1 = Checkpoint::template(subnet.clone(), ChainEpoch::new(10), Cid::NIL);
        let mut c2 = Checkpoint::template(subnet.clone(), ChainEpoch::new(10), Cid::NIL);
        c2.proof = Cid::digest(b"other head"); // conflicting content

        let proof = FraudProof {
            a: signed(c1.clone(), &[&k]),
            b: signed(c2.clone(), &[&k]),
        };
        proof.validate(&sa).unwrap();

        // Identical checkpoints are not equivocation.
        let not_fraud = FraudProof {
            a: signed(c1.clone(), &[&k]),
            b: signed(c1.clone(), &[&k]),
        };
        assert!(not_fraud.validate(&sa).is_err());

        // Different prev pointers are two honest consecutive checkpoints.
        let mut c3 = Checkpoint::template(subnet, ChainEpoch::new(20), c1.cid());
        c3.proof = Cid::digest(b"later");
        let chained = FraudProof {
            a: signed(c1, &[&k]),
            b: signed(c3, &[&k]),
        };
        assert!(chained.validate(&sa).is_err());
    }

    #[test]
    fn fraud_proof_requires_valid_signatures() {
        let mut sa = open_sa();
        let k = kp(31);
        let outsider = kp(32);
        sa.join(Address::new(100), k.public(), TokenAmount::from_whole(1))
            .unwrap();
        let subnet = SubnetId::root().child(Address::new(200));
        let c1 = Checkpoint::template(subnet.clone(), ChainEpoch::new(10), Cid::NIL);
        let mut c2 = c1.clone();
        c2.proof = Cid::digest(b"x");
        let proof = FraudProof {
            a: signed(c1, &[&outsider]),
            b: signed(c2, &[&k]),
        };
        assert!(proof.validate(&sa).is_err());
    }

    #[test]
    fn sa_state_encoding_round_trips_with_config() {
        let mut sa = SaState::new(SaConfig {
            consensus: ConsensusKind::RoundRobin,
            join_policy: JoinPolicy::Allowlist {
                allowed: vec![Address::new(1), Address::new(2)],
                min_stake: TokenAmount::from_whole(2),
            },
            min_validators: 2,
            checkpoint_period: 7,
        });
        sa.join(Address::new(1), kp(1).public(), TokenAmount::from_whole(3))
            .unwrap();
        sa.join(Address::new(2), kp(2).public(), TokenAmount::from_whole(4))
            .unwrap();
        let bytes = sa.canonical_bytes();
        let decoded = SaState::decode(&bytes).expect("canonical bytes decode");
        assert_eq!(decoded, sa, "config and validators survive the round trip");
        assert!(SaState::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
