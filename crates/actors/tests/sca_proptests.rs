//! Property-based tests for the SCA: supply conservation and the firewall
//! bound under randomized cross-net traffic.

use proptest::prelude::*;

use hc_actors::checkpoint::Checkpoint;
use hc_actors::ledger::MapLedger;
use hc_actors::{CrossMsg, CrossMsgMeta, HcAddress, Ledger, ScaConfig, ScaState};
use hc_types::{Address, CanonicalEncode, ChainEpoch, Cid, SubnetId, TokenAmount};

/// A randomized parent-side scenario: fund the child with a sequence of
/// top-down transfers, then let the child return random amounts bottom-up.
#[derive(Debug, Clone)]
struct Scenario {
    deposits: Vec<u64>,    // whole tokens funded into the child
    withdrawals: Vec<u64>, // whole tokens the child tries to send back
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(1u64..50, 1..10),
        prop::collection::vec(1u64..80, 1..10),
    )
        .prop_map(|(deposits, withdrawals)| Scenario {
            deposits,
            withdrawals,
        })
}

proptest! {
    /// The firewall property: no matter what the child claims bottom-up,
    /// the total value it extracts never exceeds what was injected, and the
    /// parent ledger total is conserved throughout.
    #[test]
    fn firewall_bounds_extraction(scenario in arb_scenario()) {
        let mut sca = ScaState::new(SubnetId::root(), ScaConfig {
            min_collateral: TokenAmount::from_whole(1),
            ..ScaConfig::default()
        });
        let user = Address::new(100);
        let mut ledger = MapLedger::with_balances([(user, TokenAmount::from_whole(10_000))]);
        let initial_total = ledger.total();

        let child = sca
            .register_subnet(&mut ledger, user, Address::new(200),
                TokenAmount::from_whole(1), ChainEpoch::GENESIS)
            .unwrap();

        let mut injected = TokenAmount::ZERO;
        for d in &scenario.deposits {
            let msg = CrossMsg::transfer(
                HcAddress::new(SubnetId::root(), user),
                HcAddress::new(child.clone(), Address::new(300)),
                TokenAmount::from_whole(*d),
            );
            sca.send_cross_msg(&mut ledger, user, msg).unwrap();
            injected += TokenAmount::from_whole(*d);
        }
        prop_assert_eq!(sca.subnet(&child).unwrap().circ_supply, injected);

        // The child now sends back random withdrawals across several
        // checkpoints; each either fully succeeds or is rejected.
        let mut extracted = TokenAmount::ZERO;
        let mut prev = Cid::NIL;
        for (i, w) in scenario.withdrawals.iter().enumerate() {
            let amount = TokenAmount::from_whole(*w);
            let mut ckpt = Checkpoint::template(
                child.clone(), ChainEpoch::new((i as u64 + 1) * 10), prev);
            ckpt.proof = Cid::digest(format!("head{i}").as_bytes());
            let msgs = vec![CrossMsg::transfer(
                HcAddress::new(child.clone(), Address::new(300)),
                HcAddress::new(SubnetId::root(), Address::new(101)),
                amount,
            )];
            ckpt.add_cross_meta(CrossMsgMeta::for_group(
                child.clone(), SubnetId::root(), &msgs));

            match sca.commit_child_checkpoint(&mut ledger, &ckpt) {
                Ok(outcome) => {
                    prev = ckpt.cid();
                    let meta = &outcome.applied_here[0];
                    sca.apply_bottom_up(&mut ledger, meta, &msgs).unwrap();
                    extracted += amount;
                }
                Err(e) => {
                    // Only a firewall violation may reject, and only when
                    // the withdrawal exceeds the remaining supply.
                    let is_firewall =
                        matches!(e, hc_actors::ScaError::FirewallViolation { .. });
                    prop_assert!(is_firewall, "unexpected error: {e}");
                    prop_assert!(amount > sca.subnet(&child).unwrap().circ_supply);
                }
            }
        }

        // Firewall bound: extracted <= injected, and bookkeeping agrees.
        prop_assert!(extracted <= injected);
        prop_assert_eq!(
            sca.subnet(&child).unwrap().circ_supply,
            injected - extracted
        );
        // The parent ledger never creates or destroys value.
        prop_assert_eq!(ledger.total(), initial_total);
        // Escrow still covers the remaining circulating supply.
        prop_assert!(ledger.balance(Address::SCA) >= sca.subnet(&child).unwrap().circ_supply);
    }

    /// Top-down nonces are dense and strictly increasing per child,
    /// regardless of interleaving across children.
    #[test]
    fn topdown_nonces_are_dense_per_child(sends in prop::collection::vec(0usize..3, 1..40)) {
        let mut sca = ScaState::new(SubnetId::root(), ScaConfig {
            min_collateral: TokenAmount::from_whole(1),
            ..ScaConfig::default()
        });
        let user = Address::new(100);
        let mut ledger = MapLedger::with_balances([(user, TokenAmount::from_whole(100_000))]);
        let children: Vec<SubnetId> = (0..3)
            .map(|i| {
                sca.register_subnet(&mut ledger, user, Address::new(200 + i),
                    TokenAmount::from_whole(1), ChainEpoch::GENESIS).unwrap()
            })
            .collect();

        for &c in &sends {
            let msg = CrossMsg::transfer(
                HcAddress::new(SubnetId::root(), user),
                HcAddress::new(children[c].clone(), Address::new(300)),
                TokenAmount::from_whole(1),
            );
            sca.send_cross_msg(&mut ledger, user, msg).unwrap();
        }

        for child in &children {
            let queued = sca.top_down_msgs(child, hc_types::Nonce::ZERO);
            for (i, m) in queued.iter().enumerate() {
                prop_assert_eq!(m.nonce, hc_types::Nonce::new(i as u64));
            }
        }
        let total_queued: usize = children
            .iter()
            .map(|c| sca.top_down_msgs(c, hc_types::Nonce::ZERO).len())
            .sum();
        prop_assert_eq!(total_queued, sends.len());
    }

    /// Checkpoint epochs fall exactly on non-zero multiples of the period.
    #[test]
    fn checkpoint_epochs_match_period(period in 1u64..50, epoch in 0u64..1000) {
        let sca = ScaState::new(SubnetId::root(), ScaConfig {
            checkpoint_period: period,
            ..ScaConfig::default()
        });
        let expected = epoch != 0 && epoch % period == 0;
        prop_assert_eq!(sca.is_checkpoint_epoch(ChainEpoch::new(epoch)), expected);
    }

    /// Cut checkpoints always chain: prev pointers form a hash chain.
    #[test]
    fn cut_checkpoints_chain(windows in 1usize..10) {
        let mut sca = ScaState::new(
            SubnetId::root().child(Address::new(200)),
            ScaConfig::default(),
        );
        let mut prev = Cid::NIL;
        for w in 0..windows {
            let ckpt = sca.cut_checkpoint(
                ChainEpoch::new((w as u64 + 1) * 10),
                Cid::digest(format!("h{w}").as_bytes()),
            );
            prop_assert_eq!(ckpt.prev, prev);
            prev = ckpt.cid();
            prop_assert_eq!(sca.prev_checkpoint(), prev);
        }
    }
}
