//! Virtual-time measurement helpers.

use hc_core::{HierarchyRuntime, RuntimeError, UserHandle};
use hc_types::TokenAmount;

/// What [`measure_delivery`] observed for one cross-net transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryMeasurement {
    /// Virtual milliseconds from source-side commit to destination credit.
    pub latency_ms: u64,
    /// Destination-chain epochs that elapsed while the message was in
    /// flight.
    pub dest_epochs: u64,
    /// Hierarchy-wide blocks produced while the message was in flight.
    pub blocks: u64,
}

/// Sends `amount` from `from` to `to` and steps the hierarchy until the
/// destination balance increases by exactly `amount`, measuring the
/// delivery latency in virtual time.
///
/// # Errors
///
/// Fails if the transfer cannot be committed or does not arrive within
/// `max_blocks`.
pub fn measure_delivery(
    rt: &mut HierarchyRuntime,
    from: &UserHandle,
    to: &UserHandle,
    amount: TokenAmount,
    max_blocks: usize,
) -> Result<DeliveryMeasurement, RuntimeError> {
    let balance_before = rt.balance(to);
    let expected = balance_before + amount;
    let dest_epoch_before = rt
        .node(&to.subnet)
        .ok_or_else(|| RuntimeError::UnknownSubnet(to.subnet.clone()))?
        .chain()
        .head_epoch();

    rt.cross_transfer(from, to, amount)?;
    let t0 = rt.now_ms();

    let mut blocks = 0u64;
    while rt.balance(to) < expected {
        if blocks as usize >= max_blocks {
            return Err(RuntimeError::Execution(format!(
                "transfer did not arrive within {max_blocks} blocks"
            )));
        }
        rt.step()?;
        blocks += 1;
    }
    let dest_epoch_after = rt.node(&to.subnet).unwrap().chain().head_epoch();
    Ok(DeliveryMeasurement {
        latency_ms: rt.now_ms() - t0,
        dest_epochs: dest_epoch_after - dest_epoch_before,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    #[test]
    fn top_down_delivery_is_measured() {
        let mut topo = TopologyBuilder::new().users_per_subnet(1).flat(1).unwrap();
        let from = topo.users[&hc_types::SubnetId::root()][0].clone();
        let to = topo.users[&topo.subnets[0]][0].clone();
        let m = measure_delivery(
            &mut topo.rt,
            &from,
            &to,
            TokenAmount::from_atto(500),
            10_000,
        )
        .unwrap();
        assert!(m.latency_ms > 0);
        assert!(m.blocks > 0);
    }

    #[test]
    fn bottom_up_is_slower_than_top_down() {
        let mut topo = TopologyBuilder::new().users_per_subnet(1).flat(1).unwrap();
        let root_user = topo.users[&hc_types::SubnetId::root()][0].clone();
        let child_user = topo.users[&topo.subnets[0]][0].clone();
        let td = measure_delivery(
            &mut topo.rt,
            &root_user,
            &child_user,
            TokenAmount::from_atto(500),
            10_000,
        )
        .unwrap();
        let bu = measure_delivery(
            &mut topo.rt,
            &child_user,
            &root_user,
            TokenAmount::from_atto(100),
            10_000,
        )
        .unwrap();
        // Bottom-up waits for a checkpoint window; top-down does not.
        assert!(
            bu.latency_ms > td.latency_ms,
            "bottom-up {} <= top-down {}",
            bu.latency_ms,
            td.latency_ms
        );
    }
}
