//! Seeded traffic generators — a thin shim over [`hc_workload`].
//!
//! The actual generation/driving engine lives in the `hc-workload` crate
//! ([`hc_workload::ClosedBatch`]); this module keeps the historical
//! `Workload` API that the E10 experiment and older callers use, with the
//! same seeded rng sequence (reports are bit-identical to the
//! pre-`hc-workload` implementation).

use hc_core::RuntimeError;
use hc_types::TokenAmount;
use hc_workload::ClosedBatch;

use crate::topology::FlatTopology;

/// A traffic mix: every generated message is an intra-subnet transfer with
/// probability `1 - cross_ratio`, otherwise a cross-net transfer to a user
/// in a uniformly chosen other subnet.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Messages to submit per subnet.
    pub msgs_per_subnet: usize,
    /// Fraction of cross-net messages, `0.0..=1.0`.
    pub cross_ratio: f64,
    /// Transfer amount (atto) per message.
    pub amount: TokenAmount,
    /// Generator seed.
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            msgs_per_subnet: 200,
            cross_ratio: 0.0,
            amount: TokenAmount::from_atto(1_000),
            seed: 7,
        }
    }
}

/// What a workload run measured, all in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadReport {
    /// Messages submitted.
    pub submitted: usize,
    /// User messages executed successfully (across the hierarchy).
    pub executed_ok: u64,
    /// User messages that failed.
    pub failed: u64,
    /// Cross-net messages applied at their destinations.
    pub cross_applied: u64,
    /// Virtual milliseconds elapsed during the run.
    pub elapsed_ms: u64,
    /// Blocks produced during the run.
    pub blocks: u64,
    /// Aggregate throughput: successful user messages per virtual second,
    /// summed over subnets (subnets run in parallel).
    pub aggregate_tps: f64,
}

impl Workload {
    /// Submits the workload into every subnet's mempool and drives the
    /// hierarchy until it drains, returning virtual-time measurements.
    ///
    /// # Errors
    ///
    /// Propagates submission/step failures.
    pub fn run(&self, topo: &mut FlatTopology) -> Result<WorkloadReport, RuntimeError> {
        let batch = ClosedBatch {
            msgs_per_subnet: self.msgs_per_subnet,
            cross_ratio: self.cross_ratio,
            amount: self.amount,
            seed: self.seed,
            max_fee: 0,
        };
        let subnets = topo.all_subnets();
        let r = batch.run(&mut topo.rt, &subnets, &topo.users)?;
        Ok(WorkloadReport {
            submitted: r.submitted,
            executed_ok: r.executed_ok,
            failed: r.failed,
            cross_applied: r.cross_applied,
            elapsed_ms: r.elapsed_ms,
            blocks: r.blocks,
            aggregate_tps: r.aggregate_tps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    #[test]
    fn local_workload_drains_and_counts() {
        let mut topo = TopologyBuilder::new().users_per_subnet(3).flat(2).unwrap();
        let report = Workload {
            msgs_per_subnet: 50,
            ..Workload::default()
        }
        .run(&mut topo)
        .unwrap();
        assert_eq!(report.submitted, 150); // root + 2 subnets
        assert_eq!(report.executed_ok, 150);
        assert_eq!(report.failed, 0);
        assert!(report.aggregate_tps > 0.0);
        hc_core::audit_quiescent(&topo.rt).unwrap();
    }

    #[test]
    fn cross_workload_delivers_and_conserves() {
        let mut topo = TopologyBuilder::new().users_per_subnet(2).flat(2).unwrap();
        let report = Workload {
            msgs_per_subnet: 20,
            cross_ratio: 0.5,
            ..Workload::default()
        }
        .run(&mut topo)
        .unwrap();
        assert!(report.cross_applied > 0, "some cross traffic must flow");
        hc_core::audit_quiescent(&topo.rt).unwrap();
    }
}
