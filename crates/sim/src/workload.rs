//! Seeded traffic generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hc_core::RuntimeError;
use hc_state::Method;
use hc_types::TokenAmount;

use crate::topology::FlatTopology;

/// A traffic mix: every generated message is an intra-subnet transfer with
/// probability `1 - cross_ratio`, otherwise a cross-net transfer to a user
/// in a uniformly chosen other subnet.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Messages to submit per subnet.
    pub msgs_per_subnet: usize,
    /// Fraction of cross-net messages, `0.0..=1.0`.
    pub cross_ratio: f64,
    /// Transfer amount (atto) per message.
    pub amount: TokenAmount,
    /// Generator seed.
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            msgs_per_subnet: 200,
            cross_ratio: 0.0,
            amount: TokenAmount::from_atto(1_000),
            seed: 7,
        }
    }
}

/// What a workload run measured, all in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadReport {
    /// Messages submitted.
    pub submitted: usize,
    /// User messages executed successfully (across the hierarchy).
    pub executed_ok: u64,
    /// User messages that failed.
    pub failed: u64,
    /// Cross-net messages applied at their destinations.
    pub cross_applied: u64,
    /// Virtual milliseconds elapsed during the run.
    pub elapsed_ms: u64,
    /// Blocks produced during the run.
    pub blocks: u64,
    /// Aggregate throughput: successful user messages per virtual second,
    /// summed over subnets (subnets run in parallel).
    pub aggregate_tps: f64,
}

impl Workload {
    /// Submits the workload into every subnet's mempool and drives the
    /// hierarchy until it drains, returning virtual-time measurements.
    ///
    /// # Errors
    ///
    /// Propagates submission/step failures.
    pub fn run(&self, topo: &mut FlatTopology) -> Result<WorkloadReport, RuntimeError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let subnets = topo.all_subnets();

        let stats_before: Vec<_> = subnets
            .iter()
            .map(|s| topo.rt.node(s).unwrap().stats())
            .collect();
        let t0 = topo.rt.now_ms();

        // Submit the full workload up front (closed-loop batch).
        let mut submitted = 0usize;
        for subnet in &subnets {
            let locals = topo.users.get(subnet).cloned().unwrap_or_default();
            if locals.is_empty() {
                continue;
            }
            for i in 0..self.msgs_per_subnet {
                let from = &locals[i % locals.len()];
                let cross = self.cross_ratio > 0.0 && rng.gen_bool(self.cross_ratio.min(1.0));
                // Cross targets must live in a *different* subnet that has
                // users (the root may carry none in subnet-only sweeps).
                let candidates: Vec<&hc_types::SubnetId> = subnets
                    .iter()
                    .filter(|s| *s != subnet && topo.users.get(s).is_some_and(|u| !u.is_empty()))
                    .collect();
                if cross && !candidates.is_empty() {
                    let other = candidates[rng.gen_range(0..candidates.len())];
                    let peers = &topo.users[other];
                    let to = &peers[rng.gen_range(0..peers.len())];
                    topo.rt.cross_transfer_lazy(from, to, self.amount)?;
                } else {
                    let to = &locals[rng.gen_range(0..locals.len())];
                    if to.addr != from.addr {
                        topo.rt.submit(from, to.addr, self.amount, Method::Send)?;
                    } else {
                        topo.rt.submit(
                            from,
                            from.addr,
                            TokenAmount::ZERO,
                            Method::PutData {
                                key: b"ping".to_vec(),
                                data: i.to_le_bytes().to_vec(),
                            },
                        )?;
                    }
                }
                submitted += 1;
            }
        }

        topo.rt.run_until_quiescent(1_000_000)?;

        let mut executed_ok = 0;
        let mut failed = 0;
        let mut cross_applied = 0;
        let mut blocks = 0;
        let mut aggregate_tps = 0.0;
        for (s, before) in subnets.iter().zip(stats_before) {
            let node = topo.rt.node(s).unwrap();
            let after = node.stats();
            executed_ok += after.user_msgs_ok - before.user_msgs_ok;
            failed += after.user_msgs_failed - before.user_msgs_failed;
            cross_applied += after.cross_applied - before.cross_applied;
            blocks += after.blocks - before.blocks;
            let interval = after.total_interval_ms - before.total_interval_ms;
            if interval > 0 {
                aggregate_tps +=
                    (after.user_msgs_ok - before.user_msgs_ok) as f64 * 1_000.0 / interval as f64;
            }
        }
        Ok(WorkloadReport {
            submitted,
            executed_ok,
            failed,
            cross_applied,
            elapsed_ms: topo.rt.now_ms() - t0,
            blocks,
            aggregate_tps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    #[test]
    fn local_workload_drains_and_counts() {
        let mut topo = TopologyBuilder::new().users_per_subnet(3).flat(2).unwrap();
        let report = Workload {
            msgs_per_subnet: 50,
            ..Workload::default()
        }
        .run(&mut topo)
        .unwrap();
        assert_eq!(report.submitted, 150); // root + 2 subnets
        assert_eq!(report.executed_ok, 150);
        assert_eq!(report.failed, 0);
        assert!(report.aggregate_tps > 0.0);
        hc_core::audit_quiescent(&topo.rt).unwrap();
    }

    #[test]
    fn cross_workload_delivers_and_conserves() {
        let mut topo = TopologyBuilder::new().users_per_subnet(2).flat(2).unwrap();
        let report = Workload {
            msgs_per_subnet: 20,
            cross_ratio: 0.5,
            ..Workload::default()
        }
        .run(&mut topo)
        .unwrap();
        assert!(report.cross_applied > 0, "some cross traffic must flow");
        hc_core::audit_quiescent(&topo.rt).unwrap();
    }
}
