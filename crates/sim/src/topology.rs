//! Hierarchy topology builders.

use hc_actors::sa::{ConsensusKind, SaConfig};
use hc_core::{HierarchyRuntime, RuntimeConfig, RuntimeError, UserHandle};
use hc_types::{SubnetId, TokenAmount};

fn whole(n: u64) -> TokenAmount {
    TokenAmount::from_whole(n)
}

/// A configured hierarchy builder.
///
/// # Example
///
/// ```
/// use hc_sim::TopologyBuilder;
///
/// # fn main() -> Result<(), hc_core::RuntimeError> {
/// let flat = TopologyBuilder::new().users_per_subnet(2).flat(3)?;
/// assert_eq!(flat.subnets.len(), 3);
/// assert_eq!(flat.users[&flat.subnets[0]].len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    config: RuntimeConfig,
    sa_config: SaConfig,
    users_per_subnet: usize,
    user_funds: TokenAmount,
    collateral: TokenAmount,
    validator_stake: TokenAmount,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// A builder with default runtime and subnet configuration.
    pub fn new() -> Self {
        TopologyBuilder {
            config: RuntimeConfig::default(),
            sa_config: SaConfig::default(),
            users_per_subnet: 4,
            user_funds: whole(1_000),
            collateral: whole(10),
            validator_stake: whole(5),
        }
    }

    /// Overrides the runtime configuration.
    pub fn runtime_config(&mut self, config: RuntimeConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Overrides the Subnet Actor configuration used for every subnet.
    pub fn sa_config(&mut self, sa: SaConfig) -> &mut Self {
        self.sa_config = sa;
        self
    }

    /// Sets the consensus engine used by every spawned subnet.
    pub fn consensus(&mut self, kind: ConsensusKind) -> &mut Self {
        self.sa_config.consensus = kind;
        self
    }

    /// Worker threads for wave-parallel block production
    /// ([`HierarchyRuntime::step_wave`]); `1` keeps the runtime fully
    /// sequential.
    pub fn parallelism(&mut self, threads: usize) -> &mut Self {
        self.config.parallelism = threads.max(1);
        self
    }

    /// Sets the checkpoint period of every spawned subnet.
    pub fn checkpoint_period(&mut self, period: u64) -> &mut Self {
        self.sa_config.checkpoint_period = period;
        self
    }

    /// Number of funded users created per subnet (including the root).
    pub fn users_per_subnet(&mut self, n: usize) -> &mut Self {
        self.users_per_subnet = n;
        self
    }

    /// Initial funds per user (minted at root, funded cross-net below).
    pub fn user_funds(&mut self, funds: TokenAmount) -> &mut Self {
        self.user_funds = funds;
        self
    }

    /// Builds `n` sibling subnets directly under the root.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn flat(&self, n: usize) -> Result<FlatTopology, RuntimeError> {
        self.tree(n, 1)
    }

    /// Builds a single chain of subnets of the given depth
    /// (`/root/a/b/c/…`).
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn deep(&self, depth: usize) -> Result<FlatTopology, RuntimeError> {
        self.tree(1, depth)
    }

    /// Builds a `fanout`-ary tree of subnets of the given depth. Depth 0
    /// yields only the root; returns every spawned subnet in BFS order.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn tree(&self, fanout: usize, depth: usize) -> Result<FlatTopology, RuntimeError> {
        let mut rt = HierarchyRuntime::new(self.config.clone());
        let root = SubnetId::root();
        // The banker funds everything; sized for large sweeps.
        let banker = rt.create_user(&root, whole(1_000_000_000))?;

        let mut topo = FlatTopology {
            rt,
            banker: banker.clone(),
            subnets: Vec::new(),
            users: std::collections::BTreeMap::new(),
        };
        topo.add_users(&root, self.users_per_subnet, self.user_funds)?;

        let mut frontier = vec![root];
        for _level in 0..depth {
            let mut next = Vec::new();
            for parent in &frontier {
                for _ in 0..fanout {
                    let subnet = topo.spawn_under(
                        parent,
                        self.sa_config.clone(),
                        self.collateral,
                        self.validator_stake,
                    )?;
                    topo.add_users(&subnet, self.users_per_subnet, self.user_funds)?;
                    topo.subnets.push(subnet.clone());
                    next.push(subnet);
                }
            }
            frontier = next;
        }
        topo.rt.run_until_quiescent(100_000)?;
        Ok(topo)
    }
}

/// A built hierarchy: the runtime plus handles to its subnets and users.
pub struct FlatTopology {
    /// The runtime.
    pub rt: HierarchyRuntime,
    /// A deeply funded root account used to bankroll spawning and funding.
    pub banker: UserHandle,
    /// Spawned subnets in BFS order (the root is *not* included).
    pub subnets: Vec<SubnetId>,
    /// Funded users per subnet (including the root).
    pub users: std::collections::BTreeMap<SubnetId, Vec<UserHandle>>,
}

impl FlatTopology {
    /// Spawns one subnet under `parent`, bankrolled by the banker: a local
    /// creator/validator account is funded cross-net first when the parent
    /// is not the root.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn spawn_under(
        &mut self,
        parent: &SubnetId,
        sa_config: SaConfig,
        collateral: TokenAmount,
        stake: TokenAmount,
    ) -> Result<SubnetId, RuntimeError> {
        let creator = if parent.is_root() {
            self.banker.clone()
        } else {
            let c = self.rt.create_user(parent, TokenAmount::ZERO)?;
            self.rt
                .cross_transfer(&self.banker, &c, collateral + stake + whole(10))?;
            self.rt.run_until_quiescent(50_000)?;
            c
        };
        let validator = (creator.clone(), stake);
        self.rt
            .spawn_subnet(&creator, sa_config, collateral, &[validator])
    }

    /// Creates `n` users in `subnet` with `funds` each (funded cross-net
    /// below the root).
    ///
    /// # Errors
    ///
    /// Propagates funding failures.
    pub fn add_users(
        &mut self,
        subnet: &SubnetId,
        n: usize,
        funds: TokenAmount,
    ) -> Result<(), RuntimeError> {
        let mut users = Vec::with_capacity(n);
        for _ in 0..n {
            if subnet.is_root() {
                users.push(self.rt.create_user(subnet, funds)?);
            } else {
                let u = self.rt.create_user(subnet, TokenAmount::ZERO)?;
                if !funds.is_zero() {
                    self.rt.cross_transfer(&self.banker, &u, funds)?;
                }
                users.push(u);
            }
        }
        if !subnet.is_root() && !funds.is_zero() {
            self.rt.run_until_quiescent(50_000)?;
        }
        self.users.entry(subnet.clone()).or_default().extend(users);
        Ok(())
    }

    /// All subnets including the root.
    pub fn all_subnets(&self) -> Vec<SubnetId> {
        let mut all = vec![SubnetId::root()];
        all.extend(self.subnets.iter().cloned());
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_spawns_siblings_with_funded_users() {
        let topo = TopologyBuilder::new().users_per_subnet(2).flat(3).unwrap();
        assert_eq!(topo.subnets.len(), 3);
        for s in &topo.subnets {
            assert_eq!(s.depth(), 1);
            for u in &topo.users[s] {
                assert_eq!(topo.rt.balance(u), whole(1_000));
            }
        }
        hc_core::audit_quiescent(&topo.rt).unwrap();
    }

    #[test]
    fn deep_topology_builds_a_chain() {
        let topo = TopologyBuilder::new().users_per_subnet(1).deep(3).unwrap();
        assert_eq!(topo.subnets.len(), 3);
        assert_eq!(topo.subnets[2].depth(), 3);
        assert!(topo.subnets[1].is_ancestor_of(&topo.subnets[2]));
        hc_core::audit_quiescent(&topo.rt).unwrap();
    }

    #[test]
    fn tree_topology_has_fanout_times_levels() {
        let topo = TopologyBuilder::new()
            .users_per_subnet(1)
            .tree(2, 2)
            .unwrap();
        // 2 children + 4 grandchildren.
        assert_eq!(topo.subnets.len(), 6);
        assert_eq!(topo.subnets.iter().filter(|s| s.depth() == 2).count(), 4);
    }
}
