//! # hc-sim — evaluation substrate for hierarchical consensus
//!
//! Deterministic simulation tooling on top of
//! [`hc_core::HierarchyRuntime`]:
//!
//! * [`topology`] — hierarchy builders (flat sibling sets, deep chains,
//!   trees), pre-funded with users.
//! * [`workload`] — seeded traffic generators mixing intra-subnet and
//!   cross-net transfers (a thin shim over the `hc-workload` crate).
//! * [`metrics`] — virtual-time throughput/latency measurement helpers.
//! * [`experiments`] — the E1–E10 experiment drivers from DESIGN.md, each
//!   returning printable rows; the `hc-bench` crate wraps them in Criterion
//!   benchmarks and the report binary.
//! * [`table`] — plain-text table rendering for experiment output.
//!
//! Everything runs in *virtual time*: experiments measure protocol
//! behaviour (blocks, epochs, simulated milliseconds), not host wall-clock,
//! so results are exactly reproducible under a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod table;
pub mod topology;
pub mod workload;

pub use metrics::{measure_delivery, DeliveryMeasurement};
pub use table::Table;
pub use topology::{FlatTopology, TopologyBuilder};
pub use workload::{Workload, WorkloadReport};
