//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use hc_sim::Table;
///
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(&["1".into(), "2".into()]);
/// let s = t.to_string();
/// assert!(s.contains("demo"));
/// assert!(s.contains('1'));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a free-form note line printed under the table.
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.notes.push(text.to_owned());
        self
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a boolean as a check/cross for table cells.
pub fn yes_no(v: bool) -> String {
    if v {
        "yes".into()
    } else {
        "NO".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "2000000".into()]);
        let s = t.to_string();
        assert!(s.lines().count() >= 4);
        // All data lines have the same length.
        let lens: Vec<usize> = s.lines().skip(1).map(str::len).collect();
        assert_eq!(lens[0], lens[2]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("t", &["a"]).row(&["1".into(), "2".into()]);
    }
}
