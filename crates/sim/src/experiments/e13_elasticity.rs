//! E13 — elastic scale-out under an open-loop load ramp.
//!
//! The paper's core promise is that the hierarchy *grows* to absorb load
//! (§III-C): when one subnet saturates, spawn a child, migrate the hot
//! accounts and their funds down, and serve the same traffic across more
//! chains. This experiment quantifies that promise end to end: a seeded
//! open-loop ramp (Zipfian popularity over a huge lazily-materialized
//! account population) is driven twice on the same seed — once against a
//! static single-subnet hierarchy, once with the
//! [`hc_core::ElasticController`] polled between waves — and the
//! sustained committed-messages-per-round tail at the ramp's peak is
//! compared. Elasticity must win by ≥2× while preserving every logical
//! account's summed balance across its homes.

use std::collections::BTreeMap;

use hc_core::{ElasticConfig, ElasticController, HierarchyRuntime, RuntimeConfig, RuntimeError};
use hc_types::{Address, SubnetId, TokenAmount};
use hc_workload::{OpenLoop, RampProfile};

use crate::table::{f2, Table};

/// E13 parameters.
#[derive(Debug, Clone)]
pub struct E13Params {
    /// Logical account population (lazily materialized).
    pub population: u64,
    /// Zipf exponent of account popularity.
    pub zipf_exponent: f64,
    /// Injection rounds.
    pub rounds: u64,
    /// Arrival rate at the first round.
    pub start_rate: u64,
    /// Arrival rate at the last round (the ramp's peak).
    pub peak_rate: u64,
    /// Messages per block — the per-subnet service ceiling the ramp must
    /// exceed for elasticity to matter.
    pub block_capacity: usize,
    /// Rounds in the sustained-throughput tail window.
    pub tail_window: usize,
    /// Seed shared by both runs.
    pub seed: u64,
}

impl Default for E13Params {
    fn default() -> Self {
        E13Params {
            population: 1_000_000,
            zipf_exponent: 1.1,
            rounds: 120,
            start_rate: 10,
            peak_rate: 250,
            block_capacity: 40,
            tail_window: 20,
            seed: 31,
        }
    }
}

/// One E13 run (static or elastic).
#[derive(Debug, Clone, PartialEq)]
pub struct E13Row {
    /// `"static"` or `"elastic"`.
    pub mode: &'static str,
    /// Mean committed user messages per round over the ramp's tail.
    pub sustained_peak: f64,
    /// Total user messages committed (injection + drain).
    pub committed: u64,
    /// Messages submitted (open loop: independent of service).
    pub submitted: u64,
    /// Subnets alive at the end of the run.
    pub subnets_final: usize,
    /// Child subnets the controller spawned.
    pub splits: u64,
    /// Accounts whose routing migrated to a child.
    pub migrations: u64,
    /// Logical accounts materialized (working set of the Zipf draw).
    pub accounts: u64,
    /// Virtual ms for injection plus drain.
    pub elapsed_ms: u64,
}

/// The outcome of the E13 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct E13Outcome {
    /// The static and elastic rows.
    pub rows: Vec<E13Row>,
    /// `sustained_peak(elastic) / sustained_peak(static)`.
    pub speedup: f64,
    /// Whether every logical account's summed balance across its homes in
    /// the elastic run equals its static-run balance.
    pub balances_match: bool,
}

fn runtime(params: &E13Params) -> HierarchyRuntime {
    let mut config = RuntimeConfig {
        seed: params.seed,
        ..RuntimeConfig::default()
    };
    config.engine_params.block_capacity = params.block_capacity;
    HierarchyRuntime::new(config)
}

fn workload(params: &E13Params) -> OpenLoop {
    OpenLoop {
        population: params.population,
        zipf_exponent: params.zipf_exponent,
        rounds: params.rounds,
        ramp: RampProfile::Linear {
            start: params.start_rate,
            end: params.peak_rate,
        },
        seed: params.seed,
        ..OpenLoop::default()
    }
}

/// Sums `addr`'s balance over every subnet it has a home in.
fn summed_balance(rt: &HierarchyRuntime, addr: Address) -> TokenAmount {
    let mut total = TokenAmount::ZERO;
    for subnet in rt.subnets() {
        total += rt.balance(&hc_core::UserHandle {
            subnet: subnet.clone(),
            addr,
        });
    }
    total
}

/// Runs the E13 comparison: same seed, static vs elastic.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e13_run(params: &E13Params) -> Result<E13Outcome, RuntimeError> {
    // Static baseline: all traffic lands on the root, forever.
    let mut static_rt = runtime(params);
    let static_report = workload(params).run(&mut static_rt, None)?;

    // Elastic run: an operator bankrolls splits; the controller is polled
    // every wave. The operator is created *first* so the workload's lazy
    // account materialization sees the same creation order in both runs
    // (logical index is the cross-run key, not the address).
    let mut elastic_rt = runtime(params);
    let operator = elastic_rt.create_user(&SubnetId::root(), TokenAmount::from_whole(1_000))?;
    let mut ctrl = ElasticController::new(
        operator,
        ElasticConfig {
            split_backlog: params.block_capacity * 4,
            ..ElasticConfig::default()
        },
    );
    let elastic_report = workload(params).run(&mut elastic_rt, Some(&mut ctrl))?;

    // Balance parity, keyed by logical account index: the elastic run may
    // have spread an account over several homes (root + children it was
    // migrated to), but the *sum* must equal the static run's balance —
    // migration moves funds, it never mints or burns them.
    let static_by_idx: BTreeMap<u64, Address> = static_report.touched.iter().copied().collect();
    let mut balances_match = static_report.touched.len() == elastic_report.touched.len();
    for (idx, elastic_addr) in &elastic_report.touched {
        let Some(static_addr) = static_by_idx.get(idx) else {
            balances_match = false;
            break;
        };
        let static_total = summed_balance(&static_rt, *static_addr);
        let elastic_total = summed_balance(&elastic_rt, *elastic_addr);
        if static_total != elastic_total {
            balances_match = false;
            break;
        }
    }

    let stats = ctrl.stats();
    let rows = vec![
        E13Row {
            mode: "static",
            sustained_peak: static_report.sustained_tail(params.tail_window),
            committed: static_report.committed(),
            submitted: static_report.submitted,
            subnets_final: static_rt.subnets().count(),
            splits: 0,
            migrations: 0,
            accounts: static_report.accounts_materialized,
            elapsed_ms: static_report.elapsed_ms,
        },
        E13Row {
            mode: "elastic",
            sustained_peak: elastic_report.sustained_tail(params.tail_window),
            committed: elastic_report.committed(),
            submitted: elastic_report.submitted,
            subnets_final: elastic_rt.subnets().count(),
            splits: stats.splits,
            migrations: stats.migrations_settled,
            accounts: elastic_report.accounts_materialized,
            elapsed_ms: elastic_report.elapsed_ms,
        },
    ];
    let speedup = if rows[0].sustained_peak > 0.0 {
        rows[1].sustained_peak / rows[0].sustained_peak
    } else {
        0.0
    };
    Ok(E13Outcome {
        rows,
        speedup,
        balances_match,
    })
}

/// Renders the E13 comparison.
pub fn table(outcome: &E13Outcome) -> Table {
    let mut t = Table::new(
        "E13: sustained throughput under a load ramp, static vs elastic hierarchy",
        &[
            "mode",
            "sustained msgs/round",
            "committed",
            "submitted",
            "subnets",
            "splits",
            "migrations",
            "accounts",
            "elapsed ms",
        ],
    );
    for r in &outcome.rows {
        t.row(&[
            r.mode.to_string(),
            f2(r.sustained_peak),
            r.committed.to_string(),
            r.submitted.to_string(),
            r.subnets_final.to_string(),
            r.splits.to_string(),
            r.migrations.to_string(),
            r.accounts.to_string(),
            r.elapsed_ms.to_string(),
        ]);
    }
    t.note(&format!(
        "speedup {:.2}x, balances match: {}",
        outcome.speedup, outcome.balances_match
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> E13Params {
        E13Params {
            population: 100_000,
            rounds: 60,
            start_rate: 5,
            peak_rate: 150,
            block_capacity: 25,
            tail_window: 12,
            ..E13Params::default()
        }
    }

    #[test]
    fn elasticity_beats_static_and_preserves_balances() {
        let outcome = e13_run(&quick_params()).unwrap();
        assert!(
            outcome.speedup >= 2.0,
            "elastic sustained throughput must be >= 2x static, got {:.2}x\n{:?}",
            outcome.speedup,
            outcome.rows
        );
        assert!(outcome.balances_match, "migration must preserve balances");
        assert!(outcome.rows[1].splits >= 1, "the controller must split");
        assert!(outcome.rows[1].migrations >= 1);
    }

    #[test]
    fn e13_is_bit_identical_across_runs() {
        let a = e13_run(&quick_params()).unwrap();
        let b = e13_run(&quick_params()).unwrap();
        assert_eq!(a, b);
    }
}
