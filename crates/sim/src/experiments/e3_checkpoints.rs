//! E3 — checkpoint load on the parent chain (paper §III-B).
//!
//! Every child commits one checkpoint per period into the parent chain.
//! Expected shape: parent load (messages and bytes per virtual second)
//! grows linearly with the child count and inversely with the period, and
//! is *independent of the children's internal transaction volume* — the
//! scalability core of the design.

use hc_core::RuntimeError;
use hc_types::SubnetId;

use crate::table::{f2, Table};
use crate::topology::TopologyBuilder;
use crate::workload::Workload;

/// E3 parameters.
#[derive(Debug, Clone)]
pub struct E3Params {
    /// Child counts to sweep.
    pub child_counts: Vec<usize>,
    /// Checkpoint periods (epochs) to sweep.
    pub periods: Vec<u64>,
    /// Child blocks to simulate per point.
    pub child_blocks: usize,
    /// Internal (never cross-net) messages per child, to demonstrate
    /// independence from internal volume.
    pub internal_msgs: usize,
}

impl Default for E3Params {
    fn default() -> Self {
        E3Params {
            child_counts: vec![1, 2, 4, 8, 16, 32, 64],
            periods: vec![5, 10, 20],
            child_blocks: 60,
            internal_msgs: 100,
        }
    }
}

/// One sweep point of E3.
#[derive(Debug, Clone, PartialEq)]
pub struct E3Row {
    /// Number of children.
    pub children: usize,
    /// Checkpoint period, epochs.
    pub period: u64,
    /// Checkpoints the parent committed.
    pub checkpoints: u64,
    /// Bytes of checkpoints committed on the parent chain.
    pub bytes: u64,
    /// Parent-chain checkpoint bytes per virtual second.
    pub bytes_per_s: f64,
    /// Internal child messages executed (do not appear on the parent).
    pub child_internal_msgs: u64,
}

/// Runs the E3 sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e3_run(params: &E3Params) -> Result<Vec<E3Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &period in &params.periods {
        for &children in &params.child_counts {
            let mut topo = TopologyBuilder::new()
                .users_per_subnet(2)
                .checkpoint_period(period)
                .flat(children)?;
            // Internal-only load inside the children.
            topo.users.remove(&SubnetId::root());
            Workload {
                msgs_per_subnet: params.internal_msgs,
                cross_ratio: 0.0,
                ..Workload::default()
            }
            .run(&mut topo)?;

            let root_before = topo.rt.node(&SubnetId::root()).unwrap().stats();
            let t0 = topo.rt.now_ms();
            // Drive every child through the same number of blocks.
            for _ in 0..params.child_blocks {
                for s in &topo.subnets.clone() {
                    topo.rt.tick_subnet(s)?;
                }
            }
            topo.rt.run_until_quiescent(100_000)?;

            let root_after = topo.rt.node(&SubnetId::root()).unwrap().stats();
            let elapsed_ms = (topo.rt.now_ms() - t0).max(1);
            let internal: u64 = topo
                .subnets
                .iter()
                .map(|s| topo.rt.node(s).unwrap().stats().user_msgs_ok)
                .sum();
            rows.push(E3Row {
                children,
                period,
                checkpoints: root_after.checkpoints_committed - root_before.checkpoints_committed,
                bytes: root_after.checkpoint_bytes - root_before.checkpoint_bytes,
                bytes_per_s: (root_after.checkpoint_bytes - root_before.checkpoint_bytes) as f64
                    * 1_000.0
                    / elapsed_ms as f64,
                child_internal_msgs: internal,
            });
        }
    }
    Ok(rows)
}

/// Renders E3 rows.
pub fn table(rows: &[E3Row]) -> Table {
    let mut t = Table::new(
        "E3: parent-chain checkpoint load vs children and period",
        &[
            "children",
            "period",
            "checkpoints",
            "bytes",
            "bytes/s",
            "child internal msgs",
        ],
    );
    for r in rows {
        t.row(&[
            r.children.to_string(),
            r.period.to_string(),
            r.checkpoints.to_string(),
            r.bytes.to_string(),
            f2(r.bytes_per_s),
            r.child_internal_msgs.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_load_scales_with_children_not_internal_volume() {
        let rows = e3_run(&E3Params {
            child_counts: vec![1, 4],
            periods: vec![5],
            child_blocks: 20,
            internal_msgs: 50,
        })
        .unwrap();
        let one = &rows[0];
        let four = &rows[1];
        // More children → proportionally more checkpoints on the parent.
        assert!(four.checkpoints >= 3 * one.checkpoints);
        // Internal volume never reaches the parent: checkpoint count is
        // driven by blocks/period only.
        assert!(one.checkpoints >= (20 / 5) - 1);
    }

    #[test]
    fn longer_period_means_fewer_checkpoints() {
        let rows = e3_run(&E3Params {
            child_counts: vec![2],
            periods: vec![5, 20],
            child_blocks: 40,
            internal_msgs: 0,
        })
        .unwrap();
        assert!(rows[0].checkpoints > rows[1].checkpoints);
    }
}
