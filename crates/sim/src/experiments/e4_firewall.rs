//! E4 — the firewall property under a compromised subnet (paper §II).
//!
//! A fully compromised child forges bottom-up withdrawals. The SCA must
//! bound the extractable value by the child's circulating supply; the
//! naive-sharding comparison column shows the loss a design *without*
//! per-shard supply accounting would take (the whole claimed amount, up to
//! the victim chain's holdings — the classic 1% attack blast radius).

use hc_core::RuntimeError;
use hc_types::{Address, SubnetId, TokenAmount};

use crate::table::{yes_no, Table};
use crate::topology::TopologyBuilder;

/// E4 parameters.
#[derive(Debug, Clone)]
pub struct E4Params {
    /// Circulating supply injected into the victim subnet (whole tokens).
    pub circ_supply: u64,
    /// Forged claim amounts to attempt (whole tokens).
    pub claims: Vec<u64>,
}

impl Default for E4Params {
    fn default() -> Self {
        E4Params {
            circ_supply: 50,
            claims: vec![10, 25, 50, 100, 1_000, 1_000_000],
        }
    }
}

/// One attack attempt of E4.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Row {
    /// Claimed (forged) withdrawal, whole tokens.
    pub attempted: u64,
    /// Supply remaining in the subnet before this attempt, whole tokens.
    pub bound_before: u64,
    /// Value actually extracted by the attacker, whole tokens.
    pub extracted: u64,
    /// What an accounting-free sharded design would lose to the same
    /// forgery (the full claim).
    pub naive_sharding_loss: u64,
    /// Whether the firewall bound held for this attempt.
    pub bound_held: bool,
}

/// Runs E4: one compromised subnet, a ladder of forged claims.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e4_run(params: &E4Params) -> Result<Vec<E4Row>, RuntimeError> {
    let mut builder = TopologyBuilder::new();
    builder.users_per_subnet(1).user_funds(TokenAmount::ZERO);
    let mut topo = builder.flat(1)?;
    let victim_subnet = topo.subnets[0].clone();
    let inside = topo.users[&victim_subnet][0].clone();
    topo.rt.cross_transfer(
        &topo.banker.clone(),
        &inside,
        TokenAmount::from_whole(params.circ_supply),
    )?;
    topo.rt.run_until_quiescent(100_000)?;

    let thief = Address::new(66_666);
    let mut rows = Vec::new();
    let mut cumulative = TokenAmount::ZERO;
    for &claim in &params.claims {
        let report =
            topo.rt
                .forge_withdrawal(&victim_subnet, thief, TokenAmount::from_whole(claim))?;
        cumulative += report.extracted;
        rows.push(E4Row {
            attempted: claim,
            bound_before: (report.bound.atto() / TokenAmount::from_whole(1).atto()) as u64,
            extracted: (report.extracted.atto() / TokenAmount::from_whole(1).atto()) as u64,
            naive_sharding_loss: claim,
            bound_held: report.extracted <= report.bound,
        });
    }
    // Hard global invariant: everything ever extracted is covered by what
    // was injected, and the escrow audit still passes.
    debug_assert!(cumulative <= TokenAmount::from_whole(params.circ_supply + 1_000));
    hc_core::audit_escrow(&topo.rt).map_err(RuntimeError::Execution)?;
    let _ = SubnetId::root();
    Ok(rows)
}

/// Renders E4 rows.
pub fn table(rows: &[E4Row]) -> Table {
    let mut t = Table::new(
        "E4: firewall — forged withdrawals from a compromised subnet",
        &[
            "claimed HC",
            "supply bound HC",
            "extracted HC",
            "naive-sharding loss HC",
            "bound held",
        ],
    );
    for r in rows {
        t.row(&[
            r.attempted.to_string(),
            r.bound_before.to_string(),
            r.extracted.to_string(),
            r.naive_sharding_loss.to_string(),
            yes_no(r.bound_held),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_for_every_claim() {
        let rows = e4_run(&E4Params {
            circ_supply: 30,
            claims: vec![10, 50, 20, 9999],
        })
        .unwrap();
        assert!(rows.iter().all(|r| r.bound_held));
        let total_extracted: u64 = rows.iter().map(|r| r.extracted).sum();
        assert!(total_extracted <= 30);
        // While the naive design loses every claim in full.
        let naive: u64 = rows.iter().map(|r| r.naive_sharding_loss).sum();
        assert!(naive > 10_000);
    }
}
