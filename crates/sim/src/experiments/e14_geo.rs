//! E14 — geo-aware placement under region-scoped disasters.
//!
//! The PR-5 fault machinery injected faults by topic and subscriber; real
//! deployments fail by *place*. This experiment places a two-parent,
//! two-child hierarchy on a three-region geography (a trans-oceanic
//! latency/loss matrix under the base per-topic model) in two ways —
//! *co-located* (every subnet follows its parent into the root's region)
//! and *geo-spread* (round-robin across regions) — and drives the E2/E3
//! workloads (top-down and bottom-up transfers, periodic checkpoints)
//! through region-scoped disasters: a whole-region outage (every node in
//! the region crashed and blackholed, healed on schedule), an
//! inter-region partition, and a degraded trans-oceanic link.
//!
//! Measured per cell: post-heal top-down and bottom-up (checkpoint
//! settlement) latency, the delivered-latency histogram of the parent's
//! gossip topic (p50/p99), checkpoints committed at the root, and the
//! recovery counters. Every seed must *reconverge*: exact balances, clean
//! supply audits, every region-crashed node caught back up through
//! re-validated replay (exact state roots by construction), and a network
//! ledger with zero unaccounted messages.

use hc_actors::sa::SaConfig;
use hc_core::{
    audit_escrow, audit_quiescent, HierarchyRuntime, PlacementPolicy, RuntimeConfig, RuntimeError,
    SyncMode, UserHandle,
};
use hc_net::{
    FaultPlan, PartitionPolicy, RegionDegrade, RegionLink, RegionMap, RegionOutage, RegionPartition,
};
use hc_types::{SubnetId, TokenAmount};

use crate::metrics::measure_delivery;
use crate::table::{f2, yes_no, Table};

fn whole(n: u64) -> TokenAmount {
    TokenAmount::from_whole(n)
}

/// The three regions of the E14 geography.
pub const E14_REGIONS: [&str; 3] = ["us-east", "eu-west", "ap-south"];

/// The disaster scenarios E14 sweeps.
pub const E14_SCENARIOS: [&str; 4] = ["none", "outage", "partition", "degrade"];

/// E14 parameters.
#[derive(Debug, Clone)]
pub struct E14Params {
    /// Placement policies compared (labelled `co-located` /
    /// `geo-spread` / `uniform` in the rows).
    pub placements: Vec<PlacementPolicy>,
    /// Disaster scenarios (subset of [`E14_SCENARIOS`]).
    pub scenarios: Vec<&'static str>,
    /// Seeds swept per cell; every seed must reconverge.
    pub seeds: Vec<u64>,
    /// Checkpoint period (epochs) of every subnet.
    pub checkpoint_period: u64,
}

impl Default for E14Params {
    fn default() -> Self {
        E14Params {
            placements: vec![PlacementPolicy::FollowParent, PlacementPolicy::RoundRobin],
            scenarios: E14_SCENARIOS.to_vec(),
            seeds: vec![11, 12, 13],
            checkpoint_period: 5,
        }
    }
}

/// One E14 cell: a (placement, scenario) pair aggregated over the seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct E14Row {
    /// Placement label.
    pub placement: &'static str,
    /// Disaster scenario.
    pub scenario: &'static str,
    /// Seeds aggregated.
    pub seeds: usize,
    /// Mean post-heal top-down delivery latency, virtual ms.
    pub topdown_ms: f64,
    /// Mean post-heal bottom-up (checkpoint-settlement) latency,
    /// virtual ms.
    pub bottomup_ms: f64,
    /// Mean p50 of the parent-topic delivered-latency histogram, ms.
    pub gossip_p50_ms: f64,
    /// Mean p99 of the parent-topic delivered-latency histogram, ms.
    pub gossip_p99_ms: f64,
    /// Mean checkpoints committed at the root over the run.
    pub checkpoints: f64,
    /// Nodes crashed by region outages, summed over the seeds.
    pub region_crashes: u64,
    /// Region outages fully healed, summed over the seeds.
    pub region_heals: u64,
    /// Member rejoins deferred behind a still-recovering parent, summed.
    pub deferred_rejoins: u64,
    /// Messages destroyed by region rules (partition drops + lossy-link
    /// losses), summed over the seeds — every one accounted in the
    /// [`hc_net::NetStats`] ledger, and the cell must reconverge anyway.
    pub region_dropped: u64,
    /// Every seed reconverged: exact balances, clean audits, all crashed
    /// members caught up through re-validated replay, zero unaccounted
    /// messages in the network ledger.
    pub converged: bool,
}

/// The E14 geography: three regions with an asymmetric-capable (here
/// symmetric) trans-oceanic latency/jitter/loss matrix layered under the
/// base per-topic model.
pub fn geography() -> RegionMap {
    let mut map = RegionMap::named(&E14_REGIONS);
    map.set_link_symmetric(
        "us-east",
        "eu-west",
        RegionLink {
            extra_delay_ms: 40,
            jitter_ms: 10,
            loss_rate: 0.0,
            delay_factor_pct: 120,
        },
    );
    map.set_link_symmetric(
        "us-east",
        "ap-south",
        RegionLink {
            extra_delay_ms: 110,
            jitter_ms: 20,
            loss_rate: 0.01,
            delay_factor_pct: 150,
        },
    );
    map.set_link_symmetric(
        "eu-west",
        "ap-south",
        RegionLink {
            extra_delay_ms: 80,
            jitter_ms: 15,
            loss_rate: 0.01,
            delay_factor_pct: 140,
        },
    );
    map
}

fn placement_label(p: PlacementPolicy) -> &'static str {
    match p {
        PlacementPolicy::Uniform => "uniform",
        PlacementPolicy::RoundRobin => "geo-spread",
        PlacementPolicy::FollowParent => "co-located",
    }
}

/// Root + two parents + one child each, placed by `placement` on the E14
/// geography, plus the users the workload drives.
struct GeoWorld {
    rt: HierarchyRuntime,
    alice: UserHandle,
    /// User in `c1` (the deep endpoint of the measured legs).
    bob: UserHandle,
    /// User in `c2` (the outage target's deep endpoint).
    carol: UserHandle,
    p1: SubnetId,
    c1: SubnetId,
    c2: SubnetId,
}

fn build(
    placement: PlacementPolicy,
    seed: u64,
    checkpoint_period: u64,
) -> Result<GeoWorld, RuntimeError> {
    let mut config = RuntimeConfig {
        seed,
        placement,
        sync_mode: SyncMode::Snapshot,
        ..RuntimeConfig::default()
    };
    config.net.regions = geography();
    let sa = SaConfig {
        checkpoint_period,
        ..SaConfig::default()
    };
    let mut rt = HierarchyRuntime::new(config);
    let root = SubnetId::root();
    let alice = rt.create_user(&root, whole(1_000_000))?;
    let v1 = rt.create_user(&root, whole(100))?;
    let v2 = rt.create_user(&root, whole(100))?;

    // Boot order fixes the round-robin slots: p1, c1, p2, c2.
    let p1 = rt.spawn_subnet(&alice, sa.clone(), whole(10), &[(v1, whole(5))])?;
    let u1 = rt.create_user(&p1, TokenAmount::ZERO)?;
    let w1 = rt.create_user(&p1, TokenAmount::ZERO)?;
    rt.cross_transfer(&alice, &u1, whole(100))?;
    rt.cross_transfer(&alice, &w1, whole(50))?;
    rt.run_until_quiescent(20_000)?;
    let c1 = rt.spawn_subnet(&u1, sa.clone(), whole(10), &[(w1, whole(5))])?;

    let p2 = rt.spawn_subnet(&alice, sa.clone(), whole(10), &[(v2, whole(5))])?;
    let u2 = rt.create_user(&p2, TokenAmount::ZERO)?;
    let w2 = rt.create_user(&p2, TokenAmount::ZERO)?;
    rt.cross_transfer(&alice, &u2, whole(100))?;
    rt.cross_transfer(&alice, &w2, whole(50))?;
    rt.run_until_quiescent(20_000)?;
    let c2 = rt.spawn_subnet(&u2, sa, whole(10), &[(w2, whole(5))])?;

    let bob = rt.create_user(&c1, TokenAmount::ZERO)?;
    let carol = rt.create_user(&c2, TokenAmount::ZERO)?;
    rt.run_until_quiescent(20_000)?;
    Ok(GeoWorld {
        rt,
        alice,
        bob,
        carol,
        p1,
        c1,
        c2,
    })
}

/// Injects `scenario` as a `[now+400, now+5400)` window of region-scoped
/// fault rules, resolved against the *actual* placements of this run (so
/// a co-located hierarchy is — correctly — immune to inter-region rules).
/// Returns the heal time.
fn inject(rt: &mut HierarchyRuntime, scenario: &str, c1: &SubnetId, c2: &SubnetId) -> u64 {
    let now = rt.now_ms();
    let from_ms = now + 400;
    let heal_ms = now + 5_400;
    let region_of = |rt: &HierarchyRuntime, s: &SubnetId| {
        rt.region_of_subnet(s).unwrap_or(E14_REGIONS[0]).to_owned()
    };
    match scenario {
        "outage" => {
            let region = region_of(rt, c2);
            rt.extend_faults(FaultPlan {
                region_outages: vec![RegionOutage {
                    region,
                    from_ms,
                    heal_ms,
                }],
                ..FaultPlan::none()
            });
        }
        "partition" => {
            let a = region_of(rt, &SubnetId::root());
            let b = region_of(rt, c1);
            if a != b {
                rt.extend_faults(FaultPlan {
                    region_partitions: vec![RegionPartition {
                        name: "oceanic-cut".into(),
                        a,
                        b,
                        from_ms,
                        heal_ms,
                        policy: PartitionPolicy::Drop,
                    }],
                    ..FaultPlan::none()
                });
            }
        }
        "degrade" => {
            let a = region_of(rt, &SubnetId::root());
            let b = region_of(rt, c1);
            if a != b {
                rt.extend_faults(FaultPlan {
                    region_degrades: vec![
                        RegionDegrade {
                            from: a.clone(),
                            to: b.clone(),
                            from_ms,
                            until_ms: heal_ms,
                            extra_delay_ms: 150,
                            loss_rate: 0.25,
                        },
                        RegionDegrade {
                            from: b,
                            to: a,
                            from_ms,
                            until_ms: heal_ms,
                            extra_delay_ms: 150,
                            loss_rate: 0.25,
                        },
                    ],
                    ..FaultPlan::none()
                });
            }
        }
        _ => {}
    }
    heal_ms
}

/// One seed's measurements plus its reconvergence verdict.
struct SeedOutcome {
    topdown_ms: u64,
    bottomup_ms: u64,
    gossip_p50_ms: u64,
    gossip_p99_ms: u64,
    checkpoints: u64,
    region_crashes: u64,
    region_heals: u64,
    deferred_rejoins: u64,
    region_dropped: u64,
    converged: bool,
}

fn run_seed(
    placement: PlacementPolicy,
    scenario: &'static str,
    seed: u64,
    checkpoint_period: u64,
) -> Result<SeedOutcome, RuntimeError> {
    let mut w = build(placement, seed, checkpoint_period)?;
    let root = SubnetId::root();
    let ckpts_before =
        w.rt.node(&root)
            .map_or(0, |n| n.stats().checkpoints_committed);

    let heal_ms = inject(&mut w.rt, scenario, &w.c1, &w.c2);

    // E2-style workload crossing the disaster window: top-down into both
    // children, a bottom-up leg out of c1 (which pays the checkpoint
    // wait, the E3 load).
    w.rt.cross_transfer(&w.alice, &w.bob, whole(40))?;
    w.rt.cross_transfer(&w.alice, &w.carol, whole(30))?;
    w.rt.run_until_quiescent(30_000)?;
    w.rt.cross_transfer(&w.bob, &w.alice, whole(7))?;
    w.rt.run_until_quiescent(30_000)?;

    // A further bottom-up leg submitted *inside* the fault window (the
    // legs above quiesce at ~+4.1s virtual, past the +0.4s onset but
    // before the +5.4s heal): its fund certificate publishes on the root
    // topic mid-disaster, so an inter-region partition or degrade
    // actually intersects traffic instead of expiring unobserved. Under
    // a co-located outage the sender's subnet is region-crashed and has
    // nothing to submit, so the leg is conditionally skipped.
    let mid_leg = if w.rt.is_crashed(&w.c1) {
        0
    } else {
        w.rt.cross_transfer(&w.bob, &w.alice, whole(1))?;
        w.rt.run_until_quiescent(30_000)?;
        1
    };

    // Make sure the heal time has passed (a fully quiescent hierarchy
    // stops advancing on its own), then let the recovery wave finish.
    let mut guard = 0u32;
    while w.rt.now_ms() < heal_ms {
        w.rt.step()?;
        guard += 1;
        if guard > 200_000 {
            return Err(RuntimeError::Execution(
                "virtual time failed to reach the heal point".into(),
            ));
        }
    }
    w.rt.run_until_quiescent(30_000)?;

    // Post-heal measured legs: top-down into c2 (the healed region) and
    // bottom-up out of c1 — settlement must work *after* the disaster.
    let td = measure_delivery(&mut w.rt, &w.alice, &w.carol, whole(3), 20_000)?;
    w.rt.run_until_quiescent(10_000)?;
    let bu = measure_delivery(&mut w.rt, &w.bob, &w.alice, whole(2), 20_000)?;
    w.rt.run_until_quiescent(10_000)?;

    // Reconvergence oracle. Catch-up re-validates and re-executes every
    // missed block (a state-root mismatch aborts the replay), so
    // `catch_ups_completed == region_crashes` *is* the exact-root check
    // for every region-crashed member.
    let chaos = w.rt.chaos_stats();
    let net = w.rt.net_stats();
    let ledger_reconciles = net.attempts
        == net.scheduled
            + net.dropped
            + net.partition_dropped
            + net.targeted_dropped
            + net.offline_dropped
            + net.region_dropped
            + net.region_lost;
    let subnets: Vec<SubnetId> = w.rt.subnets().cloned().collect();
    let all_live = subnets
        .iter()
        .all(|s| !w.rt.is_crashed(s) && !w.rt.is_catching_up(s));
    let no_abandons = subnets.iter().all(|s| {
        w.rt.node(s)
            .is_some_and(|n| n.resolver().stats().pulls_abandoned == 0)
    });
    let converged = audit_escrow(&w.rt).is_ok()
        && audit_quiescent(&w.rt).is_ok()
        && w.rt.balance(&w.bob) == whole(40 - 7 - mid_leg - 2)
        && w.rt.balance(&w.carol) == whole(30 + 3)
        && chaos.region_heals == chaos.region_outages
        && chaos.catch_ups_completed == chaos.region_crashes
        && ledger_reconciles
        && all_live
        && no_abandons;

    // Certificates for bottom-up transfers publish on the *destination*
    // topic, so the root topic is where cross-region gossip latency shows
    // up (c1 → root crosses an ocean under geo-spread).
    let gossip =
        w.rt.topic_latency(&root)
            .or_else(|| w.rt.topic_latency(&w.p1))
            .or_else(|| w.rt.topic_latency(&w.c1));
    Ok(SeedOutcome {
        topdown_ms: td.latency_ms,
        bottomup_ms: bu.latency_ms,
        gossip_p50_ms: gossip.map_or(0, |g| g.p50_ms),
        gossip_p99_ms: gossip.map_or(0, |g| g.p99_ms),
        checkpoints: w
            .rt
            .node(&root)
            .map_or(0, |n| n.stats().checkpoints_committed)
            - ckpts_before,
        region_crashes: chaos.region_crashes,
        region_heals: chaos.region_heals,
        deferred_rejoins: chaos.region_heals_deferred,
        region_dropped: net.region_dropped + net.region_lost,
        converged,
    })
}

/// Runs the E14 sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e14_run(params: &E14Params) -> Result<Vec<E14Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &placement in &params.placements {
        for &scenario in &params.scenarios {
            let mut outcomes = Vec::new();
            for &seed in &params.seeds {
                outcomes.push(run_seed(
                    placement,
                    scenario,
                    seed,
                    params.checkpoint_period,
                )?);
            }
            let n = outcomes.len().max(1) as f64;
            let mean = |f: &dyn Fn(&SeedOutcome) -> u64| {
                outcomes.iter().map(|o| f(o) as f64).sum::<f64>() / n
            };
            rows.push(E14Row {
                placement: placement_label(placement),
                scenario,
                seeds: outcomes.len(),
                topdown_ms: mean(&|o| o.topdown_ms),
                bottomup_ms: mean(&|o| o.bottomup_ms),
                gossip_p50_ms: mean(&|o| o.gossip_p50_ms),
                gossip_p99_ms: mean(&|o| o.gossip_p99_ms),
                checkpoints: mean(&|o| o.checkpoints),
                region_crashes: outcomes.iter().map(|o| o.region_crashes).sum(),
                region_heals: outcomes.iter().map(|o| o.region_heals).sum(),
                deferred_rejoins: outcomes.iter().map(|o| o.deferred_rejoins).sum(),
                region_dropped: outcomes.iter().map(|o| o.region_dropped).sum(),
                converged: outcomes.iter().all(|o| o.converged),
            });
        }
    }
    Ok(rows)
}

/// Renders E14 rows (figure F14).
pub fn table(rows: &[E14Row]) -> Table {
    let mut t = Table::new(
        "E14/F14: geo placement under region disasters — settlement latency and reconvergence",
        &[
            "placement",
            "disaster",
            "seeds",
            "topdown ms",
            "bottomup ms",
            "gossip p50",
            "gossip p99",
            "ckpts",
            "crashes",
            "heals",
            "deferred",
            "rgn-drop",
            "reconverged",
        ],
    );
    for r in rows {
        t.row(&[
            r.placement.to_string(),
            r.scenario.to_string(),
            r.seeds.to_string(),
            f2(r.topdown_ms),
            f2(r.bottomup_ms),
            f2(r.gossip_p50_ms),
            f2(r.gossip_p99_ms),
            f2(r.checkpoints),
            r.region_crashes.to_string(),
            r.region_heals.to_string(),
            r.deferred_rejoins.to_string(),
            r.region_dropped.to_string(),
            yes_no(r.converged),
        ]);
    }
    t.note(
        "co-located = FollowParent (root's region), geo-spread = RoundRobin; \
         disasters scoped to the run's actual placements, heal at +5.4s",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> E14Params {
        E14Params {
            scenarios: vec!["none", "outage"],
            seeds: vec![11],
            ..E14Params::default()
        }
    }

    #[test]
    fn geo_spread_pays_latency_and_outages_reconverge() {
        let rows = e14_run(&quick()).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.converged, "cell must reconverge: {r:?}");
        }
        let get = |p: &str, s: &str| {
            rows.iter()
                .find(|r| r.placement == p && r.scenario == s)
                .unwrap()
        };
        // Geography is real: spreading across regions costs gossip
        // latency (certificates cross an ocean to reach the root topic)
        // relative to co-location on the same seed.
        assert!(
            get("geo-spread", "none").gossip_p50_ms > get("co-located", "none").gossip_p50_ms,
            "{rows:?}"
        );
        // The outage crashed someone, and every crash healed.
        let outage = get("geo-spread", "outage");
        assert!(outage.region_crashes >= 1, "{outage:?}");
        assert_eq!(outage.region_heals, 1, "{outage:?}");
        let co_outage = get("co-located", "outage");
        assert!(co_outage.region_crashes >= co_outage.region_heals);
    }

    #[test]
    fn e14_is_bit_identical_across_runs() {
        let params = E14Params {
            scenarios: vec!["outage"],
            seeds: vec![11],
            ..E14Params::default()
        };
        let a = e14_run(&params).unwrap();
        let b = e14_run(&params).unwrap();
        assert_eq!(a, b);
    }
}
