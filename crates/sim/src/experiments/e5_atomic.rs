//! E5 — atomic execution cost and fault behaviour (paper §IV-D).
//!
//! Measures the two-phase commit across subnets: commit latency as the
//! number of parties grows, and termination behaviour for each fault type
//! (divergent outputs, explicit abort, crash + timeout).

use hc_actors::AtomicExecStatus;
use hc_core::{AtomicOrchestrator, AtomicParty, PartyBehavior, RuntimeError};
use hc_state::Method;
use hc_types::TokenAmount;

use crate::table::Table;
use crate::topology::TopologyBuilder;

/// E5 parameters.
#[derive(Debug, Clone)]
pub struct E5Params {
    /// Party counts to sweep (each party lives in its own subnet).
    pub party_counts: Vec<usize>,
    /// Fault scenarios to run at the smallest party count.
    pub fault_scenarios: bool,
}

impl Default for E5Params {
    fn default() -> Self {
        E5Params {
            party_counts: vec![2, 3, 4, 6, 8],
            fault_scenarios: true,
        }
    }
}

/// One measured execution of E5.
#[derive(Debug, Clone, PartialEq)]
pub struct E5Row {
    /// Number of parties / subnets involved.
    pub parties: usize,
    /// Scenario label.
    pub scenario: &'static str,
    /// Terminal status.
    pub status: AtomicExecStatus,
    /// Virtual milliseconds from initiation to applied termination.
    pub latency_ms: u64,
    /// Whether every honest party's state was consistent afterwards
    /// (swapped on commit, untouched on abort) and unlocked.
    pub consistent: bool,
}

fn run_scenario(
    parties_n: usize,
    scenario: &'static str,
    behavior_of_last: PartyBehavior,
) -> Result<E5Row, RuntimeError> {
    let mut topo = TopologyBuilder::new().users_per_subnet(1).flat(parties_n)?;
    let mut parties = Vec::new();
    for (i, s) in topo.subnets.clone().iter().enumerate() {
        let user = topo.users[s][0].clone();
        topo.rt.execute(
            &user,
            user.addr,
            TokenAmount::ZERO,
            Method::PutData {
                key: b"asset".to_vec(),
                data: vec![i as u8; 4],
            },
        )?;
        let behavior = if i == parties_n - 1 {
            behavior_of_last
        } else {
            PartyBehavior::Honest
        };
        parties.push(AtomicParty::honest(user, b"asset").with_behavior(behavior));
    }

    let t0 = topo.rt.now_ms();
    let outcome = AtomicOrchestrator::run(
        &mut topo.rt,
        &parties,
        |inputs| {
            // Rotate the assets by one party.
            let mut out = inputs.to_vec();
            out.rotate_right(1);
            out
        },
        200_000,
    )?;
    let latency_ms = topo.rt.now_ms() - t0;

    // Consistency: on commit the first party holds the last party's asset;
    // on abort everyone holds their original; locks are always released.
    let read = |topo: &crate::topology::FlatTopology, p: &AtomicParty| {
        topo.rt
            .node(&p.user.subnet)
            .and_then(|n| n.state().accounts().get(p.user.addr).cloned())
    };
    let mut consistent = true;
    for (i, p) in parties.iter().enumerate() {
        let Some(acc) = read(&topo, p) else {
            consistent = false;
            break;
        };
        if acc.locked.contains(b"asset".as_slice()) && p.behavior == PartyBehavior::Honest {
            consistent = false;
        }
        let expected: Vec<u8> = match outcome.status {
            AtomicExecStatus::Committed => {
                vec![((i + parties_n - 1) % parties_n) as u8; 4]
            }
            _ => vec![i as u8; 4],
        };
        if acc.storage.get(b"asset".as_slice()) != Some(&expected) {
            consistent = false;
        }
    }

    Ok(E5Row {
        parties: parties_n,
        scenario,
        status: outcome.status,
        latency_ms,
        consistent,
    })
}

/// Runs the E5 sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e5_run(params: &E5Params) -> Result<Vec<E5Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &n in &params.party_counts {
        rows.push(run_scenario(n, "honest", PartyBehavior::Honest)?);
    }
    if params.fault_scenarios {
        let n = *params.party_counts.first().unwrap_or(&2);
        rows.push(run_scenario(n, "divergent", PartyBehavior::Divergent)?);
        rows.push(run_scenario(n, "abort", PartyBehavior::Abort)?);
        rows.push(run_scenario(n, "crash+timeout", PartyBehavior::Crash)?);
    }
    Ok(rows)
}

/// Renders E5 rows.
pub fn table(rows: &[E5Row]) -> Table {
    let mut t = Table::new(
        "E5: atomic execution latency and fault behaviour",
        &["parties", "scenario", "status", "latency ms", "consistent"],
    );
    for r in rows {
        t.row(&[
            r.parties.to_string(),
            r.scenario.to_string(),
            r.status.to_string(),
            r.latency_ms.to_string(),
            crate::table::yes_no(r.consistent),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_commits_and_faults_abort_consistently() {
        let rows = e5_run(&E5Params {
            party_counts: vec![2, 3],
            fault_scenarios: true,
        })
        .unwrap();
        assert!(rows.iter().all(|r| r.consistent), "{rows:#?}");
        assert!(rows
            .iter()
            .filter(|r| r.scenario == "honest")
            .all(|r| r.status == AtomicExecStatus::Committed));
        assert!(rows
            .iter()
            .filter(|r| r.scenario != "honest")
            .all(|r| r.status == AtomicExecStatus::Aborted));
    }
}
