//! E6 — consensus pluggability (paper §II: "subnets can run a consensus
//! algorithm of their choosing").
//!
//! The same workload runs in one subnet per engine. Expected shape:
//! BFT engines (Tendermint, Mir) give instant finality and fast blocks at
//! LAN delays; Mir's parallel leaders multiply throughput; PoW pays
//! exponential intervals, probabilistic finality, and orphaned work; PoS
//! and RoundRobin sit in between.

use hc_actors::sa::ConsensusKind;
use hc_core::RuntimeError;
use hc_types::SubnetId;

use crate::table::{f2, Table};
use crate::topology::TopologyBuilder;
use crate::workload::Workload;

/// E6 parameters.
#[derive(Debug, Clone)]
pub struct E6Params {
    /// Engines to compare.
    pub engines: Vec<ConsensusKind>,
    /// Validators in the subnet.
    pub validators: usize,
    /// Messages submitted.
    pub msgs: usize,
    /// Block capacity — small enough that the workload spans many blocks,
    /// so throughput reflects the engine, not idle slack.
    pub block_capacity: usize,
}

impl Default for E6Params {
    fn default() -> Self {
        E6Params {
            engines: vec![
                ConsensusKind::RoundRobin,
                ConsensusKind::ProofOfWork,
                ConsensusKind::ProofOfStake,
                ConsensusKind::Tendermint,
                ConsensusKind::Mir,
            ],
            validators: 4,
            msgs: 1_000,
            block_capacity: 100,
        }
    }
}

/// One engine's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct E6Row {
    /// The engine.
    pub engine: ConsensusKind,
    /// Mean block interval, virtual ms.
    pub block_interval_ms: f64,
    /// Time to finality for a freshly included message:
    /// `(finality_depth + 1) × mean interval` for chained engines, one
    /// interval for instant finality.
    pub finality_ms: f64,
    /// Successful user messages per virtual second.
    pub tps: f64,
    /// Blocks orphaned during the run (PoW wasted work).
    pub orphaned: u64,
    /// Extra BFT rounds beyond the happy path (view changes).
    pub extra_rounds: u64,
}

/// Runs the E6 comparison.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e6_run(params: &E6Params) -> Result<Vec<E6Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &engine in &params.engines {
        let mut builder = TopologyBuilder::new();
        builder
            .users_per_subnet(4)
            .consensus(engine)
            .runtime_config(hc_core::RuntimeConfig {
                engine_params: hc_consensus::EngineParams {
                    block_capacity: params.block_capacity,
                    ..hc_consensus::EngineParams::default()
                },
                ..hc_core::RuntimeConfig::default()
            });
        let mut topo = builder.flat(1)?;
        // Extra validators so quorum sizes are meaningful.
        for _ in 1..params.validators {
            let v = topo
                .rt
                .create_user(&SubnetId::root(), hc_types::TokenAmount::from_whole(50))?;
            let key_user = v.clone();
            let sa = topo.subnets[0].actor().expect("child has an SA");
            topo.rt.execute(
                &key_user,
                sa,
                hc_types::TokenAmount::from_whole(5),
                hc_state::Method::JoinSubnet {
                    key: join_key(&topo.rt, &v),
                },
            )?;
        }
        topo.users.remove(&SubnetId::root());
        let report = Workload {
            msgs_per_subnet: params.msgs,
            seed: 21,
            ..Workload::default()
        }
        .run(&mut topo)?;

        let node = topo.rt.node(&topo.subnets[0]).unwrap();
        let stats = node.stats();
        let interval = node.mean_block_interval_ms();
        let depth = node.engine().finality_depth();
        rows.push(E6Row {
            engine,
            block_interval_ms: interval,
            finality_ms: (depth + 1) as f64 * interval,
            tps: report.aggregate_tps,
            orphaned: stats.orphaned,
            extra_rounds: stats.extra_rounds,
        });
    }
    Ok(rows)
}

// The runtime owns user keys; JoinSubnet needs the public key of the
// joining validator's wallet. The wallets are deterministic, so derive the
// same key the runtime created.
fn join_key(rt: &hc_core::HierarchyRuntime, user: &hc_core::UserHandle) -> hc_types::PublicKey {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&user.addr.id().to_le_bytes());
    seed[8..16].copy_from_slice(&rt.config().seed.to_le_bytes());
    seed[16] = 0xac;
    hc_types::Keypair::from_seed(seed).public()
}

/// Renders E6 rows.
pub fn table(rows: &[E6Row]) -> Table {
    let mut t = Table::new(
        "E6: consensus engines under identical subnet workload",
        &[
            "engine",
            "block interval ms",
            "finality ms",
            "tps",
            "orphaned",
            "extra rounds",
        ],
    );
    for r in rows {
        t.row(&[
            r.engine.to_string(),
            f2(r.block_interval_ms),
            f2(r.finality_ms),
            f2(r.tps),
            r.orphaned.to_string(),
            r.extra_rounds.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_profiles_differ_as_expected() {
        let rows = e6_run(&E6Params {
            engines: vec![
                ConsensusKind::RoundRobin,
                ConsensusKind::ProofOfWork,
                ConsensusKind::Tendermint,
                ConsensusKind::Mir,
            ],
            validators: 4,
            msgs: 600,
            block_capacity: 50,
        })
        .unwrap();
        let get = |k: ConsensusKind| rows.iter().find(|r| r.engine == k).unwrap();
        // BFT at LAN delays is faster than 1 s authority slots.
        assert!(
            get(ConsensusKind::Tendermint).block_interval_ms
                < get(ConsensusKind::RoundRobin).block_interval_ms
        );
        // Instant finality beats PoW's 6-deep probabilistic finality.
        assert!(
            get(ConsensusKind::Tendermint).finality_ms
                < get(ConsensusKind::ProofOfWork).finality_ms
        );
        // Mir's throughput is at least Tendermint's (parallel leaders).
        assert!(get(ConsensusKind::Mir).tps >= get(ConsensusKind::Tendermint).tps * 0.9);
    }
}
