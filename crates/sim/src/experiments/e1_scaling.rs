//! E1 — horizontal scale-out (paper §I/§II claim).
//!
//! Fixed per-subnet capacity, growing numbers of subnets, identical
//! per-subnet load. The hierarchical deployment processes subnets in
//! parallel (virtual time), so aggregate throughput should grow
//! near-linearly, while the single-rootnet baseline handling the *same
//! total load* stays capped at one chain's capacity.

use hc_core::RuntimeError;

use crate::table::{f2, Table};
use crate::topology::TopologyBuilder;
use crate::workload::Workload;

/// E1 parameters.
#[derive(Debug, Clone)]
pub struct E1Params {
    /// Subnet counts to sweep.
    pub subnet_counts: Vec<usize>,
    /// Messages submitted per subnet.
    pub msgs_per_subnet: usize,
    /// Users per subnet.
    pub users_per_subnet: usize,
    /// Block capacity (messages); chosen so every chain saturates and the
    /// sweep measures capacity, not idle slack.
    pub block_capacity: usize,
    /// Seed.
    pub seed: u64,
    /// Worker threads for wave-parallel block production (host-side
    /// speed only — virtual-time results are identical at any setting).
    pub parallelism: usize,
}

impl Default for E1Params {
    fn default() -> Self {
        E1Params {
            subnet_counts: vec![1, 2, 4, 8, 16, 32, 64],
            msgs_per_subnet: 400,
            users_per_subnet: 4,
            block_capacity: 100,
            seed: 11,
            parallelism: 1,
        }
    }
}

/// One sweep point of E1.
#[derive(Debug, Clone, PartialEq)]
pub struct E1Row {
    /// Number of subnets (the same total load is also run on the rootnet
    /// alone as baseline).
    pub subnets: usize,
    /// Aggregate hierarchical throughput (user msgs / virtual second).
    pub hierarchy_tps: f64,
    /// Baseline throughput with all load on the rootnet.
    pub rootnet_tps: f64,
    /// `hierarchy_tps / rootnet_tps`.
    pub speedup: f64,
    /// Virtual time the hierarchy needed to drain the load, ms.
    pub hierarchy_ms: u64,
    /// Virtual time the rootnet baseline needed, ms.
    pub rootnet_ms: u64,
}

/// Runs the E1 sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e1_run(params: &E1Params) -> Result<Vec<E1Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &n in &params.subnet_counts {
        let config = hc_core::RuntimeConfig {
            engine_params: hc_consensus::EngineParams {
                block_capacity: params.block_capacity,
                ..hc_consensus::EngineParams::default()
            },
            ..hc_core::RuntimeConfig::default()
        };
        // Hierarchical deployment: n subnets, load in each (none on root,
        // isolating subnet capacity).
        let mut topo = TopologyBuilder::new()
            .users_per_subnet(params.users_per_subnet)
            .runtime_config(config.clone())
            .parallelism(params.parallelism)
            .flat(n)?;
        // Remove the root's users from the load by zeroing its user list.
        topo.users.remove(&hc_types::SubnetId::root());
        let report = Workload {
            msgs_per_subnet: params.msgs_per_subnet,
            seed: params.seed,
            ..Workload::default()
        }
        .run(&mut topo)?;

        // Baseline: the same total load (n × msgs) on the rootnet alone.
        let mut base = TopologyBuilder::new()
            .users_per_subnet(params.users_per_subnet)
            .runtime_config(config)
            .flat(0)?;
        let base_report = Workload {
            msgs_per_subnet: params.msgs_per_subnet * n,
            seed: params.seed,
            ..Workload::default()
        }
        .run(&mut base)?;

        rows.push(E1Row {
            subnets: n,
            hierarchy_tps: report.aggregate_tps,
            rootnet_tps: base_report.aggregate_tps,
            speedup: if base_report.aggregate_tps > 0.0 {
                report.aggregate_tps / base_report.aggregate_tps
            } else {
                0.0
            },
            hierarchy_ms: report.elapsed_ms,
            rootnet_ms: base_report.elapsed_ms,
        });
    }
    Ok(rows)
}

/// Renders E1 rows.
pub fn table(rows: &[E1Row]) -> Table {
    let mut t = Table::new(
        "E1: throughput scale-out vs number of subnets",
        &[
            "subnets",
            "hierarchy tps",
            "rootnet tps",
            "speedup",
            "hier drain ms",
            "root drain ms",
        ],
    );
    for r in rows {
        t.row(&[
            r.subnets.to_string(),
            f2(r.hierarchy_tps),
            f2(r.rootnet_tps),
            f2(r.speedup),
            r.hierarchy_ms.to_string(),
            r.rootnet_ms.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_subnets() {
        let rows = e1_run(&E1Params {
            subnet_counts: vec![1, 4],
            msgs_per_subnet: 120,
            users_per_subnet: 2,
            block_capacity: 30,
            seed: 3,
            parallelism: 1,
        })
        .unwrap();
        assert_eq!(rows.len(), 2);
        // 4 subnets beat 1 subnet in aggregate throughput…
        assert!(
            rows[1].hierarchy_tps > 2.0 * rows[0].hierarchy_tps,
            "{} vs {}",
            rows[1].hierarchy_tps,
            rows[0].hierarchy_tps
        );
        // …and beat the single-chain baseline handling the same load.
        assert!(rows[1].speedup > 2.0, "speedup {}", rows[1].speedup);
    }

    #[test]
    fn results_are_invariant_under_thread_count() {
        let base = E1Params {
            subnet_counts: vec![4],
            msgs_per_subnet: 60,
            users_per_subnet: 2,
            block_capacity: 30,
            seed: 3,
            parallelism: 2,
        };
        let two_threads = e1_run(&base).unwrap();
        let eight_threads = e1_run(&E1Params {
            parallelism: 8,
            ..base
        })
        .unwrap();
        // The wave schedule is a function of virtual time only, so thread
        // count changes host-side wall clock and nothing else.
        assert_eq!(two_threads, eight_threads);
    }
}
