//! E9 — fund-certificate acceleration (paper §IV-A, last paragraph).
//!
//! Bottom-up and path messages settle slowly (one checkpoint per hop); the
//! paper's acceleration has the source's validators send a direct
//! certificate so the destination can "indicate a pending payment or even
//! […] start operating as if these funds were already settled". This
//! experiment measures time-to-tentative vs time-to-settled across depths.

use hc_core::RuntimeError;
use hc_types::{SubnetId, TokenAmount};

use crate::table::{f2, Table};
use crate::topology::TopologyBuilder;

/// E9 parameters.
#[derive(Debug, Clone)]
pub struct E9Params {
    /// Source depths to sweep (destination is always the root).
    pub depths: Vec<usize>,
    /// Transfers averaged per point.
    pub samples: usize,
}

impl Default for E9Params {
    fn default() -> Self {
        E9Params {
            depths: vec![1, 2, 3],
            samples: 3,
        }
    }
}

/// One sweep point of E9.
#[derive(Debug, Clone, PartialEq)]
pub struct E9Row {
    /// Depth of the sending subnet.
    pub depth: usize,
    /// Mean virtual ms until the destination saw the certificate
    /// (tentative information).
    pub tentative_ms: f64,
    /// Mean virtual ms until the value actually settled.
    pub settled_ms: f64,
    /// `settled / tentative`.
    pub speedup: f64,
}

/// Runs the E9 sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e9_run(params: &E9Params) -> Result<Vec<E9Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &depth in &params.depths {
        let mut topo = TopologyBuilder::new().users_per_subnet(1).deep(depth)?;
        let root = SubnetId::root();
        let root_user = topo.users[&root][0].clone();
        let deep_user = topo.users[&topo.subnets[depth - 1].clone()][0].clone();

        let mut tentative_total = 0u64;
        let mut settled_total = 0u64;
        for i in 0..params.samples {
            let amount = TokenAmount::from_atto(10_000 + i as u128);
            let before = topo.rt.balance(&root_user);
            topo.rt.cross_transfer(&deep_user, &root_user, amount)?;
            let t0 = topo.rt.now_ms();

            let mut tentative_at = None;
            loop {
                topo.rt.step()?;
                if tentative_at.is_none()
                    && !topo
                        .rt
                        .node(&root)
                        .unwrap()
                        .tentative_value_for(root_user.addr)
                        .is_zero()
                {
                    tentative_at = Some(topo.rt.now_ms() - t0);
                }
                if topo.rt.balance(&root_user) > before {
                    break;
                }
                if topo.rt.now_ms() - t0 > 10_000_000 {
                    return Err(RuntimeError::Execution("settlement stalled".into()));
                }
            }
            tentative_total += tentative_at.unwrap_or(topo.rt.now_ms() - t0);
            settled_total += topo.rt.now_ms() - t0;
            topo.rt.run_until_quiescent(100_000)?;
        }

        let tentative_ms = tentative_total as f64 / params.samples as f64;
        let settled_ms = settled_total as f64 / params.samples as f64;
        rows.push(E9Row {
            depth,
            tentative_ms,
            settled_ms,
            speedup: if tentative_ms > 0.0 {
                settled_ms / tentative_ms
            } else {
                0.0
            },
        });
    }
    Ok(rows)
}

/// Renders E9 rows.
pub fn table(rows: &[E9Row]) -> Table {
    let mut t = Table::new(
        "E9: fund-certificate acceleration — tentative vs settled latency",
        &["source depth", "tentative ms", "settled ms", "speedup"],
    );
    for r in rows {
        t.row(&[
            r.depth.to_string(),
            f2(r.tentative_ms),
            f2(r.settled_ms),
            format!("{:.1}x", r.speedup),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificates_beat_settlement_and_gap_grows_with_depth() {
        let rows = e9_run(&E9Params {
            depths: vec![1, 2],
            samples: 1,
        })
        .unwrap();
        for r in &rows {
            assert!(
                r.tentative_ms < r.settled_ms,
                "depth {}: tentative {} !< settled {}",
                r.depth,
                r.tentative_ms,
                r.settled_ms
            );
        }
        // Settlement slows with depth; the certificate does not.
        assert!(rows[1].settled_ms > rows[0].settled_ms);
        assert!(rows[1].speedup >= rows[0].speedup * 0.8);
    }
}
