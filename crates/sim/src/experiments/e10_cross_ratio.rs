//! E10 — cross-traffic sensitivity (ablation of the paper's premise).
//!
//! Hierarchical consensus wins when most traffic is subnet-local and only
//! a fraction crosses subnet boundaries (the paper's motivating use cases
//! spawn subnets precisely to localize traffic). This ablation sweeps the
//! cross-net fraction of an otherwise fixed workload and measures how
//! aggregate throughput and drain time degrade as more messages take the
//! slow checkpointed routes.

use hc_core::RuntimeError;
use hc_types::SubnetId;

use crate::table::{f2, Table};
use crate::topology::TopologyBuilder;
use crate::workload::Workload;

/// E10 parameters.
#[derive(Debug, Clone)]
pub struct E10Params {
    /// Cross-net fractions to sweep.
    pub cross_ratios: Vec<f64>,
    /// Sibling subnets carrying the load.
    pub subnets: usize,
    /// Messages per subnet.
    pub msgs_per_subnet: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for E10Params {
    fn default() -> Self {
        E10Params {
            cross_ratios: vec![0.0, 0.1, 0.25, 0.5, 0.9],
            subnets: 4,
            msgs_per_subnet: 200,
            seed: 31,
        }
    }
}

/// One sweep point of E10.
#[derive(Debug, Clone, PartialEq)]
pub struct E10Row {
    /// Fraction of cross-net messages.
    pub cross_ratio: f64,
    /// Aggregate throughput (successful user msgs / virtual second).
    pub tps: f64,
    /// Virtual ms until the whole workload (including cross-net
    /// settlement) drained.
    pub drain_ms: u64,
    /// Cross-net messages applied at destinations.
    pub cross_applied: u64,
    /// Checkpoints the root committed while draining.
    pub checkpoints: u64,
}

/// Runs the E10 sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e10_run(params: &E10Params) -> Result<Vec<E10Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &ratio in &params.cross_ratios {
        let mut topo = TopologyBuilder::new()
            .users_per_subnet(3)
            .flat(params.subnets)?;
        topo.users.remove(&SubnetId::root());
        let ckpts_before = topo
            .rt
            .node(&SubnetId::root())
            .unwrap()
            .stats()
            .checkpoints_committed;
        let report = Workload {
            msgs_per_subnet: params.msgs_per_subnet,
            cross_ratio: ratio,
            seed: params.seed,
            ..Workload::default()
        }
        .run(&mut topo)?;
        let ckpts_after = topo
            .rt
            .node(&SubnetId::root())
            .unwrap()
            .stats()
            .checkpoints_committed;
        rows.push(E10Row {
            cross_ratio: ratio,
            tps: report.aggregate_tps,
            drain_ms: report.elapsed_ms,
            cross_applied: report.cross_applied,
            checkpoints: ckpts_after - ckpts_before,
        });
    }
    Ok(rows)
}

/// Renders E10 rows.
pub fn table(rows: &[E10Row]) -> Table {
    let mut t = Table::new(
        "E10: throughput sensitivity to the cross-net traffic fraction",
        &[
            "cross ratio",
            "tps",
            "drain ms",
            "cross applied",
            "checkpoints",
        ],
    );
    for r in rows {
        t.row(&[
            f2(r.cross_ratio),
            f2(r.tps),
            r.drain_ms.to_string(),
            r.cross_applied.to_string(),
            r.checkpoints.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_traffic_slows_drain_but_everything_settles() {
        let rows = e10_run(&E10Params {
            cross_ratios: vec![0.0, 0.5],
            subnets: 2,
            msgs_per_subnet: 60,
            seed: 5,
        })
        .unwrap();
        let local = &rows[0];
        let heavy = &rows[1];
        assert_eq!(local.cross_applied, 0);
        assert!(heavy.cross_applied > 0);
        // Cross traffic must wait for checkpoints: draining takes longer.
        assert!(heavy.drain_ms > local.drain_ms);
    }
}
