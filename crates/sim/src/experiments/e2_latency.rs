//! E2 — cross-net message latency per class (paper §IV-A).
//!
//! Top-down messages apply as soon as the child syncs and proposes;
//! bottom-up messages wait for a checkpoint window per hop; path messages
//! combine both legs via the LCA. Expected shape: top-down ≪ bottom-up,
//! bottom-up ∝ depth × checkpoint period, path ≈ up + down.

use hc_core::RuntimeError;
use hc_types::{SubnetId, TokenAmount};

use crate::metrics::measure_delivery;
use crate::table::Table;
use crate::topology::TopologyBuilder;

/// E2 parameters.
#[derive(Debug, Clone)]
pub struct E2Params {
    /// Hierarchy depths to sweep (distance of the deep endpoint from
    /// the root).
    pub depths: Vec<usize>,
    /// Checkpoint periods (epochs) to sweep.
    pub periods: Vec<u64>,
    /// Transfers averaged per point.
    pub samples: usize,
}

impl Default for E2Params {
    fn default() -> Self {
        E2Params {
            depths: vec![1, 2, 3, 4],
            periods: vec![5, 10, 20],
            samples: 3,
        }
    }
}

/// One measured point of E2.
#[derive(Debug, Clone, PartialEq)]
pub struct E2Row {
    /// Message class: `top-down`, `bottom-up`, or `path`.
    pub class: &'static str,
    /// Depth of the non-root endpoint(s).
    pub depth: usize,
    /// Checkpoint period of every subnet, epochs.
    pub period: u64,
    /// Mean delivery latency, virtual ms.
    pub latency_ms: f64,
    /// Mean blocks produced hierarchy-wide while in flight.
    pub blocks: f64,
}

/// Runs the E2 sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e2_run(params: &E2Params) -> Result<Vec<E2Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &period in &params.periods {
        for &depth in &params.depths {
            // A chain root -> s1 -> … -> s_depth plus one sibling branch of
            // the same depth for path messages.
            let mut topo = TopologyBuilder::new()
                .users_per_subnet(1)
                .checkpoint_period(period)
                .deep(depth)?;
            // Sibling branch under the root for path traffic.
            let mut sibling_parent = SubnetId::root();
            let mut sibling_leaf = None;
            for _ in 0..depth {
                let s = topo.spawn_under(
                    &sibling_parent,
                    hc_actors::sa::SaConfig {
                        checkpoint_period: period,
                        ..hc_actors::sa::SaConfig::default()
                    },
                    TokenAmount::from_whole(10),
                    TokenAmount::from_whole(5),
                )?;
                topo.add_users(&s, 1, TokenAmount::from_whole(1_000))?;
                sibling_parent = s.clone();
                sibling_leaf = Some(s);
            }
            topo.rt.run_until_quiescent(100_000)?;

            let root_user = topo.users[&SubnetId::root()][0].clone();
            let deep_subnet = topo.subnets[depth - 1].clone();
            let deep_user = topo.users[&deep_subnet][0].clone();
            let sibling_user = topo.users[&sibling_leaf.expect("depth >= 1")][0].clone();

            let sample = |class: &'static str,
                          from: &hc_core::UserHandle,
                          to: &hc_core::UserHandle,
                          topo: &mut crate::topology::FlatTopology|
             -> Result<E2Row, RuntimeError> {
                let mut total_ms = 0u64;
                let mut total_blocks = 0u64;
                for i in 0..params.samples {
                    let m = measure_delivery(
                        &mut topo.rt,
                        from,
                        to,
                        TokenAmount::from_atto(1_000 + i as u128),
                        200_000,
                    )?;
                    total_ms += m.latency_ms;
                    total_blocks += m.blocks;
                    topo.rt.run_until_quiescent(100_000)?;
                }
                Ok(E2Row {
                    class,
                    depth,
                    period,
                    latency_ms: total_ms as f64 / params.samples as f64,
                    blocks: total_blocks as f64 / params.samples as f64,
                })
            };

            rows.push(sample("top-down", &root_user, &deep_user, &mut topo)?);
            rows.push(sample("bottom-up", &deep_user, &root_user, &mut topo)?);
            rows.push(sample("path", &deep_user, &sibling_user, &mut topo)?);
        }
    }
    Ok(rows)
}

/// Renders E2 rows.
pub fn table(rows: &[E2Row]) -> Table {
    let mut t = Table::new(
        "E2: cross-net latency by class, depth, checkpoint period",
        &["class", "depth", "period", "latency ms", "blocks"],
    );
    for r in rows {
        t.row(&[
            r.class.to_string(),
            r.depth.to_string(),
            r.period.to_string(),
            format!("{:.0}", r.latency_ms),
            format!("{:.1}", r.blocks),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_shape_matches_paper_expectations() {
        let rows = e2_run(&E2Params {
            depths: vec![1, 2],
            periods: vec![5],
            samples: 1,
        })
        .unwrap();
        let get = |class: &str, depth: usize| {
            rows.iter()
                .find(|r| r.class == class && r.depth == depth)
                .unwrap()
                .latency_ms
        };
        // Bottom-up pays the checkpoint wait; top-down does not.
        assert!(get("bottom-up", 1) > get("top-down", 1));
        // Deeper bottom-up costs more (one checkpoint per hop).
        assert!(get("bottom-up", 2) > get("bottom-up", 1));
        // Path ≈ bottom-up leg + top-down leg: at least the bottom-up leg.
        assert!(get("path", 1) >= get("bottom-up", 1));
    }
}
