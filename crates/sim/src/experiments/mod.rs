//! The experiment drivers from DESIGN.md.
//!
//! Each experiment has a parameter struct (with defaults sized for the
//! report binary; Criterion benches shrink them), a `run` function
//! returning structured rows, and a `table` renderer. All measurements are
//! in virtual time, reproducible under the configured seeds.
//!
//! | Id | Claim quantified | Module |
//! |----|------------------|--------|
//! | E1 | horizontal scale-out of throughput | [`e1_scaling`] |
//! | E2 | cross-net latency per message class | [`e2_latency`] |
//! | E3 | checkpoint load on the parent chain | [`e3_checkpoints`] |
//! | E4 | the firewall bounds compromised-subnet damage | [`e4_firewall`] |
//! | E5 | atomic execution cost and fault behaviour | [`e5_atomic`] |
//! | E6 | consensus pluggability trade-offs | [`e6_consensus`] |
//! | E7 | push vs pull content resolution | [`e7_resolution`] |
//! | E8 | collateral lifecycle and slashing | [`e8_collateral`] |
//! | E9 | fund-certificate acceleration | [`e9_certificates`] |
//! | E10 | cross-traffic sensitivity ablation | [`e10_cross_ratio`] |
//! | E13 | elastic scale-out under a load ramp | [`e13_elasticity`] |
//! | E14 | geo placement under region disasters | [`e14_geo`] |

pub mod e10_cross_ratio;
pub mod e13_elasticity;
pub mod e14_geo;
pub mod e1_scaling;
pub mod e2_latency;
pub mod e3_checkpoints;
pub mod e4_firewall;
pub mod e5_atomic;
pub mod e6_consensus;
pub mod e7_resolution;
pub mod e8_collateral;
pub mod e9_certificates;

pub use e10_cross_ratio::{e10_run, E10Params, E10Row};
pub use e13_elasticity::{e13_run, E13Outcome, E13Params, E13Row};
pub use e14_geo::{e14_run, E14Params, E14Row, E14_REGIONS, E14_SCENARIOS};
pub use e1_scaling::{e1_run, E1Params, E1Row};
pub use e2_latency::{e2_run, E2Params, E2Row};
pub use e3_checkpoints::{e3_run, E3Params, E3Row};
pub use e4_firewall::{e4_run, E4Params, E4Row};
pub use e5_atomic::{e5_run, E5Params, E5Row};
pub use e6_consensus::{e6_run, E6Params, E6Row};
pub use e7_resolution::{e7_run, E7Params, E7Row};
pub use e8_collateral::{e8_run, E8Params, E8Row};
pub use e9_certificates::{e9_run, E9Params, E9Row};
