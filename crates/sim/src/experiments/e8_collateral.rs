//! E8 — collateral lifecycle and slashing (paper §III-B/C).
//!
//! Walks one subnet through its economic lifecycle: registration, a
//! validator joining and leaving, an equivocation fraud proof slashing the
//! collateral into inactivity, recovery by topping up, a state snapshot
//! via the SCA `save` function, and finally killing the subnet.

use hc_actors::SubnetStatus;
use hc_core::RuntimeError;
use hc_state::Method;
use hc_types::{Address, Cid, SubnetId, TokenAmount};

use crate::table::Table;
use crate::topology::TopologyBuilder;

/// E8 parameters.
#[derive(Debug, Clone)]
pub struct E8Params {
    /// Registration collateral, whole tokens.
    pub collateral: u64,
    /// Validator stake, whole tokens.
    pub stake: u64,
}

impl Default for E8Params {
    fn default() -> Self {
        E8Params {
            collateral: 10,
            stake: 5,
        }
    }
}

/// One lifecycle step of E8.
#[derive(Debug, Clone, PartialEq)]
pub struct E8Row {
    /// Step label.
    pub step: &'static str,
    /// Collateral frozen after the step, whole tokens.
    pub collateral: u64,
    /// Subnet status after the step.
    pub status: SubnetStatus,
    /// Burnt funds on the parent after the step, whole tokens.
    pub burnt: u64,
}

/// Runs the E8 lifecycle.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e8_run(params: &E8Params) -> Result<Vec<E8Row>, RuntimeError> {
    let mut topo = TopologyBuilder::new().users_per_subnet(1).flat(1)?;
    let subnet = topo.subnets[0].clone();
    let banker = topo.banker.clone();
    let whole = TokenAmount::from_whole;
    let as_whole = |v: TokenAmount| (v.atto() / whole(1).atto()) as u64;

    let mut rows = Vec::new();
    let mut record = |rt: &hc_core::HierarchyRuntime, step: &'static str| {
        let root = rt.node(&SubnetId::root()).unwrap();
        let info = root.state().sca().subnet(&subnet).unwrap();
        let burnt = root
            .state()
            .accounts()
            .get(Address::BURNT_FUNDS)
            .map(|a| a.balance)
            .unwrap_or(TokenAmount::ZERO);
        rows.push(E8Row {
            step,
            collateral: as_whole(info.collateral),
            status: info.status,
            burnt: as_whole(burnt),
        });
    };

    record(&topo.rt, "registered + validator joined");

    // A second validator joins and later leaves.
    let v2 = topo.rt.create_user(&SubnetId::root(), whole(100))?;
    let sa = subnet.actor().expect("child has an SA");
    let key = {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&v2.addr.id().to_le_bytes());
        seed[8..16].copy_from_slice(&topo.rt.config().seed.to_le_bytes());
        seed[16] = 0xac;
        hc_types::Keypair::from_seed(seed).public()
    };
    topo.rt
        .execute(&v2, sa, whole(params.stake), Method::JoinSubnet { key })?;
    record(&topo.rt, "second validator joined");

    topo.rt
        .execute(&v2, sa, TokenAmount::ZERO, Method::LeaveSubnet)?;
    record(&topo.rt, "second validator left");

    // Equivocation → fraud proof → slash to zero → inactive.
    let proof = topo.rt.forge_equivocation(&subnet)?;
    topo.rt.execute(
        &banker,
        Address::SCA,
        TokenAmount::ZERO,
        Method::ReportFraud {
            subnet: subnet.clone(),
            proof: Box::new(proof),
        },
    )?;
    record(&topo.rt, "fraud proof slashed");

    // Recovery: top the collateral back up.
    topo.rt.execute(
        &banker,
        Address::SCA,
        whole(params.collateral + params.stake),
        Method::AddCollateral {
            subnet: subnet.clone(),
        },
    )?;
    record(&topo.rt, "collateral topped up");

    // Persist a state snapshot before killing (fund-recovery path,
    // paper §III-C).
    let child_user = topo.users[&subnet][0].clone();
    let snapshot = topo
        .rt
        .node(&subnet)
        .map(|n| n.state().recompute_root())
        .unwrap_or(Cid::NIL);
    topo.rt.execute(
        &child_user,
        Address::SCA,
        TokenAmount::ZERO,
        Method::SaveState { state: snapshot },
    )?;
    record(&topo.rt, "state snapshot saved");

    // Kill: remaining collateral released.
    topo.rt
        .execute(&banker, sa, TokenAmount::ZERO, Method::KillSubnet)?;
    record(&topo.rt, "subnet killed");

    Ok(rows)
}

/// Renders E8 rows.
pub fn table(rows: &[E8Row]) -> Table {
    let mut t = Table::new(
        "E8: collateral lifecycle — join, slash, recover, save, kill",
        &["step", "collateral HC", "status", "burnt HC"],
    );
    for r in rows {
        t.row(&[
            r.step.to_string(),
            r.collateral.to_string(),
            r.status.to_string(),
            r.burnt.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_follows_the_paper() {
        let rows = e8_run(&E8Params::default()).unwrap();
        let get = |step: &str| rows.iter().find(|r| r.step == step).unwrap();
        assert_eq!(get("registered + validator joined").collateral, 15);
        assert_eq!(get("second validator joined").collateral, 20);
        assert_eq!(get("second validator left").collateral, 15);
        let slashed = get("fraud proof slashed");
        assert_eq!(slashed.collateral, 0);
        assert_eq!(slashed.status, SubnetStatus::Inactive);
        assert!(slashed.burnt >= 7, "half the slash is burned");
        let recovered = get("collateral topped up");
        assert_eq!(recovered.status, SubnetStatus::Active);
        assert_eq!(get("subnet killed").status, SubnetStatus::Killed);
        // The snapshot is registered in the SCA's save registry… of the
        // child; killing does not erase it.
    }
}
