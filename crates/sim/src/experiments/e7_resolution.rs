//! E7 — push vs pull content resolution (paper §IV-C).
//!
//! Bottom-up message payloads travel by CID; destinations resolve them
//! either from proactive *push* announcements or by *pull* requests to the
//! source subnet. Expected shape: with push enabled, most lookups hit the
//! local cache and delivery is faster; pull-only trades latency (an extra
//! request/response round per miss) for less proactive bandwidth.

use hc_core::{RuntimeConfig, RuntimeError};
use hc_types::{SubnetId, TokenAmount};

use crate::metrics::measure_delivery;
use crate::table::{f2, Table};
use crate::topology::TopologyBuilder;

/// E7 parameters.
#[derive(Debug, Clone)]
pub struct E7Params {
    /// Network drop rates to sweep.
    pub drop_rates: Vec<f64>,
    /// Bottom-up transfers measured per point.
    pub transfers: usize,
}

impl Default for E7Params {
    fn default() -> Self {
        E7Params {
            drop_rates: vec![0.0, 0.2],
            transfers: 6,
        }
    }
}

/// One configuration's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct E7Row {
    /// `push+pull` or `pull-only`.
    pub mode: &'static str,
    /// Network drop rate.
    pub drop_rate: f64,
    /// Mean bottom-up delivery latency, virtual ms.
    pub latency_ms: f64,
    /// Cache hits at the destination (push worked).
    pub cache_hits: u64,
    /// Cache misses (a pull was needed).
    pub cache_misses: u64,
    /// Pull requests served by source subnets.
    pub pulls_served: u64,
    /// Push payloads accepted into destination caches.
    pub pushes_cached: u64,
}

/// Runs the E7 comparison.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn e7_run(params: &E7Params) -> Result<Vec<E7Row>, RuntimeError> {
    let mut rows = Vec::new();
    for &drop_rate in &params.drop_rates {
        for (mode, push_enabled) in [("push+pull", true), ("pull-only", false)] {
            let config = RuntimeConfig {
                push_enabled,
                net: hc_net::NetConfig {
                    drop_rate,
                    ..hc_net::NetConfig::default()
                },
                ..RuntimeConfig::default()
            };
            let mut builder = TopologyBuilder::new();
            builder.users_per_subnet(1).runtime_config(config);
            let mut topo = builder.flat(1)?;
            let child_user = topo.users[&topo.subnets[0]][0].clone();
            let root_user = topo.users[&SubnetId::root()][0].clone();

            let mut total_ms = 0u64;
            for i in 0..params.transfers {
                let m = measure_delivery(
                    &mut topo.rt,
                    &child_user,
                    &root_user,
                    TokenAmount::from_atto(100 + i as u128),
                    500_000,
                )?;
                total_ms += m.latency_ms;
                topo.rt.run_until_quiescent(100_000)?;
            }

            let root_stats = topo.rt.node(&SubnetId::root()).unwrap().resolver().stats();
            let child_stats = topo.rt.node(&topo.subnets[0]).unwrap().resolver().stats();
            rows.push(E7Row {
                mode,
                drop_rate,
                latency_ms: total_ms as f64 / params.transfers as f64,
                cache_hits: root_stats.cache_hits,
                cache_misses: root_stats.cache_misses,
                pulls_served: child_stats.pulls_served,
                pushes_cached: root_stats.pushes_cached,
            });
        }
    }
    Ok(rows)
}

/// Renders E7 rows.
pub fn table(rows: &[E7Row]) -> Table {
    let mut t = Table::new(
        "E7: content resolution — push vs pull",
        &[
            "mode",
            "drop rate",
            "latency ms",
            "cache hits",
            "misses",
            "pulls served",
            "pushes cached",
        ],
    );
    for r in rows {
        t.row(&[
            r.mode.to_string(),
            f2(r.drop_rate),
            f2(r.latency_ms),
            r.cache_hits.to_string(),
            r.cache_misses.to_string(),
            r.pulls_served.to_string(),
            r.pushes_cached.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_reduces_misses_and_pull_still_converges() {
        let rows = e7_run(&E7Params {
            drop_rates: vec![0.0],
            transfers: 3,
        })
        .unwrap();
        let push = rows.iter().find(|r| r.mode == "push+pull").unwrap();
        let pull = rows.iter().find(|r| r.mode == "pull-only").unwrap();
        // Push mode caches content proactively.
        assert!(push.pushes_cached > 0);
        assert!(pull.pushes_cached == 0);
        // Pull-only resolves every meta by request.
        assert!(pull.pulls_served > 0);
        // Both deliver; pull-only is not faster.
        assert!(pull.latency_ms >= push.latency_ms * 0.9);
    }
}
