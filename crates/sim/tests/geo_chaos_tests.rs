//! Geo chaos: region-scoped disasters over placed hierarchies.
//!
//! The PR-5 chaos suite crashed individual subnets; these schedules fail
//! whole *regions* — every placed member crashed and blackholed at once,
//! healed on a schedule, with the rejoin order resolved parent-first —
//! and assert the same two invariants:
//!
//! * **Safety** — catch-up re-validates and re-executes every missed
//!   block (a state-root mismatch aborts the replay), so
//!   `catch_ups_completed == region_crashes` *is* the exact-root
//!   reconvergence proof; once quiescent the supply audits hold and the
//!   faulty run's final state roots equal the undisturbed run's.
//! * **Eventual liveness** — after the heal every cross-net message is
//!   applied exactly once (exact balances), no pull is silently
//!   abandoned, and the network ledger accounts for every message a
//!   region rule dropped or held.

use hc_actors::sa::SaConfig;
use hc_core::{
    audit_escrow, audit_quiescent, HierarchyRuntime, PlacementPolicy, RuntimeConfig, RuntimeError,
    SyncMode, UserHandle,
};
use hc_net::{DupRule, FaultPlan, LossRule, RegionOutage, ReorderRule};
use hc_sim::experiments::e14_geo::geography;
use hc_types::{SubnetId, TokenAmount};

fn whole(n: u64) -> TokenAmount {
    TokenAmount::from_whole(n)
}

/// Root + two parents + one child each, placed by `placement` on the E14
/// three-region geography.
struct GeoWorld {
    rt: HierarchyRuntime,
    alice: UserHandle,
    /// User in `c1`.
    bob: UserHandle,
    /// User in `c2`.
    carol: UserHandle,
    p1: SubnetId,
    c1: SubnetId,
}

fn build(
    placement: PlacementPolicy,
    seed: u64,
    checkpoint_period: u64,
    sync_mode: SyncMode,
) -> Result<GeoWorld, RuntimeError> {
    let mut config = RuntimeConfig {
        seed,
        placement,
        sync_mode,
        ..RuntimeConfig::default()
    };
    config.net.regions = geography();
    let sa = SaConfig {
        checkpoint_period,
        ..SaConfig::default()
    };
    let mut rt = HierarchyRuntime::new(config);
    let root = SubnetId::root();
    let alice = rt.create_user(&root, whole(1_000_000))?;
    let v1 = rt.create_user(&root, whole(100))?;
    let v2 = rt.create_user(&root, whole(100))?;

    // Boot order fixes the round-robin slots: root, p1, c1, p2, c2 →
    // us-east, eu-west, ap-south, us-east, eu-west under geo-spread.
    let p1 = rt.spawn_subnet(&alice, sa.clone(), whole(10), &[(v1, whole(5))])?;
    let u1 = rt.create_user(&p1, TokenAmount::ZERO)?;
    let w1 = rt.create_user(&p1, TokenAmount::ZERO)?;
    rt.cross_transfer(&alice, &u1, whole(100))?;
    rt.cross_transfer(&alice, &w1, whole(50))?;
    rt.run_until_quiescent(20_000)?;
    let c1 = rt.spawn_subnet(&u1, sa.clone(), whole(10), &[(w1, whole(5))])?;

    let p2 = rt.spawn_subnet(&alice, sa.clone(), whole(10), &[(v2, whole(5))])?;
    let u2 = rt.create_user(&p2, TokenAmount::ZERO)?;
    let w2 = rt.create_user(&p2, TokenAmount::ZERO)?;
    rt.cross_transfer(&alice, &u2, whole(100))?;
    rt.cross_transfer(&alice, &w2, whole(50))?;
    rt.run_until_quiescent(20_000)?;
    let c2 = rt.spawn_subnet(&u2, sa, whole(10), &[(w2, whole(5))])?;

    let bob = rt.create_user(&c1, TokenAmount::ZERO)?;
    let carol = rt.create_user(&c2, TokenAmount::ZERO)?;
    rt.run_until_quiescent(20_000)?;
    Ok(GeoWorld {
        rt,
        alice,
        bob,
        carol,
        p1,
        c1,
    })
}

/// Steps until `heal_ms` has passed and nobody is crashed or catching
/// up, then drains to quiescence.
fn ride_out(rt: &mut HierarchyRuntime, heal_ms: u64) {
    let mut guard = 0u64;
    let crashed_or_syncing = |rt: &HierarchyRuntime| {
        let subnets: Vec<SubnetId> = rt.subnets().cloned().collect();
        subnets
            .iter()
            .any(|s| rt.is_crashed(s) || rt.is_catching_up(s))
    };
    while rt.now_ms() < heal_ms || crashed_or_syncing(rt) {
        rt.step().unwrap();
        guard += 1;
        assert!(guard < 200_000, "the fault window must close");
    }
    rt.run_until_quiescent(30_000).unwrap();
}

/// Per-subnet final state root (the cross-run comparison key).
fn state_root(rt: &HierarchyRuntime, subnet: &SubnetId) -> hc_types::Cid {
    rt.node(subnet)
        .unwrap()
        .chain()
        .iter()
        .last()
        .unwrap()
        .header
        .state_root
}

fn assert_ledger_reconciles(rt: &HierarchyRuntime) {
    let net = rt.net_stats();
    assert_eq!(
        net.attempts,
        net.scheduled
            + net.dropped
            + net.partition_dropped
            + net.targeted_dropped
            + net.offline_dropped
            + net.region_dropped
            + net.region_lost,
        "every attempted delivery must be scheduled or accounted to a drop class: {net:?}"
    );
}

fn assert_no_abandons(rt: &HierarchyRuntime) {
    for subnet in rt.subnets().cloned().collect::<Vec<_>>() {
        assert_eq!(
            rt.node(&subnet).unwrap().resolver().stats().pulls_abandoned,
            0,
            "{subnet}: no pull may be silently lost under the default budget"
        );
    }
}

/// The headline twin-run: a whole-region outage under loss, duplication,
/// and reordering changes nothing observable — the co-located hierarchy
/// (root skipped, both parents and both children crashed, children's
/// rejoins deferred behind their parents) reconverges to the exact state
/// roots and balances of the undisturbed run of the same seed.
#[test]
fn region_outage_under_faulty_network_reconverges_to_undisturbed_roots() {
    // Long checkpoint period: checkpoint cadence would otherwise differ
    // between the runs (the outage stalls the children's epochs) and
    // legitimately diverge the parents' SCA state.
    let run = |disaster: bool| {
        let mut w = build(
            PlacementPolicy::FollowParent,
            0xE0,
            10_000,
            SyncMode::Replay,
        )
        .unwrap();
        w.rt.cross_transfer(&w.alice, &w.bob, whole(40)).unwrap();
        w.rt.cross_transfer(&w.alice, &w.carol, whole(30)).unwrap();
        w.rt.run_until_quiescent(20_000).unwrap();

        // Top-down value in flight when the region goes dark.
        w.rt.cross_transfer(&w.alice, &w.bob, whole(5)).unwrap();
        w.rt.cross_transfer(&w.alice, &w.carol, whole(3)).unwrap();
        let now = w.rt.now_ms();
        let heal_ms = now + 7_400;
        if disaster {
            let region = w.rt.region_of_subnet(&w.c1).unwrap().to_owned();
            w.rt.extend_faults(FaultPlan {
                region_outages: vec![RegionOutage {
                    region,
                    from_ms: now + 400,
                    heal_ms,
                }],
                losses: vec![LossRule {
                    from_ms: now,
                    until_ms: now + 9_000,
                    topic: Some(w.c1.topic()),
                    from: None,
                    to: None,
                    rate: 0.35,
                }],
                duplications: vec![DupRule {
                    from_ms: now,
                    until_ms: now + 9_000,
                    topic: None,
                    rate: 0.5,
                    max_copies: 2,
                    spread_ms: 400,
                }],
                reorders: vec![ReorderRule {
                    from_ms: now,
                    until_ms: now + 9_000,
                    topic: None,
                    rate: 0.5,
                    max_extra_delay_ms: 900,
                }],
                ..FaultPlan::none()
            });
        }
        ride_out(&mut w.rt, heal_ms);

        audit_escrow(&w.rt).unwrap();
        audit_quiescent(&w.rt).unwrap();
        assert_ledger_reconciles(&w.rt);
        assert_no_abandons(&w.rt);
        let roots: Vec<hc_types::Cid> = [SubnetId::root(), w.p1.clone(), w.c1.clone()]
            .iter()
            .map(|s| state_root(&w.rt, s))
            .collect();
        (
            roots,
            w.rt.balance(&w.bob),
            w.rt.balance(&w.carol),
            w.rt.chaos_stats(),
        )
    };

    let (roots_clean, bob_clean, carol_clean, chaos_clean) = run(false);
    let (roots_hit, bob_hit, carol_hit, chaos_hit) = run(true);

    assert_eq!(chaos_clean.region_outages, 0);
    assert_eq!(chaos_hit.region_outages, 1);
    // Co-located: both children and (once their children are down) both
    // parents crash; the root is skipped — it is never crashed.
    assert_eq!(chaos_hit.region_crashes, 4);
    assert_eq!(chaos_hit.region_crash_skips, 1);
    assert_eq!(chaos_hit.region_heals, 1);
    // Exact-root reconvergence: every region-crashed node re-validated
    // and re-executed its missed blocks.
    assert_eq!(chaos_hit.catch_ups_completed, chaos_hit.region_crashes);
    assert_eq!(bob_clean, whole(45));
    assert_eq!(bob_hit, whole(45));
    assert_eq!(carol_clean, whole(33));
    assert_eq!(carol_hit, whole(33));
    assert_eq!(
        roots_hit, roots_clean,
        "the disaster run must reconverge to the undisturbed state roots"
    );
}

/// One geo chaos schedule: a geo-spread hierarchy hit by two overlapping
/// region outages — the child's region first, then the region holding
/// its parent — under lossy gossip, healing through snapshot state-sync
/// with the child's rejoin deferred behind the still-recovering parent.
fn run_geo_schedule(seed: u64) -> u64 {
    let mut w = build(
        PlacementPolicy::RoundRobin,
        0xE14_000 + seed,
        5,
        SyncMode::Snapshot,
    )
    .unwrap();
    w.rt.cross_transfer(&w.alice, &w.bob, whole(40)).unwrap();
    w.rt.cross_transfer(&w.alice, &w.carol, whole(30)).unwrap();
    w.rt.run_until_quiescent(20_000).unwrap();

    // Bottom-up and top-down value in flight across the disasters.
    for _ in 0..7 {
        w.rt.cross_transfer(&w.bob, &w.alice, whole(1)).unwrap();
    }
    w.rt.cross_transfer(&w.alice, &w.carol, whole(3)).unwrap();

    // Geo-spread slots: c1 → ap-south, p1 and c2 → eu-west. The ap-south
    // outage downs c1; once it is dark the eu-west outage finds p1
    // without live descendants and crashes it too (plus c2). ap-south
    // heals first, so c1's rejoin is deferred until p1 caught up.
    let now = w.rt.now_ms();
    let c1_region = w.rt.region_of_subnet(&w.c1).unwrap().to_owned();
    let p1_region = w.rt.region_of_subnet(&w.p1).unwrap().to_owned();
    assert_ne!(c1_region, p1_region, "geo-spread must separate c1 from p1");
    let heal_ms = now + 6_500;
    w.rt.extend_faults(FaultPlan {
        region_outages: vec![
            RegionOutage {
                region: c1_region,
                from_ms: now + 300,
                heal_ms: now + 6_300,
            },
            RegionOutage {
                region: p1_region,
                from_ms: now + 500,
                heal_ms,
            },
        ],
        losses: vec![LossRule {
            from_ms: now,
            until_ms: heal_ms,
            topic: Some(w.p1.topic()),
            from: None,
            to: None,
            rate: 0.25,
        }],
        ..FaultPlan::none()
    });
    ride_out(&mut w.rt, heal_ms);

    // Post-heal traffic proves the healed hierarchy still settles.
    w.rt.cross_transfer(&w.alice, &w.bob, whole(2)).unwrap();
    w.rt.cross_transfer(&w.bob, &w.alice, whole(1)).unwrap();
    w.rt.run_until_quiescent(20_000).unwrap();

    audit_escrow(&w.rt).unwrap();
    audit_quiescent(&w.rt).unwrap();
    assert_eq!(w.rt.balance(&w.bob), whole(40 - 7 + 2 - 1), "seed {seed}");
    assert_eq!(w.rt.balance(&w.carol), whole(33), "seed {seed}");
    let chaos = w.rt.chaos_stats();
    assert_eq!(chaos.region_outages, 2, "seed {seed}");
    assert_eq!(chaos.region_heals, 2, "seed {seed}");
    assert_eq!(chaos.region_crashes, 3, "seed {seed}: c1, p1, c2");
    assert_eq!(
        chaos.catch_ups_completed, chaos.region_crashes,
        "seed {seed}: every region-crashed node must reconverge exactly"
    );
    assert!(
        chaos.region_heals_deferred >= 1,
        "seed {seed}: c1's rejoin must wait for p1 at least once"
    );
    assert_ledger_reconciles(&w.rt);
    assert_no_abandons(&w.rt);
    chaos.checkpoints_resubmitted
}

/// The tier-1 sweep: ten seeded overlapping-outage schedules. Across the
/// sweep, at least one schedule must exercise the lost-checkpoint repair
/// (a bottom-up checkpoint stranded in the crashed parent's pending
/// queue, resubmitted after catch-up).
#[test]
fn geo_chaos_sweep_preserves_safety_and_liveness() {
    let resubmitted: u64 = (0..10).map(run_geo_schedule).sum();
    assert!(
        resubmitted >= 1,
        "the sweep must exercise checkpoint resubmission at least once"
    );
}

/// The long nightly sweep (run with `--ignored`): fifty seeds.
#[test]
#[ignore = "long sweep; run explicitly or in the nightly CI job"]
fn geo_chaos_sweep_long() {
    for seed in 0..50 {
        run_geo_schedule(seed);
    }
}
