//! Chaos integration for the elastic controller: the E13 traffic engine
//! driven into a split, with the freshly spawned child crashed — and its
//! gossip lossy — while the migration funding transfers are still in
//! flight.
//!
//! Invariants, per schedule:
//!
//! * **Reconvergence** — the crashed child rejoins, catches up (catch-up
//!   re-executes every block, so a mismatched state root aborts the
//!   replay), and the whole hierarchy drains to quiescence.
//! * **No stranded migrated funds** — every migration the controller
//!   started settles, the escrow/conservation audits pass, and the summed
//!   balance of the touched account population equals exactly what was
//!   minted into it: splits, migrations, merges, and fund recovery move
//!   value between an account's homes, never create or destroy it.
//! * **Fault transparency** — the faulty run commits the same logical
//!   transfers as the fault-free run of the same seed, so every touched
//!   account ends at the identical summed balance.

use hc_core::{
    audit_escrow, audit_quiescent, ChaosStats, ElasticConfig, ElasticController, ElasticStats,
    HierarchyRuntime, RuntimeConfig, RuntimeError, UserHandle,
};
use hc_net::{CrashFault, FaultPlan, LossRule};
use hc_state::Method;
use hc_types::{SubnetId, TokenAmount};
use hc_workload::{LazyAccounts, OpenLoopGenerator, RampProfile, TrafficOp};

const EPOCH_MS: u64 = 1_000;
const AMOUNT: TokenAmount = TokenAmount::from_atto(1_000);
const INITIAL_BALANCE: u64 = 100;
const POPULATION: u64 = 20_000;

/// The traffic engine wired to a runtime and an elastic controller, with
/// the same inject-wave-poll round structure as `OpenLoop::run`.
struct Scenario {
    rt: HierarchyRuntime,
    ctrl: ElasticController,
    generator: OpenLoopGenerator,
    accounts: LazyAccounts,
}

impl Scenario {
    fn new(seed: u64) -> Self {
        let mut config = RuntimeConfig {
            seed: 0xE13_000 + seed,
            ..RuntimeConfig::default()
        };
        config.engine_params.block_capacity = 25;
        let mut rt = HierarchyRuntime::new(config);
        let operator = rt
            .create_user(&SubnetId::root(), TokenAmount::from_whole(1_000))
            .unwrap();
        let ctrl = ElasticController::new(
            operator,
            ElasticConfig {
                split_backlog: 100,
                ..ElasticConfig::default()
            },
        );
        Scenario {
            rt,
            ctrl,
            generator: OpenLoopGenerator::new(POPULATION, 1.1, 100 + seed, 9),
            accounts: LazyAccounts::new(TokenAmount::from_whole(INITIAL_BALANCE)),
        }
    }

    /// Submits one generated op, routed to the parties' current elastic
    /// homes (mirrors `OpenLoop::run`).
    fn submit(&mut self, op: TrafficOp) -> Result<(), RuntimeError> {
        let root = SubnetId::root();
        let sender = self.accounts.handle(&mut self.rt, op.sender)?;
        let receiver = self.accounts.handle(&mut self.rt, op.receiver)?;
        let from = UserHandle {
            subnet: self.ctrl.home_of(sender.addr, &root),
            addr: sender.addr,
        };
        let to = UserHandle {
            subnet: self.ctrl.home_of(receiver.addr, &root),
            addr: receiver.addr,
        };
        if from.subnet == to.subnet {
            self.rt
                .submit_with_fee(&from, to.addr, AMOUNT, Method::Send, op.fee)?;
        } else {
            self.rt
                .cross_transfer_lazy_with_fee(&from, &to, AMOUNT, op.fee)?;
        }
        Ok(())
    }

    /// One injection round: `rate` arrivals, then waves (polling the
    /// controller after each) until one virtual epoch has passed.
    fn round(&mut self, rate: u64) -> Result<(), RuntimeError> {
        for _ in 0..rate {
            let op = self.generator.next_op();
            self.submit(op)?;
        }
        let target = self.rt.now_ms() + EPOCH_MS;
        while self.rt.now_ms() < target {
            self.rt.step_wave()?;
            self.ctrl.poll(&mut self.rt)?;
        }
        Ok(())
    }

    /// Waves (with polls) until the hierarchy is quiescent.
    fn drain(&mut self) {
        let mut waves = 0usize;
        while !self.rt.all_quiescent() {
            self.rt.step_wave().unwrap();
            self.ctrl.poll(&mut self.rt).unwrap();
            waves += 1;
            assert!(waves < 10_000, "the hierarchy must drain to quiescence");
        }
    }

    /// Final summed balance of every touched logical account, keyed by
    /// logical index — the cross-run comparison key (addresses may differ
    /// between runs whose split timing diverged).
    fn balances(&self) -> Vec<(u64, TokenAmount)> {
        self.accounts
            .iter()
            .map(|(idx, h)| {
                let mut total = TokenAmount::ZERO;
                for subnet in self.rt.subnets() {
                    total += self.rt.balance(&UserHandle {
                        subnet: subnet.clone(),
                        addr: h.addr,
                    });
                }
                (idx, total)
            })
            .collect()
    }
}

struct Outcome {
    balances: Vec<(u64, TokenAmount)>,
    chaos: ChaosStats,
    elastic: ElasticStats,
}

/// One schedule: ramp until the controller splits, then (faulty runs
/// only) crash the new child and chew its gossip while the migration
/// funding is in flight, ride the window out, resume traffic against the
/// migrated hierarchy, and drain.
fn run_schedule(seed: u64, faults: bool) -> Outcome {
    let mut s = Scenario::new(seed);

    // Ramp until the first split. The fault plan is only installed after,
    // so this phase is bit-identical between the clean and faulty runs of
    // a seed.
    let ramp = RampProfile::Linear {
        start: 40,
        end: 120,
    };
    let mut rounds = 0u64;
    while s.ctrl.stats().splits == 0 {
        assert!(rounds < 40, "seed {seed}: the ramp must trigger a split");
        s.round(ramp.rate_at(rounds, 40)).unwrap();
        rounds += 1;
    }
    let child = s.ctrl.children().next().unwrap().clone();
    let stats = s.ctrl.stats();
    assert!(
        stats.migrations_settled < stats.migrations_started,
        "seed {seed}: the crash window must open during an in-flight migration"
    );

    let t = s.rt.now_ms();
    if faults {
        s.rt.extend_faults(FaultPlan {
            losses: vec![LossRule {
                from_ms: t,
                until_ms: t + 9_000,
                topic: Some(child.topic()),
                from: None,
                to: None,
                rate: 0.35,
            }],
            crashes: vec![CrashFault {
                subnet: child.clone(),
                crash_at_ms: t + 400,
                rejoin_at_ms: t + 5_000,
            }],
            ..FaultPlan::none()
        });
    }

    // Ride out the fault window with no fresh arrivals: the migration
    // funding is queued at the parent SCA while the child is down, lands
    // exactly once after catch-up, and only then flips routing. The loop
    // shape is identical in the clean run (both guards are simply false).
    while s.rt.now_ms() < t + 9_000 || s.rt.is_crashed(&child) || s.rt.is_catching_up(&child) {
        s.rt.step_wave().unwrap();
        s.ctrl.poll(&mut s.rt).unwrap();
    }

    // Post-fault traffic exercises the migrated routing.
    for _ in 0..8 {
        s.round(60).unwrap();
    }
    s.drain();

    audit_escrow(&s.rt).unwrap();
    audit_quiescent(&s.rt).unwrap();
    let elastic = s.ctrl.stats();
    assert_eq!(
        elastic.migrations_settled, elastic.migrations_started,
        "seed {seed}: every migration the controller started must settle"
    );
    let balances = s.balances();
    // Transfers, migrations, merges, and recovery move value between
    // touched accounts and their homes; none of it leaks. The population's
    // summed balance is exactly what was minted into it.
    let mut total = TokenAmount::ZERO;
    for (_, b) in &balances {
        total += *b;
    }
    assert_eq!(
        total,
        TokenAmount::from_whole(INITIAL_BALANCE * s.accounts.materialized()),
        "seed {seed}: funds were stranded or duplicated"
    );

    Outcome {
        balances,
        chaos: s.rt.chaos_stats(),
        elastic,
    }
}

/// The headline: crash + loss inside the migration window change nothing
/// observable — same final balances as the fault-free run of the seed.
#[test]
fn crash_and_loss_during_migration_window_strand_no_funds() {
    let clean = run_schedule(0, false);
    let faulty = run_schedule(0, true);

    assert_eq!(clean.chaos.crashes, 0);
    assert_eq!(faulty.chaos.crashes, 1);
    assert_eq!(faulty.chaos.rejoins, 1);
    assert_eq!(faulty.chaos.catch_ups_completed, 1);
    assert!(faulty.elastic.splits >= 1);
    assert!(faulty.elastic.migrations_settled >= 1);
    assert_eq!(
        clean.balances, faulty.balances,
        "the faulty run must commit exactly the clean run's transfers"
    );
}

/// The CI sweep: ten seeded schedules, each crashing the child inside its
/// migration window, each upholding the no-stranded-funds invariants
/// asserted inside `run_schedule`.
#[test]
fn elastic_chaos_sweep_preserves_funds_across_seeds() {
    for seed in 0..10 {
        let outcome = run_schedule(seed, true);
        assert_eq!(outcome.chaos.crashes, 1, "seed {seed}");
        assert_eq!(outcome.chaos.catch_ups_completed, 1, "seed {seed}");
        assert!(outcome.elastic.splits >= 1, "seed {seed}");
    }
}
