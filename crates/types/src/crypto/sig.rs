//! Simulation-grade digital signatures.
//!
//! # Substitution note (see DESIGN.md)
//!
//! The paper's implementation uses secp256k1/BLS signatures. The protocol
//! logic, however, only consumes two facts: *who* signed a message and
//! *whether* the signature verifies. This module provides a scheme with
//! exactly those observable properties, built purely on SHA-256:
//!
//! * a secret key is 32 random bytes;
//! * the public key is `sha256(sk || "hc-pubkey")`;
//! * a signature over `msg` is `sha256(sk || msg)`;
//! * verification recomputes the tag using a process-global *key oracle*
//!   that maps public keys to their secrets.
//!
//! The oracle makes verification possible without public-key mathematics.
//! Within the simulation it is sound: adversarial behaviour is modelled
//! explicitly (Byzantine nodes produce signatures only for keys they own, or
//! submit tampered [`Signature`] values which then fail verification), never
//! by reading the oracle. The scheme is deterministic, which keeps all
//! experiments reproducible.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

use rand::RngCore;
use serde::{Deserialize, Serialize};

use super::sha2::{sha256, sha256_concat};
use crate::encode::CanonicalEncode;

const PUBKEY_DOMAIN: &[u8] = b"hc-pubkey";

fn oracle() -> &'static RwLock<HashMap<PublicKey, [u8; 32]>> {
    static ORACLE: OnceLock<RwLock<HashMap<PublicKey, [u8; 32]>>> = OnceLock::new();
    ORACLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// A public verification key.
///
/// # Example
///
/// ```
/// use hc_types::Keypair;
///
/// let kp = Keypair::from_seed([7u8; 32]);
/// let sig = kp.sign(b"checkpoint");
/// assert!(sig.verify(b"checkpoint").is_ok());
/// assert!(sig.verify(b"tampered").is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PublicKey([u8; 32]);

impl PublicKey {
    /// Returns the raw key bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Reconstructs a public key from raw bytes (e.g. a decoded canonical
    /// encoding). The key is *not* registered with the oracle; a signature
    /// claiming an unregistered key simply fails verification.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        PublicKey(bytes)
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({})", self)
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..6] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl CanonicalEncode for PublicKey {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

/// A signing keypair. Generating or deriving a keypair registers it with the
/// process-global verification oracle (see module docs).
#[derive(Clone)]
pub struct Keypair {
    public: PublicKey,
    secret: [u8; 32],
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        f.debug_struct("Keypair")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl Keypair {
    /// Generates a fresh keypair from the given randomness source.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        Self::from_seed(secret)
    }

    /// Derives the keypair deterministically from a 32-byte seed.
    ///
    /// Deterministic derivation keeps simulations reproducible: the same
    /// seed always yields the same validator identity.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let public = PublicKey(sha256_concat(&[&seed, PUBKEY_DOMAIN]));
        let kp = Keypair {
            public,
            secret: seed,
        };
        oracle().write().expect("oracle lock").insert(public, seed);
        kp
    }

    /// Returns the public half of the keypair.
    pub const fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `msg`, producing a signature that verifies against
    /// [`Keypair::public`].
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature {
            signer: self.public,
            tag: sha256_concat(&[&self.secret, msg]),
        }
    }
}

/// Error returned when signature verification fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigError {
    /// The signer's public key is not known to the verification oracle.
    UnknownSigner,
    /// The signature tag does not match the message.
    BadSignature,
}

impl fmt::Display for SigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigError::UnknownSigner => f.write_str("signer public key is not registered"),
            SigError::BadSignature => f.write_str("signature does not verify against message"),
        }
    }
}

impl std::error::Error for SigError {}

/// A signature over a message, attributable to a [`PublicKey`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    signer: PublicKey,
    tag: [u8; 32],
}

impl Signature {
    /// Constructs a signature value without signing.
    ///
    /// This exists so Byzantine behaviour can be modelled: an adversary can
    /// fabricate a `Signature` claiming to be from any signer, and
    /// [`Signature::verify`] will reject it (with overwhelming probability)
    /// unless it was produced by the real key.
    pub fn new_unchecked(signer: PublicKey, tag: [u8; 32]) -> Self {
        Signature { signer, tag }
    }

    /// Returns the public key this signature claims to be from.
    pub const fn signer(&self) -> PublicKey {
        self.signer
    }

    /// Returns the raw signature tag.
    ///
    /// The tag is part of the signature's canonical encoding, so exposing
    /// it reveals nothing new; callers use it to key verified-signature
    /// caches by the *exact* signature value (not just the signer), so a
    /// tampered tag can never alias a cached verdict.
    pub const fn tag(&self) -> &[u8; 32] {
        &self.tag
    }

    /// Verifies the signature over `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`SigError::UnknownSigner`] if the claimed signer was never
    /// registered, or [`SigError::BadSignature`] if the tag does not match.
    pub fn verify(&self, msg: &[u8]) -> Result<(), SigError> {
        let guard = oracle().read().expect("oracle lock");
        let secret = guard.get(&self.signer).ok_or(SigError::UnknownSigner)?;
        let expected = sha256_concat(&[secret, msg]);
        if expected == self.tag {
            Ok(())
        } else {
            Err(SigError::BadSignature)
        }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature(by {})", self.signer)
    }
}

impl CanonicalEncode for Signature {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.signer.write_bytes(out);
        out.extend_from_slice(&self.tag);
    }
}

impl crate::decode::CanonicalDecode for PublicKey {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        Ok(PublicKey::from_bytes(<[u8; 32]>::read_bytes(r)?))
    }
}

impl crate::decode::CanonicalDecode for Signature {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        let signer = PublicKey::read_bytes(r)?;
        let tag = <[u8; 32]>::read_bytes(r)?;
        Ok(Signature::new_unchecked(signer, tag))
    }
}

/// Convenience re-export of the digest function at the signature layer.
pub(crate) fn _digest(msg: &[u8]) -> [u8; 32] {
    sha256(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_round_trip() {
        let kp = Keypair::from_seed([1u8; 32]);
        let sig = kp.sign(b"msg");
        assert_eq!(sig.signer(), kp.public());
        assert!(sig.verify(b"msg").is_ok());
    }

    #[test]
    fn verification_rejects_wrong_message() {
        let kp = Keypair::from_seed([2u8; 32]);
        let sig = kp.sign(b"msg");
        assert_eq!(sig.verify(b"other"), Err(SigError::BadSignature));
    }

    #[test]
    fn fabricated_signature_is_rejected() {
        let kp = Keypair::from_seed([3u8; 32]);
        let forged = Signature::new_unchecked(kp.public(), [0u8; 32]);
        assert_eq!(forged.verify(b"msg"), Err(SigError::BadSignature));
    }

    #[test]
    fn unknown_signer_is_rejected() {
        let bogus = Signature::new_unchecked(
            PublicKey(sha256(b"never registered as a keypair")),
            [0u8; 32],
        );
        assert_eq!(bogus.verify(b"msg"), Err(SigError::UnknownSigner));
    }

    #[test]
    fn deterministic_seed_gives_deterministic_identity() {
        let a = Keypair::from_seed([9u8; 32]);
        let b = Keypair::from_seed([9u8; 32]);
        assert_eq!(a.public(), b.public());
        assert_eq!(a.sign(b"x"), b.sign(b"x"));
    }

    #[test]
    fn generated_keys_are_distinct() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Keypair::generate(&mut rng);
        let b = Keypair::generate(&mut rng);
        assert_ne!(a.public(), b.public());
    }
}
