//! Cryptographic primitives.
//!
//! * [`sha256`] — a from-scratch, pure-Rust SHA-256 (FIPS 180-4), the hash
//!   underlying all content addressing in the system.
//! * [`Keypair`], [`PublicKey`], [`Signature`] — a simulation-grade
//!   signature scheme (see the type docs for the substitution rationale).
//! * [`SignaturePolicy`], [`AggregateSignature`] — the checkpoint signature
//!   policies from the paper (§III-B): single signer, m-of-n multi-sig, and
//!   threshold signatures over a validator set.

mod multisig;
mod sha2;
mod sig;

pub use multisig::{AggregateSignature, PolicyError, SignaturePolicy};
pub use sha2::{sha256, sha256_block_count};
pub use sig::{Keypair, PublicKey, SigError, Signature};
