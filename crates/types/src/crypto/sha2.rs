//! Pure-Rust SHA-256 (FIPS 180-4).
//!
//! Implemented from the specification so the workspace has no dependency on
//! external hashing crates. Validated against the official FIPS/NIST test
//! vectors in the unit tests below.

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Process-wide count of compression-function invocations (one per 64-byte
/// block, padding included). The counter is a pure diagnostic — it measures
/// hashing *work* deterministically, independent of machine speed — used by
/// the `msg_pipeline` speedup guard the same way the state commitment's
/// `bytes_hashed` counter backs the `state_root` guard.
static BLOCKS: core::sync::atomic::AtomicU64 = core::sync::atomic::AtomicU64::new(0);

/// Total SHA-256 blocks compressed by this process so far.
///
/// Monotonic and thread-safe; callers measure a region of work by
/// differencing two readings.
pub fn sha256_block_count() -> u64 {
    BLOCKS.load(core::sync::atomic::Ordering::Relaxed)
}

/// Computes the SHA-256 digest of `data`.
///
/// # Example
///
/// ```
/// use hc_types::crypto::sha256;
///
/// // The empty-string digest is a well-known constant.
/// let d = sha256(b"");
/// assert_eq!(d[0], 0xe3);
/// assert_eq!(d[31], 0x55);
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = H0;

    // Message schedule is processed block by block over the padded message:
    // data || 0x80 || zeros || (bit length as big-endian u64).
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut block = [0u8; 64];
    let mut chunks = data.chunks_exact(64);
    for chunk in &mut chunks {
        block.copy_from_slice(chunk);
        compress(&mut state, &block);
    }

    let rem = chunks.remainder();
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] = 0x80;
    block[rem.len() + 1..].fill(0);
    if rem.len() + 1 > 56 {
        // Length field does not fit; it goes into an extra block.
        compress(&mut state, &block);
        block.fill(0);
    }
    block[56..].copy_from_slice(&bit_len.to_be_bytes());
    compress(&mut state, &block);

    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Computes SHA-256 over the concatenation of several byte strings without
/// materializing the concatenation.
pub(crate) fn sha256_concat(parts: &[&[u8]]) -> [u8; 32] {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut buf = Vec::with_capacity(total);
    for p in parts {
        buf.extend_from_slice(p);
    }
    sha256(&buf)
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    BLOCKS.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; 32]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Official FIPS 180-4 / NIST CAVP vectors.
    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_block_message() {
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries_are_handled() {
        // Lengths around the 55/56/64-byte padding boundaries exercise the
        // extra-block path.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5au8; len];
            let d1 = sha256(&data);
            let d2 = sha256(&data);
            assert_eq!(d1, d2);
            // Flipping any byte must change the digest.
            let mut tampered = data.clone();
            tampered[len / 2] ^= 1;
            assert_ne!(sha256(&tampered), d1, "len {len}");
        }
    }

    #[test]
    fn concat_matches_plain_hash() {
        assert_eq!(sha256_concat(&[b"ab", b"c"]), sha256(b"abc"));
        assert_eq!(sha256_concat(&[]), sha256(b""));
    }
}
