//! Checkpoint signature policies.
//!
//! The paper (§III-B) leaves the checkpoint signature scheme to each Subnet
//! Actor: "this can be the signature of an individual miner, a
//! multi-signature, or a threshold signature, depending on the SA policy".
//! This module models all three as a [`SignaturePolicy`] evaluated over an
//! [`AggregateSignature`] — a set of individual signatures from a known
//! validator set.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use super::sig::{PublicKey, Signature};
use crate::encode::CanonicalEncode;

/// The policy a Subnet Actor enforces before accepting a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignaturePolicy {
    /// A single designated signer must sign (e.g. a delegated sequencer).
    Single(PublicKey),
    /// At least `threshold` distinct members of `signers` must sign
    /// (an m-of-n multi-signature).
    MultiSig {
        /// The eligible signer set.
        signers: Vec<PublicKey>,
        /// Minimum number of distinct valid signatures required.
        threshold: usize,
    },
    /// A quorum threshold expressed as a fraction of the signer set; the
    /// classic BFT choice is 2/3 (`num = 2, den = 3`), requiring strictly
    /// more than `num/den` of the signers.
    Threshold {
        /// The eligible signer set.
        signers: Vec<PublicKey>,
        /// Numerator of the quorum fraction.
        num: usize,
        /// Denominator of the quorum fraction.
        den: usize,
    },
}

impl SignaturePolicy {
    /// A convenience constructor for the canonical BFT 2/3 quorum policy.
    pub fn two_thirds(signers: Vec<PublicKey>) -> Self {
        SignaturePolicy::Threshold {
            signers,
            num: 2,
            den: 3,
        }
    }

    /// Returns the minimum number of distinct valid signatures the policy
    /// requires.
    pub fn required_signatures(&self) -> usize {
        match self {
            SignaturePolicy::Single(_) => 1,
            SignaturePolicy::MultiSig { threshold, .. } => *threshold,
            SignaturePolicy::Threshold { signers, num, den } => {
                // Strictly more than num/den of n: floor(n * num / den) + 1.
                signers.len() * num / den + 1
            }
        }
    }

    /// Returns the eligible signer set.
    pub fn signers(&self) -> &[PublicKey] {
        match self {
            SignaturePolicy::Single(pk) => std::slice::from_ref(pk),
            SignaturePolicy::MultiSig { signers, .. } => signers,
            SignaturePolicy::Threshold { signers, .. } => signers,
        }
    }

    /// Checks `agg` against the policy for message `msg`.
    ///
    /// Signatures from non-members, duplicate signers, and signatures that
    /// fail verification are ignored rather than treated as fatal — a
    /// checkpoint with enough honest signatures is accepted even if it also
    /// carries junk (this mirrors how on-chain multisig checks behave).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::QuorumNotReached`] if fewer than
    /// [`required_signatures`](Self::required_signatures) distinct eligible
    /// signers produced valid signatures, or [`PolicyError::InvalidPolicy`]
    /// if the policy itself is malformed (zero threshold, threshold larger
    /// than the signer set, or zero denominator).
    pub fn check(&self, msg: &[u8], agg: &AggregateSignature) -> Result<(), PolicyError> {
        self.validate()?;
        let eligible: HashSet<&PublicKey> = self.signers().iter().collect();
        let mut seen = HashSet::new();
        let mut valid = 0usize;
        for sig in &agg.signatures {
            if !eligible.contains(&sig.signer()) {
                continue;
            }
            if !seen.insert(sig.signer()) {
                continue; // duplicate signer
            }
            if sig.verify(msg).is_ok() {
                valid += 1;
            }
        }
        let need = self.required_signatures();
        if valid >= need {
            Ok(())
        } else {
            Err(PolicyError::QuorumNotReached { got: valid, need })
        }
    }

    /// Validates internal consistency of the policy.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidPolicy`] for empty signer sets, zero or
    /// unsatisfiable thresholds, and zero denominators.
    pub fn validate(&self) -> Result<(), PolicyError> {
        let ok = match self {
            SignaturePolicy::Single(_) => true,
            SignaturePolicy::MultiSig { signers, threshold } => {
                *threshold > 0 && *threshold <= signers.len()
            }
            SignaturePolicy::Threshold { signers, num, den } => {
                *den > 0 && num < den && !signers.is_empty()
            }
        };
        if ok {
            Ok(())
        } else {
            Err(PolicyError::InvalidPolicy)
        }
    }
}

impl CanonicalEncode for SignaturePolicy {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        match self {
            SignaturePolicy::Single(pk) => {
                out.push(0);
                pk.write_bytes(out);
            }
            SignaturePolicy::MultiSig { signers, threshold } => {
                out.push(1);
                signers.write_bytes(out);
                (*threshold as u64).write_bytes(out);
            }
            SignaturePolicy::Threshold { signers, num, den } => {
                out.push(2);
                signers.write_bytes(out);
                (*num as u64).write_bytes(out);
                (*den as u64).write_bytes(out);
            }
        }
    }
}

impl crate::decode::CanonicalDecode for SignaturePolicy {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        let tag = u8::read_bytes(r)?;
        match tag {
            0 => Ok(SignaturePolicy::Single(PublicKey::read_bytes(r)?)),
            1 => Ok(SignaturePolicy::MultiSig {
                signers: Vec::<PublicKey>::read_bytes(r)?,
                threshold: u64::read_bytes(r)? as usize,
            }),
            2 => Ok(SignaturePolicy::Threshold {
                signers: Vec::<PublicKey>::read_bytes(r)?,
                num: u64::read_bytes(r)? as usize,
                den: u64::read_bytes(r)? as usize,
            }),
            other => Err(crate::decode::DecodeError::BadTag {
                what: "SignaturePolicy",
                tag: other,
            }),
        }
    }
}

/// A bag of individual signatures submitted towards a policy check.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AggregateSignature {
    signatures: Vec<Signature>,
}

impl AggregateSignature {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a signature to the aggregate.
    pub fn add(&mut self, sig: Signature) -> &mut Self {
        self.signatures.push(sig);
        self
    }

    /// Returns the number of signatures carried (including any invalid or
    /// duplicate ones).
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Returns `true` if the aggregate carries no signatures.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Iterates over the carried signatures.
    pub fn iter(&self) -> impl Iterator<Item = &Signature> {
        self.signatures.iter()
    }
}

impl FromIterator<Signature> for AggregateSignature {
    fn from_iter<I: IntoIterator<Item = Signature>>(iter: I) -> Self {
        AggregateSignature {
            signatures: iter.into_iter().collect(),
        }
    }
}

impl Extend<Signature> for AggregateSignature {
    fn extend<I: IntoIterator<Item = Signature>>(&mut self, iter: I) {
        self.signatures.extend(iter);
    }
}

impl CanonicalEncode for AggregateSignature {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.signatures.write_bytes(out);
    }
}

impl crate::decode::CanonicalDecode for AggregateSignature {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        Ok(AggregateSignature {
            signatures: Vec::<Signature>::read_bytes(r)?,
        })
    }
}

/// Error produced by [`SignaturePolicy::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyError {
    /// Not enough distinct, eligible, valid signatures.
    QuorumNotReached {
        /// Valid signatures counted.
        got: usize,
        /// Signatures required by the policy.
        need: usize,
    },
    /// The policy itself is malformed.
    InvalidPolicy,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::QuorumNotReached { got, need } => {
                write!(f, "signature quorum not reached: got {got}, need {need}")
            }
            PolicyError::InvalidPolicy => f.write_str("malformed signature policy"),
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::Keypair;

    fn validators(n: usize) -> Vec<Keypair> {
        (0..n)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[0] = i as u8;
                seed[1] = 0xa5;
                Keypair::from_seed(seed)
            })
            .collect()
    }

    #[test]
    fn single_policy_accepts_the_designated_signer_only() {
        let kps = validators(2);
        let policy = SignaturePolicy::Single(kps[0].public());
        let msg = b"ckpt";

        let mut agg = AggregateSignature::new();
        agg.add(kps[1].sign(msg));
        assert!(policy.check(msg, &agg).is_err());

        agg.add(kps[0].sign(msg));
        assert!(policy.check(msg, &agg).is_ok());
    }

    #[test]
    fn multisig_threshold_counts_distinct_valid_signers() {
        let kps = validators(4);
        let policy = SignaturePolicy::MultiSig {
            signers: kps.iter().map(|k| k.public()).collect(),
            threshold: 3,
        };
        let msg = b"ckpt";

        // Two signatures + a duplicate of one of them: still only 2 distinct.
        let agg: AggregateSignature = [kps[0].sign(msg), kps[1].sign(msg), kps[0].sign(msg)]
            .into_iter()
            .collect();
        assert_eq!(
            policy.check(msg, &agg),
            Err(PolicyError::QuorumNotReached { got: 2, need: 3 })
        );

        let agg: AggregateSignature = kps[..3].iter().map(|k| k.sign(msg)).collect();
        assert!(policy.check(msg, &agg).is_ok());
    }

    #[test]
    fn two_thirds_requires_strict_majority_of_two_thirds() {
        let kps = validators(4); // need floor(4*2/3)+1 = 3
        let policy = SignaturePolicy::two_thirds(kps.iter().map(|k| k.public()).collect());
        assert_eq!(policy.required_signatures(), 3);
        let msg = b"m";
        let agg: AggregateSignature = kps[..2].iter().map(|k| k.sign(msg)).collect();
        assert!(policy.check(msg, &agg).is_err());
        let agg: AggregateSignature = kps[..3].iter().map(|k| k.sign(msg)).collect();
        assert!(policy.check(msg, &agg).is_ok());
    }

    #[test]
    fn invalid_and_foreign_signatures_do_not_count() {
        let kps = validators(3);
        let outsider = Keypair::from_seed([0xffu8; 32]);
        let policy = SignaturePolicy::MultiSig {
            signers: kps.iter().map(|k| k.public()).collect(),
            threshold: 2,
        };
        let msg = b"ckpt";
        let agg: AggregateSignature = [
            kps[0].sign(msg),
            kps[1].sign(b"WRONG MESSAGE"), // invalid
            outsider.sign(msg),            // not a member
        ]
        .into_iter()
        .collect();
        assert_eq!(
            policy.check(msg, &agg),
            Err(PolicyError::QuorumNotReached { got: 1, need: 2 })
        );
    }

    #[test]
    fn signature_policy_codecs_round_trip_every_variant() {
        use crate::decode::CanonicalDecode;
        let kps = validators(3);
        let pks: Vec<_> = kps.iter().map(|k| k.public()).collect();
        for policy in [
            SignaturePolicy::Single(pks[0]),
            SignaturePolicy::MultiSig {
                signers: pks.clone(),
                threshold: 2,
            },
            SignaturePolicy::two_thirds(pks),
        ] {
            let bytes = policy.canonical_bytes();
            let back = SignaturePolicy::decode(&bytes).unwrap();
            assert_eq!(back, policy);
        }
        assert!(SignaturePolicy::decode(&[9]).is_err());
    }

    #[test]
    fn malformed_policies_are_rejected() {
        let kps = validators(2);
        let pks: Vec<_> = kps.iter().map(|k| k.public()).collect();
        for bad in [
            SignaturePolicy::MultiSig {
                signers: pks.clone(),
                threshold: 0,
            },
            SignaturePolicy::MultiSig {
                signers: pks.clone(),
                threshold: 3,
            },
            SignaturePolicy::Threshold {
                signers: pks.clone(),
                num: 1,
                den: 0,
            },
            SignaturePolicy::Threshold {
                signers: vec![],
                num: 2,
                den: 3,
            },
            SignaturePolicy::Threshold {
                signers: pks,
                num: 3,
                den: 3,
            },
        ] {
            assert_eq!(bad.validate(), Err(PolicyError::InvalidPolicy));
        }
    }
}
