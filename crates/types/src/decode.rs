//! Deterministic canonical binary decoding — the inverse of [`crate::encode`].
//!
//! Decoding exists for the durability layer: write-ahead logs and blob logs
//! persist canonical encodings, and crash recovery must turn those bytes back
//! into values. The rules mirror [`crate::encode`] exactly:
//!
//! * integers are little-endian fixed width;
//! * `bool` is one byte and must be `0` or `1`;
//! * variable-length sequences carry a `u64` length prefix;
//! * `Option<T>` is a presence byte (`0`/`1`) followed by the value;
//! * composite types concatenate their fields in declaration order.
//!
//! Decoding is *strict*: unknown enum tags, non-canonical booleans, truncated
//! input, and (at the [`CanonicalDecode::decode`] entry point) trailing bytes
//! are all errors. Strictness is what makes torn-write detection sound — a
//! frame either decodes to exactly one value or is rejected.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Error returned when canonical decoding fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A whole-value decode left unconsumed bytes.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// An enum tag byte (or variant index) was not recognised.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix exceeded the remaining input (corrupt or hostile).
    BadLength {
        /// The type being decoded.
        what: &'static str,
        /// The claimed element count.
        len: u64,
    },
    /// The bytes were structurally readable but semantically invalid.
    Invalid {
        /// Human-readable description of the violation.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            DecodeError::BadTag { what, tag } => write!(f, "unknown tag {tag} for {what}"),
            DecodeError::BadLength { what, len } => {
                write!(f, "length prefix {len} for {what} exceeds remaining input")
            }
            DecodeError::Invalid { what } => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over canonical bytes.
///
/// Reads consume from the front; every read either succeeds completely or
/// fails without a defined position (callers abandon the reader on error).
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let remaining = self.remaining();
        if n > remaining {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u64` length prefix and bounds-checks it against the
    /// remaining input (each element of a canonical sequence encodes to at
    /// least one byte, so a valid count can never exceed the bytes left).
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if the prefix itself is truncated, or
    /// [`DecodeError::BadLength`] if the count is implausible.
    pub fn len_prefix(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let len = u64::read_bytes(self)?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::BadLength { what, len });
        }
        Ok(len as usize)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Asserts that the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// Deterministic binary decoding: the inverse of
/// [`CanonicalEncode`](crate::CanonicalEncode).
///
/// Implementations must be *exact* inverses: for every value `v`,
/// `T::decode(&v.canonical_bytes()) == Ok(v)`, and every byte string accepted
/// by `decode` is the canonical encoding of the returned value
/// (round-tripping in both directions).
pub trait CanonicalDecode: Sized {
    /// Reads one value from the cursor, consuming exactly its encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the bytes are not a canonical encoding
    /// of `Self`.
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;

    /// Decodes a whole value from `bytes`, rejecting trailing input.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the bytes are not exactly one
    /// canonical encoding of `Self`.
    fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::read_bytes(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! impl_int_decode {
    ($($t:ty),*) => {$(
        impl CanonicalDecode for $t {
            fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
                let raw = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(raw.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_int_decode!(u8, u16, u32, u64, u128, i64);

impl CanonicalDecode for bool {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::read_bytes(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }
}

impl CanonicalDecode for [u8; 32] {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(r.take(32)?.try_into().expect("sized take"))
    }
}

impl CanonicalDecode for String {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = r.len_prefix("String")?;
        let raw = r.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Invalid {
            what: "string is not valid UTF-8",
        })
    }
}

impl<T: CanonicalDecode> CanonicalDecode for Option<T> {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::read_bytes(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::read_bytes(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: CanonicalDecode> CanonicalDecode for Vec<T> {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = r.len_prefix("Vec")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::read_bytes(r)?);
        }
        Ok(out)
    }
}

impl<T: CanonicalDecode> CanonicalDecode for VecDeque<T> {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = r.len_prefix("VecDeque")?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::read_bytes(r)?);
        }
        Ok(out)
    }
}

impl<K: CanonicalDecode + Ord, V: CanonicalDecode> CanonicalDecode for BTreeMap<K, V> {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = r.len_prefix("BTreeMap")?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::read_bytes(r)?;
            let v = V::read_bytes(r)?;
            // Canonical encodings emit keys in strictly ascending order;
            // anything else is a non-canonical byte string and must be
            // rejected so decode(bytes) accepts exactly one encoding.
            if let Some((last, _)) = out.last_key_value() {
                if *last >= k {
                    return Err(DecodeError::Invalid {
                        what: "map keys are not strictly ascending",
                    });
                }
            }
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: CanonicalDecode + Ord> CanonicalDecode for BTreeSet<T> {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = r.len_prefix("BTreeSet")?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            let item = T::read_bytes(r)?;
            if let Some(last) = out.last() {
                if *last >= item {
                    return Err(DecodeError::Invalid {
                        what: "set elements are not strictly ascending",
                    });
                }
            }
            out.insert(item);
        }
        Ok(out)
    }
}

impl<A: CanonicalDecode, B: CanonicalDecode> CanonicalDecode for (A, B) {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::read_bytes(r)?, B::read_bytes(r)?))
    }
}

impl<A: CanonicalDecode, B: CanonicalDecode, C: CanonicalDecode> CanonicalDecode for (A, B, C) {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::read_bytes(r)?, B::read_bytes(r)?, C::read_bytes(r)?))
    }
}

/// Implements [`CanonicalDecode`] for a struct by reading the listed fields
/// in declaration order — the mirror of [`crate::encode_fields`].
///
/// ```
/// use hc_types::{decode_fields, encode_fields, CanonicalDecode, CanonicalEncode};
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u64, y: u64 }
/// encode_fields!(Point { x, y });
/// decode_fields!(Point { x, y });
///
/// let p = Point { x: 1, y: 2 };
/// assert_eq!(Point::decode(&p.canonical_bytes()).unwrap(), p);
/// ```
#[macro_export]
macro_rules! decode_fields {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::decode::CanonicalDecode for $ty {
            fn read_bytes(
                r: &mut $crate::decode::ByteReader<'_>,
            ) -> Result<Self, $crate::decode::DecodeError> {
                $( let $field = $crate::decode::CanonicalDecode::read_bytes(r)?; )+
                Ok($ty { $($field),+ })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::CanonicalEncode;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u8::decode(&7u8.canonical_bytes()), Ok(7));
        assert_eq!(
            u32::decode(&0x0102_0304u32.canonical_bytes()),
            Ok(0x0102_0304)
        );
        assert_eq!(u128::decode(&u128::MAX.canonical_bytes()), Ok(u128::MAX));
        assert_eq!(i64::decode(&(-5i64).canonical_bytes()), Ok(-5));
        assert_eq!(bool::decode(&true.canonical_bytes()), Ok(true));
        assert_eq!(
            String::decode(&"héllo".to_owned().canonical_bytes()),
            Ok("héllo".into())
        );
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::decode(&v.canonical_bytes()), Ok(v));
        assert_eq!(
            Option::<u8>::decode(&Some(9u8).canonical_bytes()),
            Ok(Some(9))
        );
        assert_eq!(
            Option::<u8>::decode(&None::<u8>.canonical_bytes()),
            Ok(None)
        );
    }

    #[test]
    fn collections_round_trip() {
        let dq: VecDeque<u32> = [5u32, 6, 7].into_iter().collect();
        assert_eq!(VecDeque::<u32>::decode(&dq.canonical_bytes()), Ok(dq));

        let map: BTreeMap<u64, String> = [(1u64, "a".to_owned()), (9, "b".to_owned())]
            .into_iter()
            .collect();
        assert_eq!(
            BTreeMap::<u64, String>::decode(&map.canonical_bytes()),
            Ok(map.clone())
        );

        let set: BTreeSet<u16> = [3u16, 4, 9].into_iter().collect();
        assert_eq!(BTreeSet::<u16>::decode(&set.canonical_bytes()), Ok(set));

        // Hand-rolled length-prefixed pair encodings (the idiom existing
        // actor state uses) are byte-identical to the generic impls.
        let mut hand = Vec::new();
        (map.len() as u64).write_bytes(&mut hand);
        for (k, v) in &map {
            k.write_bytes(&mut hand);
            v.write_bytes(&mut hand);
        }
        assert_eq!(hand, map.canonical_bytes());
    }

    #[test]
    fn non_ascending_map_and_set_bytes_are_rejected() {
        // Two entries with descending keys: not a canonical map encoding.
        let mut bytes = Vec::new();
        2u64.write_bytes(&mut bytes);
        9u64.write_bytes(&mut bytes);
        0u8.write_bytes(&mut bytes);
        1u64.write_bytes(&mut bytes);
        0u8.write_bytes(&mut bytes);
        assert!(matches!(
            BTreeMap::<u64, u8>::decode(&bytes),
            Err(DecodeError::Invalid { .. })
        ));

        // Duplicate set elements are equally non-canonical.
        let mut bytes = Vec::new();
        2u64.write_bytes(&mut bytes);
        4u64.write_bytes(&mut bytes);
        4u64.write_bytes(&mut bytes);
        assert!(matches!(
            BTreeSet::<u64>::decode(&bytes),
            Err(DecodeError::Invalid { .. })
        ));
    }

    #[test]
    fn truncation_and_trailing_are_rejected() {
        let bytes = 1u64.canonical_bytes();
        assert!(matches!(
            u64::decode(&bytes[..7]),
            Err(DecodeError::UnexpectedEof { .. })
        ));
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(matches!(
            u64::decode(&extra),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn non_canonical_tags_are_rejected() {
        assert!(matches!(
            bool::decode(&[2]),
            Err(DecodeError::BadTag { .. })
        ));
        assert!(matches!(
            Option::<u8>::decode(&[9, 0]),
            Err(DecodeError::BadTag { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        u64::MAX.write_bytes(&mut bytes);
        assert!(matches!(
            Vec::<u8>::decode(&bytes),
            Err(DecodeError::BadLength { .. })
        ));
    }
}
