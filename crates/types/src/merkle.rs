//! Binary Merkle trees with membership proofs.
//!
//! Used wherever the paper commits to a *set* of items by a single CID:
//! the `msgsCid` digest of a cross-message group inside a `CrossMsgMeta`,
//! the `children` tree of a checkpoint, and state snapshots persisted by the
//! SCA `save` function. Membership proofs let light clients check that a
//! particular message or child checkpoint is covered by a committed root
//! without downloading the whole set.

use serde::{Deserialize, Serialize};

use crate::cid::Cid;
use crate::crypto::sha256;
use crate::encode::CanonicalEncode;

// Domain separation prevents a leaf digest from being reinterpreted as an
// interior node (second-preimage attacks on unbalanced trees).
const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

fn leaf_hash(data: &[u8]) -> Cid {
    let mut buf = Vec::with_capacity(1 + data.len());
    buf.push(LEAF_TAG);
    buf.extend_from_slice(data);
    Cid::digest(&buf)
}

fn node_hash(left: &Cid, right: &Cid) -> Cid {
    let mut buf = Vec::with_capacity(65);
    buf.push(NODE_TAG);
    buf.extend_from_slice(left.as_bytes());
    buf.extend_from_slice(right.as_bytes());
    Cid::digest(&buf)
}

/// A binary Merkle tree over the canonical encodings of its leaves.
///
/// Odd nodes are promoted unchanged to the next level (Bitcoin-style
/// duplication is avoided; promotion cannot create mutation ambiguity
/// because of the leaf/node domain tags).
///
/// # Example
///
/// ```
/// use hc_types::merkle::MerkleTree;
///
/// let tree = MerkleTree::from_items(&["a", "b", "c"]);
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&"b", tree.root()));
/// assert!(!proof.verify(&"x", tree.root()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, last level = [root]. Empty tree has no
    /// levels and root `Cid::NIL`.
    levels: Vec<Vec<Cid>>,
}

impl MerkleTree {
    /// Builds a tree over the canonical encodings of `items`.
    pub fn from_items<T: CanonicalEncode>(items: &[T]) -> Self {
        Self::from_leaf_bytes(items.iter().map(|i| i.canonical_bytes()))
    }

    /// Builds a tree from precomputed leaf byte strings.
    pub fn from_leaf_bytes<I, B>(leaves: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let leaf_hashes: Vec<Cid> = leaves.into_iter().map(|b| leaf_hash(b.as_ref())).collect();
        if leaf_hashes.is_empty() {
            return MerkleTree { levels: Vec::new() };
        }
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [l, r] => next.push(node_hash(l, r)),
                    [single] => next.push(*single),
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root commitment. [`Cid::NIL`] for an empty tree.
    pub fn root(&self) -> Cid {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Cid::NIL)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Returns `true` if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces a membership proof for the leaf at `index`, or `None` if
    /// out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push(ProofStep {
                    sibling: level[sibling],
                    sibling_on_left: sibling < idx,
                });
            }
            // If no sibling (odd promotion), the node passes through.
            idx /= 2;
        }
        Some(MerkleProof { path })
    }
}

/// One step of a Merkle membership proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ProofStep {
    sibling: Cid,
    sibling_on_left: bool,
}

/// A Merkle membership proof: the sibling path from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    path: Vec<ProofStep>,
}

impl MerkleProof {
    /// Verifies that `item` is a leaf of the tree committed to by `root`.
    pub fn verify<T: CanonicalEncode>(&self, item: &T, root: Cid) -> bool {
        self.verify_leaf_bytes(&item.canonical_bytes(), root)
    }

    /// Verifies a proof against raw leaf bytes.
    pub fn verify_leaf_bytes(&self, leaf: &[u8], root: Cid) -> bool {
        let mut acc = leaf_hash(leaf);
        for step in &self.path {
            acc = if step.sibling_on_left {
                node_hash(&step.sibling, &acc)
            } else {
                node_hash(&acc, &step.sibling)
            };
        }
        acc == root
    }

    /// Proof length in tree levels (≈ log₂ of the leaf count).
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Returns `true` for a single-leaf tree's (empty) proof.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }
}

/// Convenience: the Merkle root CID of a sequence of canonical items.
///
/// This is how `msgsCid` — "the CID (message digest) of the group of
/// messages" (paper §III-B) — is computed for `CrossMsgMeta`.
pub fn merkle_root<T: CanonicalEncode>(items: &[T]) -> Cid {
    MerkleTree::from_items(items).root()
}

// SHA-256 is exposed through Cid::digest; keep the direct import used.
const _: fn(&[u8]) -> [u8; 32] = sha256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_has_nil_root() {
        let t = MerkleTree::from_items::<u64>(&[]);
        assert!(t.is_empty());
        assert_eq!(t.root(), Cid::NIL);
        assert_eq!(t.prove(0), None);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash_and_proof_is_empty() {
        let t = MerkleTree::from_items(&[42u64]);
        assert_eq!(t.len(), 1);
        let proof = t.prove(0).unwrap();
        assert!(proof.is_empty());
        assert!(proof.verify(&42u64, t.root()));
        assert!(!proof.verify(&43u64, t.root()));
    }

    #[test]
    fn all_leaves_prove_for_various_sizes() {
        for n in 1..=17u64 {
            let items: Vec<u64> = (0..n).collect();
            let t = MerkleTree::from_items(&items);
            for (i, item) in items.iter().enumerate() {
                let proof = t.prove(i).unwrap();
                assert!(proof.verify(item, t.root()), "n={n} i={i}");
                // Wrong item fails.
                assert!(!proof.verify(&(item + 1000), t.root()), "n={n} i={i}");
            }
            assert!(t.prove(n as usize).is_none());
        }
    }

    #[test]
    fn root_changes_with_any_leaf_change_or_reorder() {
        let base = merkle_root(&[1u64, 2, 3, 4]);
        assert_ne!(base, merkle_root(&[1u64, 2, 3, 5]));
        assert_ne!(base, merkle_root(&[1u64, 2, 4, 3]));
        assert_ne!(base, merkle_root(&[1u64, 2, 3]));
        assert_ne!(base, merkle_root(&[1u64, 2, 3, 4, 4]));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A 2-leaf tree's root must differ from the leaf hash of the
        // concatenated child digests (tag separation).
        let t = MerkleTree::from_items(&[1u64, 2u64]);
        let l0 = leaf_hash(&1u64.canonical_bytes());
        let l1 = leaf_hash(&2u64.canonical_bytes());
        let mut concat = Vec::new();
        concat.extend_from_slice(l0.as_bytes());
        concat.extend_from_slice(l1.as_bytes());
        assert_ne!(t.root(), leaf_hash(&concat));
    }

    #[test]
    fn proof_for_one_index_does_not_verify_another_leaf() {
        let items: Vec<u64> = (0..8).collect();
        let t = MerkleTree::from_items(&items);
        let proof_for_2 = t.prove(2).unwrap();
        assert!(!proof_for_2.verify(&items[3], t.root()));
    }
}
