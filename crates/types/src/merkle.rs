//! Binary Merkle trees with membership proofs.
//!
//! Used wherever the paper commits to a *set* of items by a single CID:
//! the `msgsCid` digest of a cross-message group inside a `CrossMsgMeta`,
//! the `children` tree of a checkpoint, and state snapshots persisted by the
//! SCA `save` function. Membership proofs let light clients check that a
//! particular message or child checkpoint is covered by a committed root
//! without downloading the whole set.

use serde::{Deserialize, Serialize};

use crate::cid::Cid;
use crate::crypto::sha256;
use crate::encode::CanonicalEncode;

// Domain separation prevents a leaf digest from being reinterpreted as an
// interior node (second-preimage attacks on unbalanced trees).
const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

fn leaf_hash(data: &[u8]) -> Cid {
    let mut buf = Vec::with_capacity(1 + data.len());
    buf.push(LEAF_TAG);
    buf.extend_from_slice(data);
    Cid::digest(&buf)
}

fn node_hash(left: &Cid, right: &Cid) -> Cid {
    let mut buf = Vec::with_capacity(65);
    buf.push(NODE_TAG);
    buf.extend_from_slice(left.as_bytes());
    buf.extend_from_slice(right.as_bytes());
    Cid::digest(&buf)
}

/// Bytes hashed per interior-node combine (tag + two 32-byte digests).
pub const NODE_HASH_BYTES: u64 = 65;

/// The domain-separated digest of one leaf's byte string.
///
/// Exposing this lets callers that already track per-item digests (e.g. a
/// chunked state commitment) build or patch a [`MerkleTree`] without
/// re-encoding the underlying items.
pub fn leaf_digest(data: &[u8]) -> Cid {
    leaf_hash(data)
}

/// A binary Merkle tree over the canonical encodings of its leaves.
///
/// Odd nodes are promoted unchanged to the next level (Bitcoin-style
/// duplication is avoided; promotion cannot create mutation ambiguity
/// because of the leaf/node domain tags).
///
/// # Example
///
/// ```
/// use hc_types::merkle::MerkleTree;
///
/// let tree = MerkleTree::from_items(&["a", "b", "c"]);
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&"b", tree.root()));
/// assert!(!proof.verify(&"x", tree.root()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, last level = [root]. Empty tree has no
    /// levels and root `Cid::NIL`.
    levels: Vec<Vec<Cid>>,
}

impl MerkleTree {
    /// Builds a tree over the canonical encodings of `items`.
    pub fn from_items<T: CanonicalEncode>(items: &[T]) -> Self {
        Self::from_leaf_bytes(items.iter().map(|i| i.canonical_bytes()))
    }

    /// Builds a tree from precomputed leaf byte strings.
    pub fn from_leaf_bytes<I, B>(leaves: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        Self::from_leaf_hashes(leaves.into_iter().map(|b| leaf_hash(b.as_ref())).collect())
    }

    /// Builds a tree from already-computed (domain-tagged) leaf digests,
    /// skipping the leaf-hashing pass entirely. Digests must come from
    /// [`leaf_digest`] for the root to match [`Self::from_leaf_bytes`].
    pub fn from_leaf_hashes(leaf_hashes: Vec<Cid>) -> Self {
        if leaf_hashes.is_empty() {
            return MerkleTree { levels: Vec::new() };
        }
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [l, r] => next.push(node_hash(l, r)),
                    [single] => next.push(*single),
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Replaces the leaf digests at the given indices and rehashes only the
    /// affected root paths. Returns the number of bytes hashed.
    ///
    /// Indices must be in range; the leaf *count* cannot change through this
    /// method (use [`Self::from_leaf_hashes`] when leaves are added or
    /// removed).
    pub fn update_leaves(&mut self, patches: &[(usize, Cid)]) -> u64 {
        if patches.is_empty() || self.levels.is_empty() {
            return 0;
        }
        let mut changed: Vec<usize> = Vec::with_capacity(patches.len());
        for &(idx, digest) in patches {
            assert!(idx < self.levels[0].len(), "leaf index out of range");
            if self.levels[0][idx] != digest {
                self.levels[0][idx] = digest;
                changed.push(idx);
            }
        }
        let mut bytes_hashed = 0u64;
        let num_levels = self.levels.len();
        for lvl in 0..num_levels - 1 {
            changed.sort_unstable();
            changed.dedup_by_key(|i| *i / 2);
            let mut parents = Vec::with_capacity(changed.len());
            for &idx in &changed {
                let pair = idx & !1;
                let (split_a, split_b) = self.levels.split_at_mut(lvl + 1);
                let level = &split_a[lvl];
                let parent = pair / 2;
                split_b[0][parent] = if pair + 1 < level.len() {
                    bytes_hashed += NODE_HASH_BYTES;
                    node_hash(&level[pair], &level[pair + 1])
                } else {
                    // Odd promotion: the node passes through unchanged.
                    level[pair]
                };
                parents.push(parent);
            }
            changed = parents;
        }
        bytes_hashed
    }

    /// Computes the root that *would* result from replacing the leaves at
    /// the patched indices, without mutating the tree. Returns the
    /// hypothetical root and the number of bytes hashed.
    ///
    /// This is the read-only analogue of [`Self::update_leaves`], used by
    /// copy-on-write state overlays to derive a candidate state root
    /// without committing.
    pub fn root_with_patches(
        &self,
        patches: &std::collections::BTreeMap<usize, Cid>,
    ) -> (Cid, u64) {
        if patches.is_empty() {
            return (self.root(), 0);
        }
        if self.levels.is_empty() {
            return (Cid::NIL, 0);
        }
        let mut bytes_hashed = 0u64;
        // Sparse overrides per level; anything absent falls back to the
        // stored digest.
        let mut overrides: std::collections::BTreeMap<usize, Cid> = patches.clone();
        let num_levels = self.levels.len();
        for lvl in 0..num_levels - 1 {
            let level = &self.levels[lvl];
            let mut parent_overrides = std::collections::BTreeMap::new();
            let mut pairs: Vec<usize> = overrides.keys().map(|i| i & !1).collect();
            pairs.dedup();
            for pair in pairs {
                let get = |i: usize| *overrides.get(&i).unwrap_or(&level[i]);
                let digest = if pair + 1 < level.len() {
                    bytes_hashed += NODE_HASH_BYTES;
                    node_hash(&get(pair), &get(pair + 1))
                } else {
                    get(pair)
                };
                parent_overrides.insert(pair / 2, digest);
            }
            overrides = parent_overrides;
        }
        let root = *overrides.get(&0).unwrap_or(&self.root());
        (root, bytes_hashed)
    }

    /// The leaf digest at `index`, if in range.
    pub fn leaf(&self, index: usize) -> Option<Cid> {
        self.levels.first().and_then(|l| l.get(index)).copied()
    }

    /// Bytes hashed by the interior-node combines of a full build of this
    /// tree (excludes leaf hashing). Used for cost accounting.
    pub fn interior_hash_bytes(&self) -> u64 {
        self.levels[..self.levels.len().saturating_sub(1)]
            .iter()
            .map(|l| (l.len() / 2) as u64 * NODE_HASH_BYTES)
            .sum()
    }

    /// The root commitment. [`Cid::NIL`] for an empty tree.
    pub fn root(&self) -> Cid {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Cid::NIL)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Returns `true` if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces a membership proof for the leaf at `index`, or `None` if
    /// out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push(ProofStep {
                    sibling: level[sibling],
                    sibling_on_left: sibling < idx,
                });
            }
            // If no sibling (odd promotion), the node passes through.
            idx /= 2;
        }
        Some(MerkleProof { path })
    }
}

/// One step of a Merkle membership proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ProofStep {
    sibling: Cid,
    sibling_on_left: bool,
}

/// A Merkle membership proof: the sibling path from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    path: Vec<ProofStep>,
}

impl MerkleProof {
    /// Verifies that `item` is a leaf of the tree committed to by `root`.
    pub fn verify<T: CanonicalEncode>(&self, item: &T, root: Cid) -> bool {
        self.verify_leaf_bytes(&item.canonical_bytes(), root)
    }

    /// Verifies a proof against raw leaf bytes.
    pub fn verify_leaf_bytes(&self, leaf: &[u8], root: Cid) -> bool {
        let mut acc = leaf_hash(leaf);
        for step in &self.path {
            acc = if step.sibling_on_left {
                node_hash(&step.sibling, &acc)
            } else {
                node_hash(&acc, &step.sibling)
            };
        }
        acc == root
    }

    /// Proof length in tree levels (≈ log₂ of the leaf count).
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Returns `true` for a single-leaf tree's (empty) proof.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }
}

crate::encode_fields!(ProofStep {
    sibling,
    sibling_on_left
});
crate::decode_fields!(ProofStep {
    sibling,
    sibling_on_left
});

crate::encode_fields!(MerkleProof { path });
crate::decode_fields!(MerkleProof { path });

/// Convenience: the Merkle root CID of a sequence of canonical items.
///
/// This is how `msgsCid` — "the CID (message digest) of the group of
/// messages" (paper §III-B) — is computed for `CrossMsgMeta`.
pub fn merkle_root<T: CanonicalEncode>(items: &[T]) -> Cid {
    MerkleTree::from_items(items).root()
}

// SHA-256 is exposed through Cid::digest; keep the direct import used.
const _: fn(&[u8]) -> [u8; 32] = sha256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_has_nil_root() {
        let t = MerkleTree::from_items::<u64>(&[]);
        assert!(t.is_empty());
        assert_eq!(t.root(), Cid::NIL);
        assert_eq!(t.prove(0), None);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash_and_proof_is_empty() {
        let t = MerkleTree::from_items(&[42u64]);
        assert_eq!(t.len(), 1);
        let proof = t.prove(0).unwrap();
        assert!(proof.is_empty());
        assert!(proof.verify(&42u64, t.root()));
        assert!(!proof.verify(&43u64, t.root()));
    }

    #[test]
    fn all_leaves_prove_for_various_sizes() {
        for n in 1..=17u64 {
            let items: Vec<u64> = (0..n).collect();
            let t = MerkleTree::from_items(&items);
            for (i, item) in items.iter().enumerate() {
                let proof = t.prove(i).unwrap();
                assert!(proof.verify(item, t.root()), "n={n} i={i}");
                // Wrong item fails.
                assert!(!proof.verify(&(item + 1000), t.root()), "n={n} i={i}");
            }
            assert!(t.prove(n as usize).is_none());
        }
    }

    #[test]
    fn root_changes_with_any_leaf_change_or_reorder() {
        let base = merkle_root(&[1u64, 2, 3, 4]);
        assert_ne!(base, merkle_root(&[1u64, 2, 3, 5]));
        assert_ne!(base, merkle_root(&[1u64, 2, 4, 3]));
        assert_ne!(base, merkle_root(&[1u64, 2, 3]));
        assert_ne!(base, merkle_root(&[1u64, 2, 3, 4, 4]));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A 2-leaf tree's root must differ from the leaf hash of the
        // concatenated child digests (tag separation).
        let t = MerkleTree::from_items(&[1u64, 2u64]);
        let l0 = leaf_hash(&1u64.canonical_bytes());
        let l1 = leaf_hash(&2u64.canonical_bytes());
        let mut concat = Vec::new();
        concat.extend_from_slice(l0.as_bytes());
        concat.extend_from_slice(l1.as_bytes());
        assert_ne!(t.root(), leaf_hash(&concat));
    }

    #[test]
    fn proof_for_one_index_does_not_verify_another_leaf() {
        let items: Vec<u64> = (0..8).collect();
        let t = MerkleTree::from_items(&items);
        let proof_for_2 = t.prove(2).unwrap();
        assert!(!proof_for_2.verify(&items[3], t.root()));
    }

    #[test]
    fn from_leaf_hashes_matches_from_leaf_bytes() {
        for n in 0..=17u64 {
            let leaves: Vec<Vec<u8>> = (0..n).map(|i| i.canonical_bytes()).collect();
            let direct = MerkleTree::from_leaf_bytes(leaves.iter());
            let hashes: Vec<Cid> = leaves.iter().map(|b| leaf_digest(b)).collect();
            let prehashed = MerkleTree::from_leaf_hashes(hashes);
            assert_eq!(direct, prehashed, "n={n}");
        }
    }

    #[test]
    fn update_leaves_matches_full_rebuild() {
        for n in 1..=17usize {
            let items: Vec<u64> = (0..n as u64).collect();
            let mut t = MerkleTree::from_items(&items);
            // Patch a few leaves and compare with a rebuilt tree.
            let patch_idx: Vec<usize> = [0, n / 2, n - 1].into_iter().collect();
            let mut updated = items.clone();
            let mut patches = Vec::new();
            for &i in &patch_idx {
                updated[i] = 1000 + i as u64;
                patches.push((i, leaf_digest(&updated[i].canonical_bytes())));
            }
            let bytes = t.update_leaves(&patches);
            let rebuilt = MerkleTree::from_items(&updated);
            assert_eq!(t, rebuilt, "n={n}");
            if n > 1 {
                assert!(bytes > 0, "n={n}: interior hashing must happen");
            }
        }
    }

    #[test]
    fn update_leaves_hashes_only_touched_paths() {
        let items: Vec<u64> = (0..1024).collect();
        let mut t = MerkleTree::from_items(&items);
        let bytes = t.update_leaves(&[(7, leaf_digest(&9999u64.canonical_bytes()))]);
        // One leaf in a 1024-leaf tree: 10 interior combines, not 1023.
        assert_eq!(bytes, 10 * NODE_HASH_BYTES);
    }

    #[test]
    fn root_with_patches_matches_rebuild_without_mutation() {
        for n in 1..=17usize {
            let items: Vec<u64> = (0..n as u64).collect();
            let t = MerkleTree::from_items(&items);
            let before = t.clone();
            let mut updated = items.clone();
            let mut patches = std::collections::BTreeMap::new();
            for &i in &[0, n / 2, n - 1] {
                updated[i] = 2000 + i as u64;
                patches.insert(i, leaf_digest(&updated[i].canonical_bytes()));
            }
            let (root, _bytes) = t.root_with_patches(&patches);
            assert_eq!(root, MerkleTree::from_items(&updated).root(), "n={n}");
            assert_eq!(t, before, "root_with_patches must not mutate");
        }
    }

    #[test]
    fn update_with_identical_digest_is_free() {
        let items: Vec<u64> = (0..64).collect();
        let mut t = MerkleTree::from_items(&items);
        let same = t.leaf(5).unwrap();
        assert_eq!(t.update_leaves(&[(5, same)]), 0);
    }
}
