//! Deterministic canonical binary encoding.
//!
//! Content addressing (see [`crate::cid`]) requires that logically equal
//! values always serialize to identical bytes. Rather than depending on a
//! particular serde data format, this module defines a minimal canonical
//! encoding with fixed rules:
//!
//! * integers are little-endian fixed width;
//! * `bool` is one byte (`0`/`1`);
//! * variable-length sequences (byte strings, `Vec`, strings) are prefixed
//!   with their `u64` length;
//! * `Option<T>` is a presence byte followed by the value;
//! * composite types concatenate the canonical encodings of their fields in
//!   declaration order.
//!
//! Types participate by implementing [`CanonicalEncode`]; the blanket
//! [`CanonicalEncode::canonical_bytes`] and [`CanonicalEncode::cid`] helpers
//! then derive stable byte strings and content identifiers.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cid::Cid;

/// Deterministic binary encoding used for hashing and content addressing.
///
/// Implementations must be *canonical*: equal values produce equal bytes and
/// the encoding never depends on runtime state (hash map iteration order,
/// pointer values, …).
///
/// # Example
///
/// ```
/// use hc_types::CanonicalEncode;
///
/// let a = (1u64, "hello".to_owned()).canonical_bytes();
/// let b = (1u64, "hello".to_owned()).canonical_bytes();
/// assert_eq!(a, b);
/// ```
pub trait CanonicalEncode {
    /// Appends the canonical encoding of `self` to `out`.
    fn write_bytes(&self, out: &mut Vec<u8>);

    /// Returns the canonical encoding as an owned byte vector.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_bytes(&mut out);
        out
    }

    /// Returns the content identifier (SHA-256 digest) of the canonical
    /// encoding.
    fn cid(&self) -> Cid {
        Cid::digest(&self.canonical_bytes())
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl CanonicalEncode for $t {
            fn write_bytes(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i64);

impl CanonicalEncode for bool {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl CanonicalEncode for [u8; 32] {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl CanonicalEncode for String {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.as_bytes().write_bytes(out);
    }
}

impl CanonicalEncode for &str {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.as_bytes().write_bytes(out);
    }
}

impl<T: CanonicalEncode> CanonicalEncode for Option<T> {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write_bytes(out);
            }
        }
    }
}

impl<T: CanonicalEncode> CanonicalEncode for [T] {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        (self.len() as u64).write_bytes(out);
        for item in self {
            item.write_bytes(out);
        }
    }
}

impl<T: CanonicalEncode> CanonicalEncode for Vec<T> {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.as_slice().write_bytes(out);
    }
}

impl<T: CanonicalEncode> CanonicalEncode for VecDeque<T> {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        (self.len() as u64).write_bytes(out);
        for item in self {
            item.write_bytes(out);
        }
    }
}

impl<K: CanonicalEncode, V: CanonicalEncode> CanonicalEncode for BTreeMap<K, V> {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        (self.len() as u64).write_bytes(out);
        for (k, v) in self {
            k.write_bytes(out);
            v.write_bytes(out);
        }
    }
}

impl<T: CanonicalEncode> CanonicalEncode for BTreeSet<T> {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        (self.len() as u64).write_bytes(out);
        for item in self {
            item.write_bytes(out);
        }
    }
}

impl<T: CanonicalEncode + ?Sized> CanonicalEncode for &T {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        (*self).write_bytes(out);
    }
}

impl<A: CanonicalEncode, B: CanonicalEncode> CanonicalEncode for (A, B) {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.0.write_bytes(out);
        self.1.write_bytes(out);
    }
}

impl<A: CanonicalEncode, B: CanonicalEncode, C: CanonicalEncode> CanonicalEncode for (A, B, C) {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.0.write_bytes(out);
        self.1.write_bytes(out);
        self.2.write_bytes(out);
    }
}

/// Implements [`CanonicalEncode`] for a struct by concatenating the listed
/// fields in order.
///
/// ```
/// use hc_types::{encode_fields, CanonicalEncode};
///
/// struct Point { x: u64, y: u64 }
/// encode_fields!(Point { x, y });
///
/// let p = Point { x: 1, y: 2 };
/// assert_eq!(p.canonical_bytes().len(), 16);
/// ```
#[macro_export]
macro_rules! encode_fields {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::encode::CanonicalEncode for $ty {
            fn write_bytes(&self, out: &mut Vec<u8>) {
                $( self.$field.write_bytes(out); )+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_little_endian_fixed_width() {
        assert_eq!(0x0102_0304u32.canonical_bytes(), vec![4, 3, 2, 1]);
        assert_eq!(1u64.canonical_bytes().len(), 8);
        assert_eq!(1u128.canonical_bytes().len(), 16);
    }

    #[test]
    fn sequences_are_length_prefixed() {
        let v = vec![1u8, 2, 3];
        let bytes = v.canonical_bytes();
        assert_eq!(&bytes[..8], &3u64.to_le_bytes());
        assert_eq!(&bytes[8..], &[1, 2, 3]);
    }

    #[test]
    fn length_prefix_prevents_concatenation_ambiguity() {
        // ("ab", "c") must not encode the same as ("a", "bc").
        let x = ("ab", "c").canonical_bytes();
        let y = ("a", "bc").canonical_bytes();
        assert_ne!(x, y);
    }

    #[test]
    fn option_is_tagged() {
        assert_eq!(None::<u8>.canonical_bytes(), vec![0]);
        assert_eq!(Some(7u8).canonical_bytes(), vec![1, 7]);
    }

    #[test]
    fn macro_encodes_fields_in_order() {
        struct Pair {
            a: u8,
            b: u8,
        }
        encode_fields!(Pair { a, b });
        assert_eq!(Pair { a: 1, b: 2 }.canonical_bytes(), vec![1, 2]);
    }
}
