//! Actor and account addresses.
//!
//! Addresses identify actors (accounts and system contracts) *within* a
//! subnet. They are modelled after Filecoin ID addresses (`f0…`): a compact
//! integer namespace where low IDs are reserved for singleton system actors.
//!
//! The address space is partitioned as follows:
//!
//! | Range        | Use                                            |
//! |--------------|------------------------------------------------|
//! | `0`          | system actor (block producer context)          |
//! | `1`          | burnt-funds actor (tokens sent here are burned)|
//! | `2`          | reward actor                                   |
//! | `64`         | Subnet Coordinator Actor (SCA)                 |
//! | `65`         | atomic-execution coordinator actor             |
//! | `66..100`    | reserved for future system actors              |
//! | `100..`      | user-deployed actors and accounts (incl. SAs)  |

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::encode::CanonicalEncode;

/// First address available for non-system (user) actors.
pub const FIRST_USER_ADDRESS: u64 = 100;

/// An actor address within a subnet.
///
/// `Address` is an ordered, copyable newtype over the actor ID. Use
/// [`Address::new`] for user accounts and the associated constants
/// ([`Address::SCA`], [`Address::BURNT_FUNDS`], …) for system actors.
///
/// # Example
///
/// ```
/// use hc_types::Address;
///
/// let alice = Address::new(100);
/// assert_eq!(alice.to_string(), "a100");
/// assert_eq!("a100".parse::<Address>().unwrap(), alice);
/// assert!(!alice.is_system());
/// assert!(Address::SCA.is_system());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Address(u64);

impl Address {
    /// The system actor, used as the implicit sender of consensus-internal
    /// messages (e.g. applying cross-net messages committed in a block).
    pub const SYSTEM: Address = Address(0);
    /// The burnt-funds actor. Tokens transferred here leave the circulating
    /// supply of the subnet (used when bottom-up cross-messages exit a
    /// subnet).
    pub const BURNT_FUNDS: Address = Address(1);
    /// The reward actor, funding block rewards and fee redistribution.
    pub const REWARD: Address = Address(2);
    /// The Subnet Coordinator Actor (SCA). Singleton system actor that
    /// implements subnet registration, collateral management, checkpoint
    /// commitment, and cross-net message routing for its subnet.
    pub const SCA: Address = Address(64);
    /// The atomic execution coordinator actor, orchestrating cross-net
    /// atomic executions (two-phase commit) in the least common ancestor.
    pub const ATOMIC_EXEC: Address = Address(65);

    /// Creates an address from a raw actor ID.
    pub const fn new(id: u64) -> Self {
        Address(id)
    }

    /// Returns the raw actor ID.
    pub const fn id(self) -> u64 {
        self.0
    }

    /// Returns `true` if this address belongs to the reserved system range.
    pub const fn is_system(self) -> bool {
        self.0 < FIRST_USER_ADDRESS
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u64> for Address {
    fn from(id: u64) -> Self {
        Address(id)
    }
}

impl CanonicalEncode for Address {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.0.write_bytes(out);
    }
}

impl crate::decode::CanonicalDecode for Address {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        Ok(Address::new(u64::read_bytes(r)?))
    }
}

/// Error returned when parsing an [`Address`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddressError {
    input: String,
}

impl fmt::Display for ParseAddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseAddressError {}

impl FromStr for Address {
    type Err = ParseAddressError;

    /// Parses the `a<id>` representation produced by [`Display`](fmt::Display).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAddressError {
            input: s.to_owned(),
        };
        let digits = s.strip_prefix('a').ok_or_else(err)?;
        if digits.is_empty() || digits.len() > 20 {
            return Err(err());
        }
        let id = digits.parse::<u64>().map_err(|_| err())?;
        Ok(Address(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        for id in [0u64, 1, 2, 64, 99, 100, 12345, u64::MAX] {
            let addr = Address::new(id);
            assert_eq!(addr.to_string().parse::<Address>().unwrap(), addr);
        }
    }

    #[test]
    fn system_range_is_below_first_user_address() {
        assert!(Address::SYSTEM.is_system());
        assert!(Address::BURNT_FUNDS.is_system());
        assert!(Address::REWARD.is_system());
        assert!(Address::SCA.is_system());
        assert!(Address::ATOMIC_EXEC.is_system());
        assert!(Address::new(99).is_system());
        assert!(!Address::new(FIRST_USER_ADDRESS).is_system());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!("".parse::<Address>().is_err());
        assert!("a".parse::<Address>().is_err());
        assert!("100".parse::<Address>().is_err());
        assert!("b100".parse::<Address>().is_err());
        assert!("a-1".parse::<Address>().is_err());
        assert!("a1.5".parse::<Address>().is_err());
        assert!("a99999999999999999999999".parse::<Address>().is_err());
    }

    #[test]
    fn ordering_follows_ids() {
        assert!(Address::new(1) < Address::new(2));
        assert!(Address::SCA < Address::ATOMIC_EXEC);
    }
}
