//! Chain epochs and message nonces.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::encode::CanonicalEncode;

/// A block height ("epoch") within a single subnet's chain.
///
/// Epochs are subnet-local: `/root` and `/root/a100` advance their epochs
/// independently, possibly at very different block times.
///
/// # Example
///
/// ```
/// use hc_types::ChainEpoch;
///
/// let e = ChainEpoch::new(10);
/// assert_eq!((e + 5).value(), 15);
/// assert!(e.is_multiple_of(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChainEpoch(u64);

impl ChainEpoch {
    /// The genesis epoch.
    pub const GENESIS: ChainEpoch = ChainEpoch(0);

    /// Creates an epoch from a raw height.
    pub const fn new(height: u64) -> Self {
        ChainEpoch(height)
    }

    /// Returns the raw height.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the next epoch.
    #[must_use]
    pub const fn next(self) -> Self {
        ChainEpoch(self.0 + 1)
    }

    /// Returns `true` when this epoch falls on a multiple of `period`
    /// (used to decide checkpoint windows).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub const fn is_multiple_of(self, period: u64) -> bool {
        self.0.is_multiple_of(period)
    }

    /// Returns the number of epochs from `earlier` to `self`, saturating at
    /// zero if `earlier` is later.
    pub const fn since(self, earlier: ChainEpoch) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for ChainEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl Add<u64> for ChainEpoch {
    type Output = ChainEpoch;
    fn add(self, rhs: u64) -> ChainEpoch {
        ChainEpoch(self.0 + rhs)
    }
}

impl AddAssign<u64> for ChainEpoch {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<ChainEpoch> for ChainEpoch {
    type Output = u64;
    fn sub(self, rhs: ChainEpoch) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for ChainEpoch {
    fn from(v: u64) -> Self {
        ChainEpoch(v)
    }
}

impl CanonicalEncode for ChainEpoch {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.0.write_bytes(out);
    }
}

impl crate::decode::CanonicalDecode for ChainEpoch {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        Ok(ChainEpoch::new(u64::read_bytes(r)?))
    }
}

/// A strictly increasing sequence number.
///
/// Nonces enforce total order and exactly-once application: account message
/// nonces within a subnet, and per-`(source, destination)` cross-net message
/// nonces assigned by the SCA (paper §IV-A: "These nonces determine the
/// total order of arrival of cross-msgs to the subnet").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nonce(u64);

impl Nonce {
    /// The zero nonce (first message).
    pub const ZERO: Nonce = Nonce(0);

    /// Creates a nonce from a raw counter value.
    pub const fn new(v: u64) -> Self {
        Nonce(v)
    }

    /// Returns the raw counter value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the next nonce.
    #[must_use]
    pub const fn next(self) -> Self {
        Nonce(self.0 + 1)
    }

    /// Advances `self` and returns the pre-increment value — the classic
    /// "allocate the next sequence number" operation.
    pub fn fetch_increment(&mut self) -> Nonce {
        let cur = *self;
        self.0 += 1;
        cur
    }
}

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for Nonce {
    fn from(v: u64) -> Self {
        Nonce(v)
    }
}

impl CanonicalEncode for Nonce {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.0.write_bytes(out);
    }
}

impl crate::decode::CanonicalDecode for Nonce {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        Ok(Nonce::new(u64::read_bytes(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_arithmetic() {
        let e = ChainEpoch::new(10);
        assert_eq!(e.next(), ChainEpoch::new(11));
        assert_eq!(e + 5, ChainEpoch::new(15));
        assert_eq!(ChainEpoch::new(15) - e, 5);
        assert_eq!(e.since(ChainEpoch::new(4)), 6);
        assert_eq!(e.since(ChainEpoch::new(40)), 0);
    }

    #[test]
    fn epoch_checkpoint_window() {
        assert!(ChainEpoch::new(0).is_multiple_of(10));
        assert!(ChainEpoch::new(20).is_multiple_of(10));
        assert!(!ChainEpoch::new(25).is_multiple_of(10));
    }

    #[test]
    fn nonce_fetch_increment_allocates_sequentially() {
        let mut n = Nonce::ZERO;
        assert_eq!(n.fetch_increment(), Nonce::new(0));
        assert_eq!(n.fetch_increment(), Nonce::new(1));
        assert_eq!(n, Nonce::new(2));
    }
}
