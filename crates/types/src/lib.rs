//! # hc-types — foundation types for hierarchical consensus
//!
//! This crate provides the primitive vocabulary shared by every other crate
//! in the hierarchical-consensus workspace:
//!
//! * [`SubnetId`] — hierarchical subnet identifiers (`/root/a100/a101`) with
//!   the path algebra (parent, least common ancestor, routing steps) that
//!   cross-net message propagation is built on.
//! * [`Address`] — actor/account addresses within a subnet.
//! * [`TokenAmount`] — checked, fixed-point native-token arithmetic.
//! * [`Cid`] — content identifiers derived from SHA-256 digests of canonical
//!   encodings, used to address checkpoints, cross-message groups, and state.
//! * [`crypto`] — a pure-Rust SHA-256 implementation (validated against
//!   FIPS 180-4 vectors), a simulation-grade signature scheme, and the
//!   multi-signature / threshold signature policies used by checkpoint
//!   validation.
//! * [`merkle`] — binary Merkle trees with membership proofs, used for
//!   cross-message metadata (`CrossMsgMeta`) digests and checkpoint children
//!   trees.
//! * [`encode`] — deterministic canonical binary encoding, the basis for all
//!   content addressing.
//! * [`decode`] — the strict inverse of [`encode`], used by the durability
//!   layer (`hc-store`) to replay logged values during crash recovery.
//!
//! # Example
//!
//! ```
//! use hc_types::{SubnetId, Address};
//!
//! let root = SubnetId::root();
//! let a = root.child(Address::new(100));
//! let b = a.child(Address::new(101));
//! assert_eq!(b.to_string(), "/root/a100/a101");
//! assert_eq!(b.parent().unwrap(), a);
//! assert!(root.is_ancestor_of(&b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod cid;
pub mod crypto;
pub mod decode;
pub mod encode;
pub mod epoch;
pub mod merkle;
pub mod subnet_id;
pub mod tcid;
pub mod token;

pub use address::Address;
pub use cid::Cid;
pub use crypto::{Keypair, PublicKey, Signature};
pub use decode::{ByteReader, CanonicalDecode, DecodeError};
pub use encode::CanonicalEncode;
pub use epoch::{ChainEpoch, Nonce};
pub use subnet_id::{RouteStep, SubnetId};
pub use tcid::{MAmtRoot, MHamtNode, TCid};
pub use token::TokenAmount;
