//! Typed content identifiers.
//!
//! A [`TCid<M>`] is a [`Cid`] tagged at the type level with what the CID
//! points *at* — a HAMT node, an AMT root, a chunk manifest. The runtime
//! representation is exactly a 32-byte CID (encoding and ordering are
//! identical to the raw [`Cid`]), but the phantom marker keeps the many
//! CID-valued fields of the state-commitment stack from being swapped for
//! one another: `TCid<MHamtNode>` and `TCid<MAmtRoot>` are different types
//! even though both are "just hashes".
//!
//! This is the typed-CID-wrapper idiom from the hierarchical-SCA
//! builtin-actors (`tcid::{hamt, amt}`), reduced to the part this codebase
//! needs: a zero-cost phantom type with canonical encode/decode.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

use crate::decode::{ByteReader, CanonicalDecode, DecodeError};
use crate::encode::CanonicalEncode;
use crate::Cid;

/// A [`Cid`] whose type records what kind of blob it addresses.
///
/// `M` is a zero-sized marker (for example [`MHamtNode`]); it never exists
/// at runtime. All comparison, hashing, encoding, and display behave
/// exactly like the underlying CID.
pub struct TCid<M> {
    cid: Cid,
    _marker: PhantomData<fn() -> M>,
}

/// Marker: the CID addresses a canonical HAMT node blob.
#[derive(Debug)]
pub enum MHamtNode {}

/// Marker: the CID addresses a canonical AMT root blob (header + top node).
#[derive(Debug)]
pub enum MAmtRoot {}

impl<M> TCid<M> {
    /// Wraps a raw CID, asserting (at the type level only) what it points
    /// at.
    pub const fn from_cid(cid: Cid) -> Self {
        TCid {
            cid,
            _marker: PhantomData,
        }
    }

    /// The typed CID of `bytes`' digest.
    pub fn digest(bytes: &[u8]) -> Self {
        Self::from_cid(Cid::digest(bytes))
    }

    /// The underlying untyped CID.
    pub const fn cid(&self) -> Cid {
        self.cid
    }
}

impl<M> From<TCid<M>> for Cid {
    fn from(t: TCid<M>) -> Cid {
        t.cid
    }
}

// Manual impls: `derive` would bound them on `M`, which is never
// instantiated.
impl<M> Clone for TCid<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for TCid<M> {}

impl<M> PartialEq for TCid<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cid == other.cid
    }
}
impl<M> Eq for TCid<M> {}

impl<M> PartialOrd for TCid<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for TCid<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cid.cmp(&other.cid)
    }
}

impl<M> Hash for TCid<M> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.cid.hash(state);
    }
}

impl<M> fmt::Debug for TCid<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TCid({})", self.cid)
    }
}

impl<M> fmt::Display for TCid<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.cid, f)
    }
}

impl<M> CanonicalEncode for TCid<M> {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.cid.write_bytes(out);
    }
}

impl<M> CanonicalDecode for TCid<M> {
    fn read_bytes(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Self::from_cid(Cid::read_bytes(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcid_is_transparent_over_cid() {
        let cid = Cid::digest(b"blob");
        let t: TCid<MHamtNode> = TCid::from_cid(cid);
        assert_eq!(t.cid(), cid);
        assert_eq!(t, TCid::digest(b"blob"));
        assert_eq!(t.canonical_bytes(), cid.canonical_bytes());
        assert_eq!(t.to_string(), cid.to_string());
        let back = TCid::<MHamtNode>::decode(&t.canonical_bytes()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tcid_orders_like_cid() {
        let a = Cid::digest(b"a");
        let b = Cid::digest(b"b");
        let (ta, tb) = (TCid::<MAmtRoot>::from_cid(a), TCid::<MAmtRoot>::from_cid(b));
        assert_eq!(ta.cmp(&tb), a.cmp(&b));
    }
}
