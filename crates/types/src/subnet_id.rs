//! Hierarchical subnet identifiers.
//!
//! Subnets form a tree rooted at the *rootnet*. Per the paper (§III-A),
//! "subnets are identified with a unique ID that is inferred
//! deterministically from the ID of its ancestor and from the ID of the SA
//! that governs its operation" — i.e. a subnet ID is the path of Subnet
//! Actor addresses from the root: `/root/a100/a101`.
//!
//! This deterministic naming is what lets any participant derive a subnet's
//! pub-sub topic and route cross-net messages without a discovery service.
//! The routing algebra lives here: [`SubnetId::parent`],
//! [`SubnetId::common_ancestor`], and [`SubnetId::next_hop`] implement the
//! *top-down*, *bottom-up*, and *path* message routing of §IV-A.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::address::Address;
use crate::encode::CanonicalEncode;

/// Maximum supported hierarchy depth. Deep enough for any realistic
/// deployment while keeping path operations trivially bounded.
pub const MAX_DEPTH: usize = 32;

/// A hierarchical subnet identifier: the path of Subnet Actor addresses from
/// the rootnet down to the subnet.
///
/// # Example
///
/// ```
/// use hc_types::{Address, SubnetId};
///
/// let root = SubnetId::root();
/// let a = root.child(Address::new(100));
/// let ab = a.child(Address::new(101));
/// let c = root.child(Address::new(102));
///
/// assert_eq!(ab.parent(), Some(a.clone()));
/// assert_eq!(ab.common_ancestor(&c), root);
/// assert_eq!("/root/a100/a101".parse::<SubnetId>().unwrap(), ab);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SubnetId {
    route: Vec<Address>,
}

impl SubnetId {
    /// The rootnet identifier, `/root`.
    pub fn root() -> Self {
        SubnetId { route: Vec::new() }
    }

    /// Creates a subnet ID from an explicit route of SA addresses.
    pub fn from_route<I: IntoIterator<Item = Address>>(route: I) -> Self {
        SubnetId {
            route: route.into_iter().collect(),
        }
    }

    /// Returns the ID of the child subnet governed by Subnet Actor `actor`.
    #[must_use]
    pub fn child(&self, actor: Address) -> Self {
        let mut route = self.route.clone();
        route.push(actor);
        SubnetId { route }
    }

    /// Returns the parent subnet, or `None` for the rootnet.
    pub fn parent(&self) -> Option<SubnetId> {
        if self.route.is_empty() {
            None
        } else {
            Some(SubnetId {
                route: self.route[..self.route.len() - 1].to_vec(),
            })
        }
    }

    /// Returns the address of the Subnet Actor that governs this subnet in
    /// its parent chain, or `None` for the rootnet.
    pub fn actor(&self) -> Option<Address> {
        self.route.last().copied()
    }

    /// Returns `true` for the rootnet.
    pub fn is_root(&self) -> bool {
        self.route.is_empty()
    }

    /// Distance from the root (root has depth 0).
    pub fn depth(&self) -> usize {
        self.route.len()
    }

    /// The route of SA addresses from the root.
    pub fn route(&self) -> &[Address] {
        &self.route
    }

    /// Returns `true` if `self` is a *strict* ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &SubnetId) -> bool {
        other.route.len() > self.route.len() && other.route[..self.route.len()] == self.route[..]
    }

    /// Returns `true` if `self` is an ancestor of `other` or equal to it.
    pub fn is_prefix_of(&self, other: &SubnetId) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// The least common ancestor of `self` and `other` (the rootnet in the
    /// worst case). This is the subnet where a *path* message turns from
    /// bottom-up to top-down propagation, and the default execution subnet
    /// for atomic executions (paper §IV-D).
    pub fn common_ancestor(&self, other: &SubnetId) -> SubnetId {
        let shared = self
            .route
            .iter()
            .zip(other.route.iter())
            .take_while(|(a, b)| a == b)
            .count();
        SubnetId {
            route: self.route[..shared].to_vec(),
        }
    }

    /// Computes where a message currently in subnet `self`, destined for
    /// `dst`, must travel next. See [`RouteStep`].
    pub fn next_hop(&self, dst: &SubnetId) -> RouteStep {
        if self == dst {
            RouteStep::Here
        } else if self.is_ancestor_of(dst) {
            // Move down into the child on the path towards dst.
            RouteStep::Down(self.child(dst.route[self.route.len()]))
        } else {
            // Either dst is above us, or in another branch: both cases go up.
            RouteStep::Up(
                self.parent()
                    .expect("non-root: self != dst and self not ancestor of dst"),
            )
        }
    }

    /// Returns the full sequence of subnets a cross-net message traverses
    /// from `self` to `dst`, inclusive of both endpoints.
    ///
    /// Per the paper (§IV-A), path messages are "propagated through
    /// bottom-up messages up to the common parent, and through top-down
    /// messages from there to the destination".
    pub fn path_to(&self, dst: &SubnetId) -> Vec<SubnetId> {
        let lca = self.common_ancestor(dst);
        let mut path = Vec::new();
        // Ascend from self to the LCA…
        let mut cur = self.clone();
        while cur != lca {
            path.push(cur.clone());
            cur = cur.parent().expect("lca is an ancestor");
        }
        path.push(lca.clone());
        // …then descend from the LCA to dst.
        for i in lca.depth()..dst.depth() {
            path.push(SubnetId {
                route: dst.route[..=i].to_vec(),
            });
        }
        path
    }

    /// The pub-sub topic name for this subnet's chain traffic.
    ///
    /// Deterministic naming "enables the discovery of and interaction with
    /// subnets from any other point in the hierarchy without the need of a
    /// discovery service" (paper §III-A).
    pub fn topic(&self) -> String {
        format!("{self}/msgs")
    }
}

/// The next step for a message travelling through the hierarchy, as computed
/// by [`SubnetId::next_hop`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RouteStep {
    /// The current subnet is the destination.
    Here,
    /// Travel down into this child (a *top-down* leg, applied directly by
    /// the child's consensus once committed in the parent SCA).
    Down(SubnetId),
    /// Travel up to this parent (a *bottom-up* leg, carried by checkpoints).
    Up(SubnetId),
}

impl fmt::Display for SubnetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("/root")?;
        for seg in &self.route {
            write!(f, "/{seg}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for SubnetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubnetId({self})")
    }
}

impl CanonicalEncode for SubnetId {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.route.write_bytes(out);
    }
}

impl crate::decode::CanonicalDecode for SubnetId {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        let route = Vec::<Address>::read_bytes(r)?;
        if route.len() > MAX_DEPTH {
            return Err(crate::decode::DecodeError::Invalid {
                what: "subnet route deeper than MAX_DEPTH",
            });
        }
        Ok(SubnetId { route })
    }
}

/// Error returned when parsing a [`SubnetId`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSubnetIdError {
    input: String,
}

impl fmt::Display for ParseSubnetIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid subnet id syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseSubnetIdError {}

impl FromStr for SubnetId {
    type Err = ParseSubnetIdError;

    /// Parses the `/root/a100/a101` form produced by
    /// [`Display`](fmt::Display).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSubnetIdError {
            input: s.to_owned(),
        };
        let rest = s.strip_prefix("/root").ok_or_else(err)?;
        if rest.is_empty() {
            return Ok(SubnetId::root());
        }
        let rest = rest.strip_prefix('/').ok_or_else(err)?;
        let mut route = Vec::new();
        for seg in rest.split('/') {
            route.push(seg.parse::<Address>().map_err(|_| err())?);
            if route.len() > MAX_DEPTH {
                return Err(err());
            }
        }
        Ok(SubnetId { route })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(route: &[u64]) -> SubnetId {
        SubnetId::from_route(route.iter().copied().map(Address::new))
    }

    #[test]
    fn display_and_parse_round_trip() {
        for route in [&[][..], &[100], &[100, 101], &[100, 101, 250]] {
            let s = id(route);
            assert_eq!(s.to_string().parse::<SubnetId>().unwrap(), s);
        }
        assert_eq!(SubnetId::root().to_string(), "/root");
        assert_eq!(id(&[100, 101]).to_string(), "/root/a100/a101");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "root",
            "/rootx",
            "/root/",
            "/root//a1",
            "/root/b1",
            "/root/a1/",
        ] {
            assert!(bad.parse::<SubnetId>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parent_child_inverse() {
        let a = id(&[100]);
        assert_eq!(SubnetId::root().child(Address::new(100)), a);
        assert_eq!(a.parent(), Some(SubnetId::root()));
        assert_eq!(SubnetId::root().parent(), None);
        assert_eq!(a.actor(), Some(Address::new(100)));
        assert_eq!(SubnetId::root().actor(), None);
    }

    #[test]
    fn ancestry_is_strict_prefix() {
        let root = SubnetId::root();
        let a = id(&[100]);
        let ab = id(&[100, 101]);
        let c = id(&[102]);
        assert!(root.is_ancestor_of(&ab));
        assert!(a.is_ancestor_of(&ab));
        assert!(!ab.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_ancestor_of(&c));
    }

    #[test]
    fn common_ancestor_is_shared_prefix() {
        let ab = id(&[100, 101]);
        let ac = id(&[100, 102]);
        let d = id(&[103]);
        assert_eq!(ab.common_ancestor(&ac), id(&[100]));
        assert_eq!(ab.common_ancestor(&d), SubnetId::root());
        assert_eq!(ab.common_ancestor(&ab), ab);
        assert_eq!(ab.common_ancestor(&id(&[100])), id(&[100]));
    }

    #[test]
    fn next_hop_routes_up_then_down() {
        let root = SubnetId::root();
        let a = id(&[100]);
        let ab = id(&[100, 101]);
        let c = id(&[102]);

        assert_eq!(a.next_hop(&a), RouteStep::Here);
        // Top-down.
        assert_eq!(root.next_hop(&ab), RouteStep::Down(a.clone()));
        assert_eq!(a.next_hop(&ab), RouteStep::Down(ab.clone()));
        // Bottom-up.
        assert_eq!(ab.next_hop(&root), RouteStep::Up(a.clone()));
        // Path (different branch): first go up.
        assert_eq!(ab.next_hop(&c), RouteStep::Up(a.clone()));
        assert_eq!(a.next_hop(&c), RouteStep::Up(root.clone()));
        assert_eq!(root.next_hop(&c), RouteStep::Down(c));
    }

    #[test]
    fn path_to_traverses_via_lca() {
        let ab = id(&[100, 101]);
        let cd = id(&[102, 103]);
        assert_eq!(
            ab.path_to(&cd),
            vec![
                ab.clone(),
                id(&[100]),
                SubnetId::root(),
                id(&[102]),
                cd.clone()
            ]
        );
        assert_eq!(ab.path_to(&ab), vec![ab.clone()]);
        // Pure top-down.
        assert_eq!(
            SubnetId::root().path_to(&ab),
            vec![SubnetId::root(), id(&[100]), ab.clone()]
        );
        // Pure bottom-up.
        assert_eq!(
            ab.path_to(&SubnetId::root()),
            vec![ab, id(&[100]), SubnetId::root()]
        );
    }

    #[test]
    fn topics_are_unique_per_subnet() {
        assert_ne!(id(&[100]).topic(), id(&[101]).topic());
        assert_eq!(id(&[100]).topic(), "/root/a100/msgs");
    }
}
