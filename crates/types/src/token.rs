//! Native token amounts.
//!
//! [`TokenAmount`] is a fixed-point quantity of the native token, counted in
//! indivisible *atto* units (10⁻¹⁸ of a whole token, matching Filecoin's
//! attoFIL). All arithmetic is explicit about overflow: the operator impls
//! panic on overflow/underflow (like debug-mode integer math), and checked
//! variants are provided for paths that must handle insufficient balances
//! gracefully — which is every transfer path in the system.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::encode::CanonicalEncode;

/// Number of atto units per whole token.
pub const ATTO_PER_TOKEN: u128 = 1_000_000_000_000_000_000;

/// An amount of native token, in atto units. Never negative.
///
/// # Example
///
/// ```
/// use hc_types::TokenAmount;
///
/// let a = TokenAmount::from_whole(2);
/// let b = TokenAmount::from_atto(500);
/// let c = a + b;
/// assert_eq!(c.atto(), 2_000_000_000_000_000_500);
/// assert_eq!(c.checked_sub(a), Some(b));
/// assert_eq!(b.checked_sub(a), None); // would go negative
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TokenAmount(u128);

impl TokenAmount {
    /// The zero amount.
    pub const ZERO: TokenAmount = TokenAmount(0);

    /// Creates an amount from raw atto units.
    pub const fn from_atto(atto: u128) -> Self {
        TokenAmount(atto)
    }

    /// Creates an amount from whole tokens.
    ///
    /// # Panics
    ///
    /// Panics if `whole * 10^18` overflows `u128` (requires more than
    /// ~3.4 × 10²⁰ whole tokens — far beyond any realistic supply).
    pub const fn from_whole(whole: u64) -> Self {
        TokenAmount(whole as u128 * ATTO_PER_TOKEN)
    }

    /// Returns the raw atto units.
    pub const fn atto(self) -> u128 {
        self.0
    }

    /// Returns `true` if the amount is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: TokenAmount) -> Option<TokenAmount> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(TokenAmount(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` if the result would be negative.
    pub const fn checked_sub(self, rhs: TokenAmount) -> Option<TokenAmount> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(TokenAmount(v)),
            None => None,
        }
    }

    /// Saturating subtraction, clamping at zero.
    pub const fn saturating_sub(self, rhs: TokenAmount) -> TokenAmount {
        TokenAmount(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by an integer scalar.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn scale(self, n: u64) -> TokenAmount {
        TokenAmount(
            self.0
                .checked_mul(n as u128)
                .expect("token amount overflow in scale"),
        )
    }

    /// Returns `min(self, other)`.
    pub fn min(self, other: TokenAmount) -> TokenAmount {
        TokenAmount(self.0.min(other.0))
    }
}

impl fmt::Display for TokenAmount {
    /// Renders as a decimal token count, trimming trailing zeros
    /// (`2.0005 HC`, `0 HC`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / ATTO_PER_TOKEN;
        let frac = self.0 % ATTO_PER_TOKEN;
        if frac == 0 {
            write!(f, "{whole} HC")
        } else {
            let frac_str = format!("{frac:018}");
            write!(f, "{whole}.{} HC", frac_str.trim_end_matches('0'))
        }
    }
}

impl Add for TokenAmount {
    type Output = TokenAmount;
    /// # Panics
    /// Panics on overflow; use [`TokenAmount::checked_add`] otherwise.
    fn add(self, rhs: TokenAmount) -> TokenAmount {
        self.checked_add(rhs).expect("token amount overflow")
    }
}

impl AddAssign for TokenAmount {
    fn add_assign(&mut self, rhs: TokenAmount) {
        *self = *self + rhs;
    }
}

impl Sub for TokenAmount {
    type Output = TokenAmount;
    /// # Panics
    /// Panics if the result would be negative; use
    /// [`TokenAmount::checked_sub`] otherwise.
    fn sub(self, rhs: TokenAmount) -> TokenAmount {
        self.checked_sub(rhs).expect("token amount underflow")
    }
}

impl SubAssign for TokenAmount {
    fn sub_assign(&mut self, rhs: TokenAmount) {
        *self = *self - rhs;
    }
}

impl Sum for TokenAmount {
    fn sum<I: Iterator<Item = TokenAmount>>(iter: I) -> TokenAmount {
        iter.fold(TokenAmount::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a TokenAmount> for TokenAmount {
    fn sum<I: Iterator<Item = &'a TokenAmount>>(iter: I) -> TokenAmount {
        iter.copied().sum()
    }
}

impl CanonicalEncode for TokenAmount {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.0.write_bytes(out);
    }
}

impl crate::decode::CanonicalDecode for TokenAmount {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        Ok(TokenAmount::from_atto(u128::read_bytes(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_and_atto_constructors_agree() {
        assert_eq!(
            TokenAmount::from_whole(3),
            TokenAmount::from_atto(3 * ATTO_PER_TOKEN)
        );
    }

    #[test]
    fn checked_sub_protects_against_negative_balances() {
        let a = TokenAmount::from_atto(5);
        let b = TokenAmount::from_atto(7);
        assert_eq!(b.checked_sub(a), Some(TokenAmount::from_atto(2)));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(a.saturating_sub(b), TokenAmount::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn operator_sub_panics_on_underflow() {
        let _ = TokenAmount::ZERO - TokenAmount::from_atto(1);
    }

    #[test]
    fn display_trims_trailing_zeros() {
        assert_eq!(TokenAmount::from_whole(2).to_string(), "2 HC");
        assert_eq!(
            (TokenAmount::from_whole(1) + TokenAmount::from_atto(ATTO_PER_TOKEN / 2)).to_string(),
            "1.5 HC"
        );
        assert_eq!(TokenAmount::ZERO.to_string(), "0 HC");
        assert_eq!(
            TokenAmount::from_atto(1).to_string(),
            "0.000000000000000001 HC"
        );
    }

    #[test]
    fn sum_over_iterator() {
        let total: TokenAmount = (1..=4u128).map(TokenAmount::from_atto).sum();
        assert_eq!(total, TokenAmount::from_atto(10));
    }

    #[test]
    fn scale_multiplies() {
        assert_eq!(
            TokenAmount::from_atto(3).scale(4),
            TokenAmount::from_atto(12)
        );
    }
}
