//! Content identifiers.
//!
//! A [`Cid`] is the SHA-256 digest of a value's canonical encoding (see
//! [`crate::encode`]). CIDs identify checkpoints, cross-message groups,
//! blocks, and state roots throughout the system, mirroring the role of
//! multihash CIDs in Filecoin/IPFS. The paper identifies checkpoints and
//! `CrossMsgMeta` payloads exclusively by CID, and the content-resolution
//! protocol (paper §IV-C) resolves CIDs to raw messages.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::crypto::sha256;
use crate::encode::CanonicalEncode;

/// A content identifier: the SHA-256 digest of a canonical encoding.
///
/// # Example
///
/// ```
/// use hc_types::{Cid, CanonicalEncode};
///
/// let cid = "hello".cid();
/// assert_eq!(cid, Cid::digest(&"hello".canonical_bytes()));
/// assert_ne!(cid, Cid::default());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Cid([u8; 32]);

impl Cid {
    /// The all-zero CID, used as the `prev` pointer of a subnet's first
    /// checkpoint and as a sentinel for "no content".
    pub const NIL: Cid = Cid([0u8; 32]);

    /// Computes the CID of a raw byte string.
    pub fn digest(bytes: &[u8]) -> Self {
        Cid(sha256(bytes))
    }

    /// Creates a CID from a precomputed 32-byte digest.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Cid(bytes)
    }

    /// Returns the raw 32-byte digest.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns `true` if this is the nil (all-zero) CID.
    pub fn is_nil(&self) -> bool {
        *self == Self::NIL
    }
}

impl fmt::Display for Cid {
    /// Shortened hex form (`cid:` + first 8 bytes), suitable for logs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid:")?;
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cid(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl CanonicalEncode for Cid {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl crate::decode::CanonicalDecode for Cid {
    fn read_bytes(
        r: &mut crate::decode::ByteReader<'_>,
    ) -> Result<Self, crate::decode::DecodeError> {
        Ok(Cid::from_bytes(<[u8; 32]>::read_bytes(r)?))
    }
}

impl AsRef<[u8]> for Cid {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned when parsing a [`Cid`] from its full hex form fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCidError;

impl fmt::Display for ParseCidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid cid syntax: expected 64 hex characters")
    }
}

impl std::error::Error for ParseCidError {}

impl FromStr for Cid {
    type Err = ParseCidError;

    /// Parses a 64-character hex digest (the [`Debug`](fmt::Debug) body).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 64 {
            return Err(ParseCidError);
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hex = std::str::from_utf8(chunk).map_err(|_| ParseCidError)?;
            out[i] = u8::from_str_radix(hex, 16).map_err(|_| ParseCidError)?;
        }
        Ok(Cid(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_collision_free_on_distinct_inputs() {
        assert_eq!(Cid::digest(b"abc"), Cid::digest(b"abc"));
        assert_ne!(Cid::digest(b"abc"), Cid::digest(b"abd"));
        assert_ne!(Cid::digest(b""), Cid::NIL);
    }

    #[test]
    fn nil_is_default_and_detectable() {
        assert!(Cid::default().is_nil());
        assert!(!Cid::digest(b"x").is_nil());
    }

    #[test]
    fn hex_round_trip() {
        let cid = Cid::digest(b"round trip");
        let hex = format!("{cid:?}");
        let hex = hex.trim_start_matches("Cid(").trim_end_matches(')');
        assert_eq!(hex.parse::<Cid>().unwrap(), cid);
    }

    #[test]
    fn parse_rejects_bad_lengths_and_chars() {
        assert!("".parse::<Cid>().is_err());
        assert!("zz".repeat(32).parse::<Cid>().is_err());
        assert!("ab".repeat(31).parse::<Cid>().is_err());
    }
}
