//! Property-based tests for the foundation types.

use proptest::prelude::*;

use hc_types::merkle::{merkle_root, MerkleTree};
use hc_types::{Address, CanonicalEncode, Cid, SubnetId, TokenAmount};

fn arb_subnet_id() -> impl Strategy<Value = SubnetId> {
    prop::collection::vec(100u64..200, 0..6)
        .prop_map(|route| SubnetId::from_route(route.into_iter().map(Address::new)))
}

proptest! {
    #[test]
    fn subnet_id_display_parse_round_trip(s in arb_subnet_id()) {
        let parsed: SubnetId = s.to_string().parse().unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn lca_is_prefix_of_both(a in arb_subnet_id(), b in arb_subnet_id()) {
        let lca = a.common_ancestor(&b);
        prop_assert!(lca.is_prefix_of(&a));
        prop_assert!(lca.is_prefix_of(&b));
        // And it is the *deepest* such subnet: going one level further down
        // towards `a` must stop being a prefix of `b` (unless lca == a or b).
        if lca != a && lca != b {
            let deeper = lca.child(a.route()[lca.depth()]);
            prop_assert!(!deeper.is_prefix_of(&b));
        }
    }

    #[test]
    fn lca_is_commutative(a in arb_subnet_id(), b in arb_subnet_id()) {
        prop_assert_eq!(a.common_ancestor(&b), b.common_ancestor(&a));
    }

    #[test]
    fn path_endpoints_and_adjacency(a in arb_subnet_id(), b in arb_subnet_id()) {
        let path = a.path_to(&b);
        prop_assert_eq!(path.first().unwrap(), &a);
        prop_assert_eq!(path.last().unwrap(), &b);
        // Consecutive hops are always parent/child pairs.
        for w in path.windows(2) {
            let parent_child = w[0].parent().as_ref() == Some(&w[1])
                || w[1].parent().as_ref() == Some(&w[0]);
            prop_assert!(parent_child, "hop {} -> {} not adjacent", w[0], w[1]);
        }
        // Path length = distance via the LCA.
        let lca = a.common_ancestor(&b);
        prop_assert_eq!(path.len(), a.depth() + b.depth() - 2 * lca.depth() + 1);
    }

    #[test]
    fn next_hop_always_makes_progress(a in arb_subnet_id(), b in arb_subnet_id()) {
        // Following next_hop repeatedly must reach the destination within
        // the theoretical maximum number of hops.
        let mut cur = a.clone();
        let mut hops = 0;
        loop {
            match cur.next_hop(&b) {
                hc_types::RouteStep::Here => break,
                hc_types::RouteStep::Down(next) | hc_types::RouteStep::Up(next) => {
                    cur = next;
                    hops += 1;
                }
            }
            prop_assert!(hops <= a.depth() + b.depth() + 1, "routing loop");
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn token_add_sub_inverse(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        let x = TokenAmount::from_atto(a);
        let y = TokenAmount::from_atto(b);
        prop_assert_eq!((x + y).checked_sub(y), Some(x));
        prop_assert_eq!((x + y).checked_sub(x), Some(y));
    }

    #[test]
    fn token_checked_sub_none_iff_would_underflow(a in any::<u128>(), b in any::<u128>()) {
        let x = TokenAmount::from_atto(a);
        let y = TokenAmount::from_atto(b);
        prop_assert_eq!(x.checked_sub(y).is_none(), a < b);
    }

    #[test]
    fn canonical_encoding_is_injective_for_address_lists(
        a in prop::collection::vec(any::<u64>(), 0..8),
        b in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let ea: Vec<Address> = a.iter().copied().map(Address::new).collect();
        let eb: Vec<Address> = b.iter().copied().map(Address::new).collect();
        prop_assert_eq!(ea.canonical_bytes() == eb.canonical_bytes(), a == b);
    }

    #[test]
    fn cid_distinct_for_distinct_bytes(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        prop_assert_eq!(Cid::digest(&a) == Cid::digest(&b), a == b);
    }

    #[test]
    fn merkle_all_members_prove(items in prop::collection::vec(any::<u64>(), 1..40)) {
        let tree = MerkleTree::from_items(&items);
        let root = tree.root();
        for (i, item) in items.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(item, root));
        }
    }

    #[test]
    fn merkle_non_member_does_not_prove(
        items in prop::collection::vec(0u64..1000, 1..20),
        outsider in 1000u64..,
        idx in any::<prop::sample::Index>(),
    ) {
        let tree = MerkleTree::from_items(&items);
        let i = idx.index(items.len());
        let proof = tree.prove(i).unwrap();
        prop_assert!(!proof.verify(&outsider, tree.root()));
    }

    #[test]
    fn merkle_root_is_order_sensitive(mut items in prop::collection::vec(any::<u64>(), 2..20)) {
        let original = merkle_root(&items);
        items.swap(0, 1);
        if items[0] != items[1] {
            prop_assert_ne!(merkle_root(&items), original);
        }
    }
}
