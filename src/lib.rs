//! # hierarchical-consensus
//!
//! A from-scratch Rust implementation of **"Hierarchical Consensus: A
//! Horizontal Scaling Framework for Blockchains"** (de la Rocha,
//! Kokoris-Kogias, Soares, Vukolić — ICDCS 2022).
//!
//! Instead of sharding one monolithic chain, hierarchical consensus scales
//! *horizontally*: users spawn **subnets** on demand, organized in a tree
//! rooted at the *rootnet*. Each subnet runs its own chain, state, and
//! consensus engine; parents secure children through periodic
//! **checkpoints**; value moves between subnets through **cross-net
//! messages** whose damage radius is bounded by the **firewall** property;
//! and state in different subnets can be updated atomically through a
//! two-phase-commit **atomic execution** protocol.
//!
//! This crate is a facade over the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`types`] | subnet IDs, addresses, tokens, CIDs, crypto, Merkle trees |
//! | [`actors`] | the SCA, Subnet Actors, checkpoints, cross-net messages |
//! | [`state`] | per-subnet state tree and message execution (VM) |
//! | [`chain`] | blocks, chain store, message pools |
//! | [`consensus`] | pluggable engines: RoundRobin, PoW, PoS, Tendermint, Mir |
//! | [`net`] | simulated pub-sub, fault injection, content resolution |
//! | [`core`] | the hierarchy runtime, atomic orchestration, audits |
//! | [`sim`] | topologies, workloads, and the E1–E10 experiment drivers |
//!
//! # Quickstart
//!
//! ```
//! use hierarchical_consensus::prelude::*;
//!
//! # fn main() -> Result<(), RuntimeError> {
//! let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
//! let alice = rt.create_user(&SubnetId::root(), TokenAmount::from_whole(1_000))?;
//! let validator = rt.create_user(&SubnetId::root(), TokenAmount::from_whole(100))?;
//!
//! let subnet = rt.spawn_subnet(
//!     &alice,
//!     SaConfig::default(),
//!     TokenAmount::from_whole(10),
//!     &[(validator, TokenAmount::from_whole(5))],
//! )?;
//!
//! let bob = rt.create_user(&subnet, TokenAmount::ZERO)?;
//! rt.cross_transfer(&alice, &bob, TokenAmount::from_whole(20))?;
//! rt.run_until_quiescent(1_000)?;
//! assert_eq!(rt.balance(&bob), TokenAmount::from_whole(20));
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable walkthroughs of every paper
//! figure, and `hc-bench` for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hc_actors as actors;
pub use hc_chain as chain;
pub use hc_consensus as consensus;
pub use hc_core as core;
pub use hc_net as net;
pub use hc_sim as sim;
pub use hc_state as state;
pub use hc_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use hc_actors::sa::{ConsensusKind, SaConfig};
    pub use hc_actors::{CrossMsg, HcAddress, ScaConfig};
    pub use hc_core::{
        audit_escrow, audit_quiescent, AtomicOrchestrator, AtomicParty, ChaosStats,
        HierarchyRuntime, PartyBehavior, RuntimeConfig, RuntimeError, UserHandle,
    };
    pub use hc_state::Method;
    pub use hc_types::{Address, ChainEpoch, Cid, SubnetId, TokenAmount};
}
