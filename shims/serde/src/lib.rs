//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive macro) so
//! the workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! in the hermetic build environment. The workspace's canonical encoding
//! lives in `hc_types::encode` and does not go through serde, so no trait
//! methods are required here.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods required by this
/// workspace).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods required by
/// this workspace).
pub trait Deserialize<'de> {}
