//! Offline shim for `criterion`.
//!
//! The hermetic build environment has no crates.io access, so this crate
//! reimplements the criterion API subset the workspace's benches use:
//! `Criterion`, `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time` / `throughput`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simple wall-clock sampling: after a warm-up window, each
//! sample times one closure invocation, and min / mean / max over the
//! samples are printed. No statistical regression machinery — good enough
//! to compare configurations within one run (the only use here).

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Work processed per iteration, used to report a rate alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly, recording one timing sample per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        let measurement_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measurement_end {
                break;
            }
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up window run before sampling starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the sampling window budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.report(&id, &samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples collected", self.name, id);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let rate = self.throughput.map(|t| {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
            match t {
                Throughput::Bytes(n) => format!(" ({:.3} MiB/s)", per_sec(n) / (1024.0 * 1024.0)),
                Throughput::Elements(n) => format!(" ({:.0} elem/s)", per_sec(n)),
            }
        });
        println!(
            "{}/{}: mean {:?} min {:?} max {:?} over {} samples{}",
            self.name,
            id,
            mean,
            min,
            max,
            samples.len(),
            rate.unwrap_or_default(),
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API parity with upstream's CLI handling; no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20))
            .throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()))
        });
        group.bench_with_input(BenchmarkId::new("sum", 3), &3u64, |b, &n| {
            b.iter(|| black_box((0..n).product::<u64>()))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
