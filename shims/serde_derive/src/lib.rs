//! Offline shim for `serde_derive`.
//!
//! The workspace builds in a hermetic environment without crates.io
//! access, so the real `serde` cannot be vendored. Nothing in this
//! workspace serializes through serde at runtime — types derive
//! `Serialize`/`Deserialize` only to keep the public API source-compatible
//! with downstream users — so the derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
