//! Offline shim for `serde_derive`.
//!
//! The workspace builds in a hermetic environment without crates.io
//! access, so the real `serde` cannot be vendored. Nothing in this
//! workspace serializes through serde at runtime — types derive
//! `Serialize`/`Deserialize` only to keep the public API source-compatible
//! with downstream users — so the derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`. Registers the `serde` helper attribute so
/// field annotations like `#[serde(skip)]` parse (and are ignored) exactly
/// as the real derive would accept them.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`. Registers the `serde` helper attribute
/// (see [`derive_serialize`]).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
