//! Offline shim for `proptest`.
//!
//! The hermetic build environment has no crates.io access, so this crate
//! reimplements the proptest API subset the workspace's property tests
//! use: the `proptest!` / `prop_assert*!` / `prop_oneof!` macros, the
//! [`Strategy`] trait with `prop_map`, range / tuple / `prop::collection::vec`
//! strategies, `any::<T>()` for primitives, and `prop::sample::Index`.
//!
//! Differences from upstream, by design:
//! - No shrinking. A failing case panics with the test's deterministic
//!   seed; re-running reproduces the same inputs.
//! - Input generation is seeded from the test's module path and name, so
//!   every run of a given test sees the same case sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// A generator of random values of type `Value`.
///
/// Unlike upstream proptest there is no value tree: strategies produce
/// final values directly and nothing shrinks.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].new_value(rng)
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_int_range_strategies!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical default strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding uniformly random values of a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<Vec<u8>> {
    type Value = Vec<u8>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<u8> {
        let len = rng.gen_range(0usize..=64);
        (0..len).map(|_| rng.gen_range(0u8..=u8::MAX)).collect()
    }
}

impl Arbitrary for Vec<u8> {
    type Strategy = AnyPrimitive<Vec<u8>>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy modules mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Permitted lengths for a generated collection.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            min: usize,
            max_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    min: n,
                    max_inclusive: n,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    min: r.start,
                    max_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max_inclusive: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from a
        /// [`SizeRange`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{AnyPrimitive, Arbitrary, Strategy, TestRng};
        use rand::Rng;

        /// An abstract index resolved against a collection length at use
        /// time, mirroring `proptest::sample::Index`.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct Index(usize);

        impl Index {
            /// Projects this index into `0..len` (`len` must be non-zero).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl Strategy for AnyPrimitive<Index> {
            type Value = Index;

            fn new_value(&self, rng: &mut TestRng) -> Index {
                Index(rng.gen_range(0usize..=usize::MAX))
            }
        }

        impl Arbitrary for Index {
            type Strategy = AnyPrimitive<Index>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
pub mod test_runner {
    /// Failure raised from a property-test body (e.g. via `?`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Marks the current case as failed with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Subset of proptest's config: only `cases` changes behaviour here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for API parity; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

/// Builds the deterministic per-test RNG used by the `proptest!` macro.
pub fn rng_for_seed(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Stable seed for a test, derived from its fully-qualified name (FNV-1a).
pub fn seed_for_test(qualified_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in qualified_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test, reporting the failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l, r, format_args!($($fmt)*)
            );
        }
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                l
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                l, format_args!($($fmt)*)
            );
        }
    }};
}

/// Uniform choice over strategy arms that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config = $config;
            let seed = $crate::seed_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut rng = $crate::rng_for_seed(seed);
            for case in 0..config.cases {
                let run = |rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError>
                {
                    $(let $pat = $crate::Strategy::new_value(&($strategy), rng);)+
                    $body
                    Ok(())
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || run(&mut rng),
                ));
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => panic!(
                        "proptest {}: failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case + 1, config.cases, seed, err
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest {}: failed at case {}/{} (seed {:#x}); \
                             re-run reproduces the same inputs",
                            stringify!($name), case + 1, config.cases, seed
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(a in 5u64..10, b in 1usize..=3, mut c in 100u64..) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((1..=3).contains(&b));
            prop_assert!(c >= 100);
            c += 1;
            prop_assert_ne!(c, 0);
        }

        #[test]
        fn tuples_and_maps_compose((x, y) in (0u8..4, 0u8..4), e in arb_even()) {
            prop_assert!(x < 4 && y < 4);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn collections_and_samples(
            items in prop::collection::vec(any::<u64>(), 1..40),
            ix in any::<prop::sample::Index>(),
            flag in any::<bool>(),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 40);
            prop_assert!(ix.index(items.len()) < items.len());
            let _ = flag;
        }

        #[test]
        fn oneof_draws_every_arm(picks in prop::collection::vec(
            prop_oneof![(0u8..1).prop_map(|_| 1u8), (0u8..1).prop_map(|_| 2u8)],
            64..65,
        )) {
            prop_assert!(picks.contains(&1));
            prop_assert!(picks.contains(&2));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let seed = crate::seed_for_test("a::b::c");
        let mut r1 = crate::rng_for_seed(seed);
        let mut r2 = crate::rng_for_seed(seed);
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
        }
    }
}
