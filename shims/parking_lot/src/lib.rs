//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` locks behind `parking_lot`'s panic-free, non-poisoning
//! API (`lock()`/`read()`/`write()` return guards directly). A poisoned
//! std lock is recovered transparently: the workspace's shared structures
//! (network, blob store) stay usable even if a worker thread panicked,
//! matching parking_lot's no-poisoning semantics.

use std::sync::{self, LockResult};

fn recover<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex with `parking_lot`'s infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

/// A reader-writer lock with `parking_lot`'s infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
