//! Offline shim for `rand` 0.8.
//!
//! The hermetic build environment has no crates.io access, so this crate
//! reimplements exactly the API subset the workspace uses: `RngCore`,
//! `SeedableRng`, `Rng::{gen_range, gen_bool}`, and `rngs::StdRng`.
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64. It is
//! deterministic under a seed (the property every simulation here relies
//! on) and statistically strong enough for the workspace's lottery /
//! exponential-interval sampling. It intentionally does NOT match the
//! stream of the real `rand::rngs::StdRng` — no test in this workspace
//! depends on golden values from the upstream generator.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: the `rand 0.8` `RngCore` subset.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction: the `rand 0.8` `SeedableRng` subset.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_ranges {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                // Modulo bias is < span / 2^64 per draw — far below what any
                // statistical assertion in this workspace can observe.
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start + v
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as $t;
                start + v
            }
        }
    )*};
}

impl_uint_ranges!(u8, u16, u32, u64, usize);

impl SampleUniform for u128 {}

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + wide % span
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if start == 0 && end == u128::MAX {
            return wide;
        }
        start + wide % (end - start + 1)
    }
}

impl SampleUniform for f64 {}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Guard against landing exactly on the excluded upper bound through
        // rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods: the `rand 0.8` `Rng` subset.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // Mix every seed byte through SplitMix64 so similar seeds
            // produce unrelated streams (callers seed with tiny counters).
            let mut sm = 0x6a09_e667_f3bc_c909;
            let mut s = [0u64; 4];
            for (i, slot) in s.iter_mut().enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                sm ^= u64::from_le_bytes(w);
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let share = hits as f64 / 100_000.0;
        assert!((0.23..0.27).contains(&share), "share {share}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::from_seed([9u8; 32]);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
