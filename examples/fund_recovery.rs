//! Fund recovery from a dead subnet (paper §III-C): snapshot the state
//! while the subnet lives, kill it, and let users migrate their funds
//! back to the parent with Merkle proofs.
//!
//! ```text
//! cargo run --example fund_recovery
//! ```

use hierarchical_consensus::prelude::*;

fn main() -> Result<(), RuntimeError> {
    let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
    let root = SubnetId::root();
    let operator = rt.create_user(&root, TokenAmount::from_whole(10_000))?;
    let validator = rt.create_user(&root, TokenAmount::from_whole(100))?;

    let subnet = rt.spawn_subnet(
        &operator,
        SaConfig::default(),
        TokenAmount::from_whole(10),
        &[(validator.clone(), TokenAmount::from_whole(5))],
    )?;

    // Three users hold funds inside the subnet.
    let mut insiders = Vec::new();
    for amount in [25u64, 12, 3] {
        let u = rt.create_user(&subnet, TokenAmount::ZERO)?;
        rt.cross_transfer(&operator, &u, TokenAmount::from_whole(amount))?;
        insiders.push((u, amount));
    }
    rt.run_until_quiescent(10_000)?;
    println!("subnet {subnet} holds user funds: 25 + 12 + 3 = 40 HC\n");

    // Anyone can persist the state: "users may choose to perform this
    // snapshot with the latest state right before the subnet is killed".
    let tree = rt.save_snapshot(&operator, &subnet)?;
    println!(
        "snapshot persisted in the parent SCA: {} accounts, validated by the \
         subnet's signature policy",
        tree.leaves().len()
    );

    // The validators abandon ship and kill the subnet.
    let sa = subnet.actor().expect("child has an SA");
    rt.execute(&validator, sa, TokenAmount::ZERO, Method::KillSubnet)?;
    println!("subnet killed — its chain no longer exists\n");

    // Every user migrates their balance back to the parent with a proof.
    for (insider, amount) in &insiders {
        let claimant = rt.create_claimant(insider)?;
        let proof = tree
            .prove(insider.addr)
            .expect("insider is in the snapshot");
        rt.execute(
            &claimant,
            Address::SCA,
            TokenAmount::ZERO,
            Method::RecoverFunds {
                subnet: subnet.clone(),
                proof,
            },
        )?;
        println!(
            "{} recovered {} HC on the rootnet (balance now {})",
            claimant,
            amount,
            rt.balance(&claimant)
        );
    }

    // A replayed claim is rejected.
    let (first, _) = &insiders[0];
    let claimant = rt.create_claimant(first)?;
    let proof = tree.prove(first.addr).unwrap();
    let err = rt
        .execute(
            &claimant,
            Address::SCA,
            TokenAmount::ZERO,
            Method::RecoverFunds {
                subnet: subnet.clone(),
                proof,
            },
        )
        .unwrap_err();
    println!("\nreplay attempt rejected: {err}");

    audit_escrow(&rt).map_err(RuntimeError::Execution)?;
    println!("escrow audit after full recovery: ok");
    Ok(())
}
