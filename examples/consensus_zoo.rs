//! Consensus pluggability (paper §II): five subnets, five different
//! consensus engines, one identical workload — block times, finality, and
//! throughput side by side.
//!
//! ```text
//! cargo run --example consensus_zoo
//! ```

use hierarchical_consensus::prelude::*;

fn main() -> Result<(), RuntimeError> {
    let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
    let root = SubnetId::root();
    let funder = rt.create_user(&root, TokenAmount::from_whole(100_000))?;

    let engines = [
        ConsensusKind::RoundRobin,
        ConsensusKind::ProofOfWork,
        ConsensusKind::ProofOfStake,
        ConsensusKind::Tendermint,
        ConsensusKind::Mir,
    ];

    // One subnet per engine, one busy user each.
    let mut handles = Vec::new();
    for &engine in &engines {
        let v = rt.create_user(&root, TokenAmount::from_whole(100))?;
        let subnet = rt.spawn_subnet(
            &funder,
            SaConfig {
                consensus: engine,
                ..SaConfig::default()
            },
            TokenAmount::from_whole(10),
            &[(v, TokenAmount::from_whole(5))],
        )?;
        let user = rt.create_user(&subnet, TokenAmount::ZERO)?;
        rt.cross_transfer(&funder, &user, TokenAmount::from_whole(100))?;
        handles.push((engine, subnet, user));
    }
    rt.run_until_quiescent(50_000)?;

    // Identical workload everywhere: 300 self-ping messages.
    for (_, _, user) in &handles {
        for i in 0..300u32 {
            rt.submit(
                user,
                user.addr,
                TokenAmount::ZERO,
                Method::PutData {
                    key: b"n".to_vec(),
                    data: i.to_le_bytes().to_vec(),
                },
            )?;
        }
    }
    rt.run_until_quiescent(1_000_000)?;

    println!(
        "{:<12} {:>10} {:>12} {:>9} {:>9} {:>12}",
        "engine", "blocks", "interval ms", "tps", "orphaned", "view changes"
    );
    for (engine, subnet, _) in &handles {
        let node = rt.node(subnet).unwrap();
        let s = node.stats();
        println!(
            "{:<12} {:>10} {:>12.0} {:>9.1} {:>9} {:>12}",
            engine.to_string(),
            s.blocks,
            node.mean_block_interval_ms(),
            node.user_throughput_per_s(),
            s.orphaned,
            s.extra_rounds,
        );
    }
    println!(
        "\nfinality: Tendermint/Mir are final at inclusion; round-robin after 1 block;\n\
         PoS after {} blocks; PoW only probabilistically after {} blocks.",
        20, 6
    );
    Ok(())
}
