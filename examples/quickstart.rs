//! Quickstart (paper Fig. 1): build a hierarchy of subnets, each with its
//! own chain, and watch independent block production plus a first
//! cross-net payment.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hierarchical_consensus::prelude::*;

fn main() -> Result<(), RuntimeError> {
    let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
    let root = SubnetId::root();

    // Genesis users on the rootnet.
    let alice = rt.create_user(&root, TokenAmount::from_whole(1_000))?;
    let val_a = rt.create_user(&root, TokenAmount::from_whole(100))?;
    let val_c = rt.create_user(&root, TokenAmount::from_whole(100))?;

    // Spawn /root/A (Tendermint) and /root/C (round-robin) — "each subnet
    // can run its own independent consensus algorithm" (paper §I).
    let subnet_a = rt.spawn_subnet(
        &alice,
        SaConfig {
            consensus: ConsensusKind::Tendermint,
            ..SaConfig::default()
        },
        TokenAmount::from_whole(10),
        &[(val_a, TokenAmount::from_whole(5))],
    )?;
    let subnet_c = rt.spawn_subnet(
        &alice,
        SaConfig::default(),
        TokenAmount::from_whole(10),
        &[(val_c, TokenAmount::from_whole(5))],
    )?;

    // Spawn /root/A/B from inside A: hierarchies grow from any point
    // (paper §II). The creator needs funds *in A*, so fund them top-down.
    let creator_b = rt.create_user(&subnet_a, TokenAmount::ZERO)?;
    rt.cross_transfer(&alice, &creator_b, TokenAmount::from_whole(50))?;
    rt.run_until_quiescent(1_000)?;
    let subnet_b = rt.spawn_subnet(
        &creator_b,
        SaConfig::default(),
        TokenAmount::from_whole(10),
        &[(creator_b.clone(), TokenAmount::from_whole(5))],
    )?;

    println!("hierarchy:");
    for subnet in rt.subnets() {
        let node = rt.node(subnet).unwrap();
        println!(
            "  {:<22} consensus={:<12} validators={}",
            subnet.to_string(),
            node.engine().kind().to_string(),
            node.validators().len(),
        );
    }

    // Everyone produces blocks independently.
    rt.run_blocks(40)?;
    println!("\nindependent block production:");
    for subnet in [&root, &subnet_a, &subnet_b, &subnet_c] {
        let node = rt.node(subnet).unwrap();
        println!(
            "  {:<22} height={:<4} mean block interval={:.0} ms",
            subnet.to_string(),
            node.chain().head_epoch().to_string(),
            node.mean_block_interval_ms(),
        );
    }

    // A first cross-net payment: alice (root) pays bob (inside /root/A/B).
    let bob = rt.create_user(&subnet_b, TokenAmount::ZERO)?;
    rt.cross_transfer(&alice, &bob, TokenAmount::from_whole(20))?;
    let blocks = rt.run_until_quiescent(10_000)?;
    println!(
        "\ncross-net payment root -> {subnet_b} delivered after {blocks} blocks; \
         bob's balance: {}",
        rt.balance(&bob)
    );

    // The supply audits hold.
    audit_quiescent(&rt).map_err(RuntimeError::Execution)?;
    println!("supply audits: ok");
    Ok(())
}
