//! A chaos drill (DESIGN.md §12): a subnet node crashes mid-epoch while
//! the network loses, duplicates, and reorders messages — and the
//! hierarchy rides it out. The crashed node rejoins, catches back up
//! from peers over the still-faulty network under retry/backoff, and
//! every in-flight cross-net transfer lands exactly once.
//!
//! ```text
//! cargo run --example chaos_drill
//! ```

use hierarchical_consensus::net::{CrashFault, DupRule, FaultPlan, LossRule, ReorderRule};
use hierarchical_consensus::prelude::*;

fn main() -> Result<(), RuntimeError> {
    let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
    let root = SubnetId::root();
    let alice = rt.create_user(&root, TokenAmount::from_whole(1_000))?;
    let validator = rt.create_user(&root, TokenAmount::from_whole(100))?;
    let subnet = rt.spawn_subnet(
        &alice,
        SaConfig::default(),
        TokenAmount::from_whole(10),
        &[(validator, TokenAmount::from_whole(5))],
    )?;
    let bob = rt.create_user(&subnet, TokenAmount::ZERO)?;
    let carol = rt.create_user(&root, TokenAmount::ZERO)?;
    rt.cross_transfer(&alice, &bob, TokenAmount::from_whole(30))?;
    rt.run_until_quiescent(10_000)?;
    println!("calm before the storm: bob holds {}\n", rt.balance(&bob));

    // Value in flight in both directions while the faults bite.
    rt.cross_transfer(&bob, &carol, TokenAmount::from_whole(8))?;
    rt.cross_transfer(&alice, &bob, TokenAmount::from_whole(20))?;

    // The schedule: 35% loss on the child's topic, duplication and
    // reordering everywhere, and the child node crashing mid-epoch.
    let now = rt.now_ms();
    rt.extend_faults(FaultPlan {
        losses: vec![LossRule {
            from_ms: now,
            until_ms: now + 15_000,
            topic: Some(subnet.topic()),
            from: None,
            to: None,
            rate: 0.35,
        }],
        duplications: vec![DupRule {
            from_ms: now,
            until_ms: now + 15_000,
            topic: None,
            rate: 0.5,
            max_copies: 2,
            spread_ms: 400,
        }],
        reorders: vec![ReorderRule {
            from_ms: now,
            until_ms: now + 15_000,
            topic: None,
            rate: 0.5,
            max_extra_delay_ms: 900,
        }],
        crashes: vec![CrashFault {
            subnet: subnet.clone(),
            crash_at_ms: now + 1_200,
            rejoin_at_ms: now + 6_500,
        }],
        ..FaultPlan::none()
    });
    println!("fault schedule injected: loss 35% on {subnet}, dup 50%, reorder 50%,");
    println!("crash at +1.2s, rejoin at +6.5s\n");

    rt.run_until_quiescent(10_000)?;

    let chaos = rt.chaos_stats();
    let net = rt.net_stats();
    println!("the hierarchy reconverged:");
    println!("  bob   = {} (30 + 20 - 8, exactly once)", rt.balance(&bob));
    println!("  carol = {} (8, exactly once)", rt.balance(&carol));
    println!(
        "  crashes {} | rejoins {} | catch-ups {} | blocks caught up {}",
        chaos.crashes, chaos.rejoins, chaos.catch_ups_completed, chaos.blocks_caught_up
    );
    println!(
        "  pulls {} ({} retried) | batches {}",
        chaos.block_pulls, chaos.block_pull_retries, chaos.block_batches
    );
    println!(
        "  net: {} targeted-dropped, {} duplicated, {} reordered, {} offline-dropped",
        net.targeted_dropped, net.duplicated, net.reordered, net.offline_dropped
    );

    assert_eq!(rt.balance(&bob), TokenAmount::from_whole(42));
    assert_eq!(rt.balance(&carol), TokenAmount::from_whole(8));
    audit_escrow(&rt).map_err(RuntimeError::Execution)?;
    audit_quiescent(&rt).map_err(RuntimeError::Execution)?;
    println!("\nsupply audits hold — the firewall survived the weather.");
    Ok(())
}
