//! Atomic cross-net execution (paper Fig. 5): an asset swap between two
//! subnets, orchestrated as a two-phase commit by the SCA of their least
//! common ancestor — including what happens when a party misbehaves.
//!
//! ```text
//! cargo run --example atomic_swap
//! ```

use hierarchical_consensus::prelude::*;

fn main() -> Result<(), RuntimeError> {
    let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
    let root = SubnetId::root();
    let funder = rt.create_user(&root, TokenAmount::from_whole(10_000))?;

    // Two subnets, one trader each, each holding an asset record.
    let mut traders = Vec::new();
    for asset in ["100 GOLD", "7000 SILVER"] {
        let v = rt.create_user(&root, TokenAmount::from_whole(100))?;
        let subnet = rt.spawn_subnet(
            &funder,
            SaConfig::default(),
            TokenAmount::from_whole(10),
            &[(v, TokenAmount::from_whole(5))],
        )?;
        let trader = rt.create_user(&subnet, TokenAmount::ZERO)?;
        rt.execute(
            &trader,
            trader.addr,
            TokenAmount::ZERO,
            Method::PutData {
                key: b"vault".to_vec(),
                data: asset.as_bytes().to_vec(),
            },
        )?;
        println!("{trader} holds {asset:?}");
        traders.push(trader);
    }
    let (gold_trader, silver_trader) = (traders[0].clone(), traders[1].clone());

    // ---- Honest swap ----
    println!("\n== honest atomic swap ==");
    let outcome = AtomicOrchestrator::run(
        &mut rt,
        &[
            AtomicParty::honest(gold_trader.clone(), b"vault"),
            AtomicParty::honest(silver_trader.clone(), b"vault"),
        ],
        |inputs| vec![inputs[1].clone(), inputs[0].clone()],
        100_000,
    )?;
    println!(
        "coordinator={} status={} (exec {})",
        outcome.coordinator, outcome.status, outcome.exec
    );
    print_vaults(&rt, &gold_trader, &silver_trader);

    // ---- A Byzantine counterparty submits a corrupt output ----
    println!("\n== swap against a divergent (Byzantine) party ==");
    let outcome = AtomicOrchestrator::run(
        &mut rt,
        &[
            AtomicParty::honest(gold_trader.clone(), b"vault"),
            AtomicParty::honest(silver_trader.clone(), b"vault")
                .with_behavior(PartyBehavior::Divergent),
        ],
        |inputs| vec![inputs[1].clone(), inputs[0].clone()],
        100_000,
    )?;
    println!(
        "status={} — outputs did not match, both subnets reverted",
        outcome.status
    );
    print_vaults(&rt, &gold_trader, &silver_trader);

    // ---- A party crashes mid-protocol: the timeout sweep guarantees
    //      timeliness ----
    println!("\n== swap against a crashed party (timeout) ==");
    let outcome = AtomicOrchestrator::run(
        &mut rt,
        &[
            AtomicParty::honest(gold_trader.clone(), b"vault"),
            AtomicParty::honest(silver_trader.clone(), b"vault")
                .with_behavior(PartyBehavior::Crash),
        ],
        |inputs| vec![inputs[1].clone(), inputs[0].clone()],
        200_000,
    )?;
    println!(
        "status={} — coordinator sweep aborted the stale execution",
        outcome.status
    );
    print_vaults(&rt, &gold_trader, &silver_trader);

    Ok(())
}

fn print_vaults(rt: &HierarchyRuntime, a: &UserHandle, b: &UserHandle) {
    for t in [a, b] {
        let vault = rt
            .node(&t.subnet)
            .and_then(|n| n.state().accounts().get(t.addr))
            .and_then(|acc| acc.storage.get(b"vault".as_slice()).cloned())
            .unwrap_or_default();
        println!("  {t} vault: {:?}", String::from_utf8_lossy(&vault));
    }
}
