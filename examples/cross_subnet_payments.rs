//! Cross-net payments (paper Figs. 2 & 3): all three message classes —
//! top-down, bottom-up, and path — with per-hop protocol traces showing
//! nonce assignment, checkpoint windows, and content resolution.
//!
//! ```text
//! cargo run --example cross_subnet_payments
//! ```

use hierarchical_consensus::prelude::*;
use hierarchical_consensus::state::VmEvent;

fn main() -> Result<(), RuntimeError> {
    let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
    let root = SubnetId::root();
    let alice = rt.create_user(&root, TokenAmount::from_whole(1_000))?;

    // Two sibling subnets with a checkpoint period of 5 epochs.
    let mut subnets = Vec::new();
    for _ in 0..2 {
        let v = rt.create_user(&root, TokenAmount::from_whole(100))?;
        subnets.push(rt.spawn_subnet(
            &alice,
            SaConfig {
                checkpoint_period: 5,
                ..SaConfig::default()
            },
            TokenAmount::from_whole(10),
            &[(v, TokenAmount::from_whole(5))],
        )?);
    }
    let (left, right) = (subnets[0].clone(), subnets[1].clone());
    let lu = rt.create_user(&left, TokenAmount::ZERO)?;
    let ru = rt.create_user(&right, TokenAmount::ZERO)?;
    rt.drain_events();

    // ---- Top-down: committed in the parent, applied by the child ----
    println!("== top-down: {alice} -> {lu} (20 HC) ==");
    rt.cross_transfer(&alice, &lu, TokenAmount::from_whole(20))?;
    let t0 = rt.now_ms();
    while rt.balance(&lu) < TokenAmount::from_whole(20) {
        rt.step()?;
    }
    print_events(&mut rt);
    println!("delivered in {} virtual ms\n", rt.now_ms() - t0);

    // ---- Bottom-up: burned in the child, carried by a checkpoint ----
    println!("== bottom-up: {lu} -> {alice} (6 HC) ==");
    rt.cross_transfer(&lu, &alice, TokenAmount::from_whole(6))?;
    let t0 = rt.now_ms();
    let before = rt.balance(&alice);
    while rt.balance(&alice) < before + TokenAmount::from_whole(6) {
        rt.step()?;
    }
    print_events(&mut rt);
    println!(
        "delivered in {} virtual ms (includes the checkpoint wait)\n",
        rt.now_ms() - t0
    );

    // ---- Path: up to the LCA (the root), then down the other branch ----
    println!("== path: {lu} -> {ru} (5 HC), LCA = {root} ==");
    rt.cross_transfer(&lu, &ru, TokenAmount::from_whole(5))?;
    let t0 = rt.now_ms();
    while rt.balance(&ru) < TokenAmount::from_whole(5) {
        rt.step()?;
    }
    print_events(&mut rt);
    println!(
        "delivered in {} virtual ms (up + turnaround + down)\n",
        rt.now_ms() - t0
    );

    // Final balances and supply audit.
    rt.run_until_quiescent(10_000)?;
    println!(
        "final balances: alice={} lu={} ru={}",
        rt.balance(&alice),
        rt.balance(&lu),
        rt.balance(&ru)
    );
    audit_quiescent(&rt).map_err(RuntimeError::Execution)?;
    println!("supply audits: ok");
    Ok(())
}

/// Prints the protocol-relevant events since the last drain.
fn print_events(rt: &mut HierarchyRuntime) {
    for (subnet, ev) in rt.drain_events() {
        match ev {
            VmEvent::CrossMsgQueued { msg } => {
                println!(
                    "  [{subnet}] queued {} -> {} nonce={}",
                    msg.from, msg.to, msg.nonce
                );
            }
            VmEvent::CheckpointCut { checkpoint } => {
                println!(
                    "  [{subnet}] checkpoint cut at {} carrying {} cross-msg(s)",
                    checkpoint.epoch,
                    checkpoint.cross_msg_count()
                );
            }
            VmEvent::CheckpointCommitted { source, outcome } => {
                println!(
                    "  [{subnet}] committed checkpoint from {source}: {} for here, {} turnaround, {} upward",
                    outcome.applied_here.len(),
                    outcome.turnaround.len(),
                    outcome.propagated_up.len()
                );
            }
            VmEvent::CrossMsgApplied { msg } => {
                println!(
                    "  [{subnet}] applied {} -> {} ({})",
                    msg.from, msg.to, msg.value
                );
            }
            _ => {}
        }
    }
}
