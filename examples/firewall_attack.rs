//! The firewall property under attack (paper §II): a fully compromised
//! subnet tries to drain its parent, and the SCA bounds the damage to the
//! subnet's circulating supply — then the attacker is slashed via an
//! equivocation fraud proof.
//!
//! ```text
//! cargo run --example firewall_attack
//! ```

use hierarchical_consensus::prelude::*;

fn main() -> Result<(), RuntimeError> {
    let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
    let root = SubnetId::root();
    let honest = rt.create_user(&root, TokenAmount::from_whole(1_000_000))?;
    let validator = rt.create_user(&root, TokenAmount::from_whole(100))?;

    let subnet = rt.spawn_subnet(
        &honest,
        SaConfig::default(),
        TokenAmount::from_whole(10),
        &[(validator, TokenAmount::from_whole(5))],
    )?;

    // 40 HC of circulating supply enters the (soon compromised) subnet.
    let insider = rt.create_user(&subnet, TokenAmount::ZERO)?;
    rt.cross_transfer(&honest, &insider, TokenAmount::from_whole(40))?;
    rt.run_until_quiescent(10_000)?;
    println!("subnet {subnet} holds 40 HC of circulating supply\n");

    // The subnet's validator quorum is now adversarial: it signs forged
    // checkpoints claiming withdrawals that were never funded.
    let thief = Address::new(66_666);
    for claim in [25u64, 1_000, 15, 1_000_000] {
        let report = rt.forge_withdrawal(&subnet, thief, TokenAmount::from_whole(claim))?;
        println!(
            "forged claim of {:>9} HC | remaining bound {:>3} | extracted {:>3} | naive sharding would lose {:>9} HC",
            claim,
            report.bound,
            report.extracted,
            claim,
        );
    }
    let root_node = rt.node(&root).unwrap();
    let total_stolen = root_node
        .state()
        .accounts()
        .get(thief)
        .map(|a| a.balance)
        .unwrap_or(TokenAmount::ZERO);
    println!(
        "\ntotal extracted: {total_stolen} — hard-capped at the 40 HC that ever entered the subnet"
    );
    audit_escrow(&rt).map_err(RuntimeError::Execution)?;
    println!("escrow audit after the attack: ok\n");

    // The compromised quorum also equivocated; any honest observer can
    // slash its collateral.
    let proof = rt.forge_equivocation(&subnet)?;
    rt.execute(
        &honest,
        Address::SCA,
        TokenAmount::ZERO,
        Method::ReportFraud {
            subnet: subnet.clone(),
            proof: Box::new(proof),
        },
    )?;
    let info = rt
        .node(&root)
        .unwrap()
        .state()
        .sca()
        .subnet(&subnet)
        .unwrap()
        .clone();
    println!(
        "after fraud proof: collateral={} status={} (half burned, half to the reporter)",
        info.collateral, info.status
    );
    Ok(())
}
