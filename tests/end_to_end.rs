//! Workspace-level integration tests through the `hierarchical-consensus`
//! facade: large mixed scenarios exercising every subsystem together.

use hierarchical_consensus::prelude::*;
use hierarchical_consensus::sim::{TopologyBuilder, Workload};

fn whole(n: u64) -> TokenAmount {
    TokenAmount::from_whole(n)
}

#[test]
fn prelude_covers_the_full_flow() {
    let mut rt = HierarchyRuntime::new(RuntimeConfig::default());
    let alice = rt.create_user(&SubnetId::root(), whole(1_000)).unwrap();
    let validator = rt.create_user(&SubnetId::root(), whole(100)).unwrap();
    let subnet = rt
        .spawn_subnet(
            &alice,
            SaConfig::default(),
            whole(10),
            &[(validator, whole(5))],
        )
        .unwrap();
    let bob = rt.create_user(&subnet, TokenAmount::ZERO).unwrap();
    rt.cross_transfer(&alice, &bob, whole(20)).unwrap();
    rt.run_until_quiescent(10_000).unwrap();
    assert_eq!(rt.balance(&bob), whole(20));
    audit_quiescent(&rt)
        .map_err(RuntimeError::Execution)
        .unwrap();
}

/// A "week in the life" scenario: three branches, nested subnets, heavy
/// mixed traffic, one atomic swap, one compromise + slash, one subnet kill
/// with fund recovery — all audits green at the end.
#[test]
fn grand_tour() {
    let mut topo = TopologyBuilder::new()
        .users_per_subnet(3)
        .tree(3, 1)
        .unwrap();

    // Phase 1: mixed local + cross traffic.
    let report = Workload {
        msgs_per_subnet: 120,
        cross_ratio: 0.3,
        ..Workload::default()
    }
    .run(&mut topo)
    .unwrap();
    assert_eq!(report.failed, 0, "no message may fail under honest load");
    assert!(report.cross_applied > 0);
    hierarchical_consensus::core::audit_quiescent(&topo.rt).unwrap();

    // Phase 2: atomic swap between the first two subnets.
    let (s1, s2) = (topo.subnets[0].clone(), topo.subnets[1].clone());
    let a = topo.users[&s1][0].clone();
    let b = topo.users[&s2][0].clone();
    for (u, val) in [(&a, &b"alpha"[..]), (&b, &b"beta!"[..])] {
        topo.rt
            .execute(
                u,
                u.addr,
                TokenAmount::ZERO,
                Method::PutData {
                    key: b"x".to_vec(),
                    data: val.to_vec(),
                },
            )
            .unwrap();
    }
    let outcome = AtomicOrchestrator::run(
        &mut topo.rt,
        &[
            AtomicParty::honest(a.clone(), b"x"),
            AtomicParty::honest(b.clone(), b"x"),
        ],
        |inputs| vec![inputs[1].clone(), inputs[0].clone()],
        200_000,
    )
    .unwrap();
    assert_eq!(
        outcome.status,
        hierarchical_consensus::actors::AtomicExecStatus::Committed
    );

    // Phase 3: the third subnet goes rogue; the firewall bounds it and a
    // fraud proof slashes it.
    let s3 = topo.subnets[2].clone();
    let supply_before = topo
        .rt
        .node(&SubnetId::root())
        .unwrap()
        .state()
        .sca()
        .subnet(&s3)
        .unwrap()
        .circ_supply;
    let attack = topo
        .rt
        .forge_withdrawal(&s3, Address::new(666), whole(1_000_000))
        .unwrap();
    assert_eq!(attack.extracted, TokenAmount::ZERO);
    assert_eq!(attack.bound, supply_before);

    let proof = topo.rt.forge_equivocation(&s3).unwrap();
    let banker = topo.banker.clone();
    topo.rt
        .execute(
            &banker,
            Address::SCA,
            TokenAmount::ZERO,
            Method::ReportFraud {
                subnet: s3.clone(),
                proof: Box::new(proof),
            },
        )
        .unwrap();
    assert_eq!(
        topo.rt
            .node(&SubnetId::root())
            .unwrap()
            .state()
            .sca()
            .subnet(&s3)
            .unwrap()
            .status,
        hierarchical_consensus::actors::SubnetStatus::Inactive
    );

    // Phase 4: snapshot + kill the slashed subnet; an insider recovers.
    let insider = topo.users[&s3][0].clone();
    let insider_balance = topo.rt.balance(&insider);
    let tree = topo.rt.save_snapshot(&banker, &s3).unwrap();
    // Reactivate long enough? No — snapshots persist on Inactive subnets;
    // now kill it (validator is the spawn creator at the root).
    let sa = s3.actor().unwrap();
    let val_addr = topo
        .rt
        .node(&SubnetId::root())
        .unwrap()
        .state()
        .sa(sa)
        .unwrap()
        .validators()[0]
        .addr;
    let validator = UserHandle {
        subnet: SubnetId::root(),
        addr: val_addr,
    };
    topo.rt
        .execute(&validator, sa, TokenAmount::ZERO, Method::KillSubnet)
        .unwrap();

    let claimant = topo.rt.create_claimant(&insider).unwrap();
    let proof = tree.prove(insider.addr).unwrap();
    topo.rt
        .execute(
            &claimant,
            Address::SCA,
            TokenAmount::ZERO,
            Method::RecoverFunds {
                subnet: s3.clone(),
                proof,
            },
        )
        .unwrap();
    assert_eq!(topo.rt.balance(&claimant), insider_balance);

    // Everything still audits.
    hierarchical_consensus::core::audit_escrow(&topo.rt).unwrap();
    // And the surviving subnets' checkpoint chains verify.
    for s in [&s1, &s2] {
        topo.rt.verify_checkpoint_chain(s).unwrap();
    }
}

/// Byzantine traffic storm: repeated forged checkpoints interleaved with
/// honest traffic never break conservation or stall honest progress.
#[test]
fn attack_storm_does_not_stall_honest_traffic() {
    let mut topo = TopologyBuilder::new().users_per_subnet(2).flat(2).unwrap();
    let victim = topo.subnets[0].clone();
    let honest_subnet = topo.subnets[1].clone();
    let honest_user = topo.users[&honest_subnet][0].clone();
    let root_user = topo.users[&SubnetId::root()][0].clone();

    for round in 0..5u64 {
        topo.rt
            .forge_withdrawal(&victim, Address::new(666), whole(10_000))
            .unwrap();
        topo.rt
            .cross_transfer(&honest_user, &root_user, whole(1 + round))
            .unwrap();
        topo.rt.run_until_quiescent(100_000).unwrap();
    }
    // Honest transfers all arrived.
    assert_eq!(
        topo.rt.balance(&root_user),
        whole(1_000) + whole(1 + 2 + 3 + 4 + 5)
    );
    hierarchical_consensus::core::audit_escrow(&topo.rt).unwrap();
}

/// Four levels deep: value travels to the leaf and back, checkpoints nest
/// through every level, chains verify at every edge.
#[test]
fn four_level_round_trip() {
    let mut topo = TopologyBuilder::new().users_per_subnet(1).deep(4).unwrap();
    let leaf = topo.subnets[3].clone();
    assert_eq!(leaf.depth(), 4);
    let root_user = topo.users[&SubnetId::root()][0].clone();
    let leaf_user = topo.users[&leaf][0].clone();

    let before = topo.rt.balance(&leaf_user);
    topo.rt
        .cross_transfer(&root_user, &leaf_user, whole(9))
        .unwrap();
    topo.rt.run_until_quiescent(200_000).unwrap();
    assert_eq!(topo.rt.balance(&leaf_user), before + whole(9));

    let root_before = topo.rt.balance(&root_user);
    topo.rt
        .cross_transfer(&leaf_user, &root_user, whole(4))
        .unwrap();
    let blocks = topo.rt.run_until_quiescent(300_000).unwrap();
    assert!(blocks < 300_000);
    assert_eq!(topo.rt.balance(&root_user), root_before + whole(4));

    hierarchical_consensus::core::audit_quiescent(&topo.rt).unwrap();
    for s in topo.subnets.clone() {
        topo.rt.verify_checkpoint_chain(&s).unwrap();
    }
}

/// A chaos drill through the facade: the leaf of a three-level hierarchy
/// crashes mid-epoch under loss/duplication/reordering, rejoins, and
/// catches back up — every in-flight transfer applied exactly once.
#[test]
fn leaf_crash_rejoin_in_deep_topology() {
    use hierarchical_consensus::net::{CrashFault, DupRule, FaultPlan, LossRule, ReorderRule};

    let mut topo = TopologyBuilder::new().users_per_subnet(1).deep(3).unwrap();
    let leaf = topo.subnets[2].clone();
    assert_eq!(leaf.depth(), 3);
    let root_user = topo.users[&SubnetId::root()][0].clone();
    let leaf_user = topo.users[&leaf][0].clone();
    let before = topo.rt.balance(&leaf_user);

    topo.rt
        .cross_transfer(&root_user, &leaf_user, whole(9))
        .unwrap();
    let now = topo.rt.now_ms();
    topo.rt.extend_faults(FaultPlan {
        losses: vec![LossRule {
            from_ms: now,
            until_ms: now + 20_000,
            topic: Some(leaf.topic()),
            from: None,
            to: None,
            rate: 0.3,
        }],
        duplications: vec![DupRule {
            from_ms: now,
            until_ms: now + 20_000,
            topic: None,
            rate: 0.4,
            max_copies: 2,
            spread_ms: 300,
        }],
        reorders: vec![ReorderRule {
            from_ms: now,
            until_ms: now + 20_000,
            topic: None,
            rate: 0.4,
            max_extra_delay_ms: 600,
        }],
        crashes: vec![CrashFault {
            subnet: leaf.clone(),
            crash_at_ms: now + 1_500,
            rejoin_at_ms: now + 8_000,
        }],
        ..FaultPlan::none()
    });

    let blocks = topo.rt.run_until_quiescent(300_000).unwrap();
    assert!(blocks < 300_000, "chaos drill must reconverge");
    assert_eq!(topo.rt.balance(&leaf_user), before + whole(9));
    let chaos = topo.rt.chaos_stats();
    assert_eq!(chaos.crashes, 1);
    assert_eq!(chaos.catch_ups_completed, 1);
    hierarchical_consensus::core::audit_escrow(&topo.rt).unwrap();
    hierarchical_consensus::core::audit_quiescent(&topo.rt).unwrap();
    for s in topo.subnets.clone() {
        topo.rt.verify_checkpoint_chain(&s).unwrap();
    }
}
